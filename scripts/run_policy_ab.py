#!/usr/bin/env python
"""A/B-compare control policies on identical seeded scenario calendars.

Replays each reference scenario of :mod:`repro.fleet.policy.ab` — flash
crowd, WAN degradation, GPU flaps — under both the default greedy
rebalancer and the predictive profit policy, holding the fleet shape,
seeds and event calendar fixed, then prints the per-scenario comparison
(fleet mean, p10 worst-stream accuracy, wasted GPU-seconds, migration
cost).  With ``--chaos`` it additionally sweeps the seeded fault model
under both policies, checking every fleet invariant per arm.  Typical
runs::

    PYTHONPATH=src python scripts/run_policy_ab.py
    PYTHONPATH=src python scripts/run_policy_ab.py --chaos-seeds 10 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.chaos import run_chaos_trial  # noqa: E402
from repro.fleet.policy.ab import (  # noqa: E402
    COMPARED_METRICS,
    reference_scenarios,
    run_policy_ab,
)

#: Column widths for the comparison table.
_METRIC_WIDTH = max(len(metric) for metric in COMPARED_METRICS)


def _print_comparison(comparison) -> None:
    print(f"\n{comparison.scenario}")
    header = f"  {'metric':{_METRIC_WIDTH}s} {'greedy':>12s} {'predictive':>12s} {'delta':>10s}"
    print(header)
    deltas = comparison.deltas
    for metric in COMPARED_METRICS:
        print(
            f"  {metric:{_METRIC_WIDTH}s} "
            f"{comparison.greedy.metrics[metric]:12.4f} "
            f"{comparison.predictive.metrics[metric]:12.4f} "
            f"{deltas[metric]:+10.4f}"
        )
    verdict = "predictive wins" if comparison.predictive_wins else "tie / greedy holds"
    print(f"  -> {verdict} (win = p10 up AND wasted GPU-seconds down)")


def _chaos_sweep(num_seeds: int, quick: bool) -> list:
    """Run the fault model under both policies; returns failure strings."""
    failures = []
    print(f"\nchaos sweep: {num_seeds} seeds x (greedy, predictive)")
    for policy in ("greedy", "predictive"):
        for seed in range(num_seeds):
            report = run_chaos_trial(seed, quick=quick, control_policy=policy)
            status = "ok" if report.ok else "INVARIANT VIOLATED"
            print(
                f"  {policy:10s} seed {seed:3d}: {status}  "
                f"events={report.num_fault_events:2d}  "
                f"mean_accuracy={report.summary['mean_accuracy']:.4f}  "
                f"wasted={report.summary['wasted_gpu_seconds']:.2f}"
            )
            for violation in report.violations:
                print(f"      - {violation}")
                failures.append(f"{policy} seed {seed}: {violation}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        action="append",
        help="run only this reference scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--chaos-seeds",
        type=int,
        default=0,
        help="also sweep N chaos seeds under both policies (default 0 = off)",
    )
    parser.add_argument(
        "--quick-chaos",
        action="store_true",
        help="use the small chaos fleet shape for the --chaos-seeds sweep",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the A/B table to this JSON file"
    )
    args = parser.parse_args(argv)

    specs = reference_scenarios()
    if args.scenario:
        known = {spec.name for spec in specs}
        unknown = sorted(set(args.scenario) - known)
        if unknown:
            parser.error(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}"
            )
        specs = [spec for spec in specs if spec.name in set(args.scenario)]

    comparisons = run_policy_ab(specs)
    for comparison in comparisons:
        _print_comparison(comparison)
    wins = sum(comparison.predictive_wins for comparison in comparisons)
    print(f"\npredictive wins {wins} of {len(comparisons)} scenario(s)")

    failures = []
    if args.chaos_seeds > 0:
        failures = _chaos_sweep(args.chaos_seeds, args.quick_chaos)

    if args.json is not None:
        payload = {
            "scenarios": [
                {
                    "scenario": comparison.scenario,
                    "greedy": dict(comparison.greedy.metrics),
                    "predictive": dict(comparison.predictive.metrics),
                    "deltas": comparison.deltas,
                    "predictive_wins": comparison.predictive_wins,
                }
                for comparison in comparisons
            ],
            "predictive_wins": wins,
            "num_scenarios": len(comparisons),
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"A/B table written to {args.json}")

    if failures:
        print(f"\n{len(failures)} chaos failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
