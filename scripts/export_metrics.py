#!/usr/bin/env python
"""Run a fleet simulation and print its Prometheus-style metric exposition.

A thin CLI over :meth:`repro.fleet.telemetry.TelemetryPlane.export_text`:
builds a fleet from scalar knobs (same defaults as the benchmarks' small
shapes), runs it under a ``ManualClock`` for reproducibility, and writes the
text exposition — every ``FleetResult.summary()`` key as an
``ekya_fleet_*`` metric, plus the telemetry plane's own gauges — to stdout,
where a Prometheus file-based scrape (or a human) can pick it up::

    PYTHONPATH=src python scripts/export_metrics.py --sites 4 --streams 4 --windows 3
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet import FleetSimulator, make_fleet  # noqa: E402
from repro.utils.clock import ManualClock  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sites", type=int, default=4, help="edge sites (default 4)")
    parser.add_argument(
        "--streams", type=int, default=4, help="streams per site (default 4)"
    )
    parser.add_argument(
        "--gpus", type=int, default=2, help="GPUs per site (default 2)"
    )
    parser.add_argument(
        "--windows", type=int, default=3, help="retraining windows (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    parser.add_argument(
        "--preemptive",
        action="store_true",
        help="event-driven site internals (mid-window preemption)",
    )
    args = parser.parse_args(argv)

    clock = ManualClock()
    controller = make_fleet(
        args.sites,
        args.streams,
        gpus_per_site=args.gpus,
        seed=args.seed,
        clock=clock,
        preemptive_sites=args.preemptive,
    )
    simulator = FleetSimulator(controller, clock=clock)
    result = simulator.run(args.windows)
    sys.stdout.write(simulator.telemetry.export_text(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
