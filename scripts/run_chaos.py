#!/usr/bin/env python
"""Seeded chaos sweep over the fleet's partial-failure fault model.

Runs :func:`repro.fleet.chaos.run_chaos_trial` across a range of seeds —
each trial compiles a replayable fault schedule (site-failure bursts, WAN
loss, GPU flaps) from ``(seed, intensity)``, runs it end to end under a
``ManualClock``, and checks fleet-wide invariants (stream conservation,
GPU-count conservation, fault-counter consistency).  The first few seeds
are additionally run *twice* to prove the whole pipeline is deterministic:
same seed, bit-identical ``FleetResult.summary()``.

Exits non-zero listing every violated invariant and every non-reproducible
seed.  CI runs::

    PYTHONPATH=src python scripts/run_chaos.py --seeds 20 --quick
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.chaos import run_chaos_trial  # noqa: E402

#: Seeds re-run twice to assert bit-identical summaries.
DETERMINISM_SEEDS = 3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=20, help="number of seeds to sweep (default 20)"
    )
    parser.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="fault-schedule intensity multiplier (default 1.0; 0 = lossless)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller fleet shape (3 sites x 2 streams, 6 windows) for CI",
    )
    args = parser.parse_args(argv)

    failures = []
    peak_bytes = 0
    for seed in range(args.seeds):
        report = run_chaos_trial(seed, intensity=args.intensity, quick=args.quick)
        status = "ok" if report.ok else "INVARIANT VIOLATED"
        telemetry = report.telemetry
        peak_bytes = max(peak_bytes, telemetry["telemetry_bytes"])
        print(
            f"seed {seed:3d}: {status}  events={report.num_fault_events:2d}  "
            f"transfers_failed={report.summary['transfers_failed']:3d}  "
            f"mean_accuracy={report.summary['mean_accuracy']:.4f}  "
            f"telemetry={telemetry['ring_occupancy']}/{telemetry['ring_capacity']} "
            f"ring, {telemetry['events_dropped']} dropped, "
            f"{telemetry['telemetry_bytes'] / 1024:.0f} KiB"
        )
        for violation in report.violations:
            print(f"    - {violation}")
            failures.append(f"seed {seed}: {violation}")
        if seed < DETERMINISM_SEEDS:
            rerun = run_chaos_trial(seed, intensity=args.intensity, quick=args.quick)
            if rerun.summary != report.summary:
                print(f"    - seed {seed} is not reproducible")
                failures.append(f"seed {seed}: summary differs between identical runs")

    if failures:
        print(f"\n{len(failures)} chaos failure(s)", file=sys.stderr)
        return 1
    print(
        f"\nall {args.seeds} seeds passed (first {DETERMINISM_SEEDS} replayed "
        f"bit-identically); peak telemetry footprint {peak_bytes / 1024:.0f} KiB"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
