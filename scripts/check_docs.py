#!/usr/bin/env python
"""Link-check the documentation tree so docs cannot rot silently.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and verifies that
every *relative* link target exists on disk (anchors are stripped; external
``http(s)``/``mailto`` links are out of scope — CI must not depend on the
network).  Exits non-zero listing every broken link.

Run from anywhere::

    python scripts/check_docs.py

The same checks run inside the tier-1 suite (``tests/unit/test_docs.py``)
and as CI's ``docs`` job next to ``python -m doctest README.md``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown inline links: ``[text](target)``.  Images (``![alt](target)``)
#: match too, which is what we want.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link schemes that are not files on disk.
_EXTERNAL = ("http://", "https://", "mailto:")


def documentation_files(root: Path = REPO_ROOT) -> List[Path]:
    """The Markdown files under check: the README plus the docs tree."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(path: Path) -> List[str]:
    """Human-readable messages for every dangling relative link in ``path``."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            failures.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: broken link -> {target}"
            )
    return failures


def main() -> int:
    files = documentation_files()
    if not files:
        print("no documentation files found (expected README.md and docs/*.md)")
        return 1
    failures = []
    for path in files:
        failures.extend(broken_links(path))
    if failures:
        print("BROKEN DOCUMENTATION LINKS:")
        for message in failures:
            print(f"  {message}")
        return 1
    print(f"{len(files)} documentation files checked, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
