#!/usr/bin/env python
"""Run the determinism analyzer over the repository.

Lints ``src/repro`` (or explicit paths) with the rule set in
``repro.analysis`` — wall-clock reads, unseeded RNG, hash-order iteration
in fleet modules, identity tie-breaks, unfrozen/undocumented calendar
events, unexported summary keys — and prints one finding per line.  CI
runs::

    PYTHONPATH=src python scripts/run_analysis.py --strict

Exit status: 0 when clean; 1 when any error finding survives suppression
(``--strict`` additionally fails on warnings, e.g. stale
``# repro: ignore[...]`` comments).  See ``docs/analysis.md`` for the rule
catalogue and suppression syntax.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import default_rules, run_analysis  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repository root the cross-check targets resolve against",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too (unused suppressions)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    report = run_analysis(args.paths or None, root=args.root)
    print(report.to_json() if args.json else report.render_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
