"""Training-data sampling strategies.

The micro-profiler samples a small fraction of the retraining window's data
(§4.3).  The paper reports that *uniform random* sampling is the most
indicative of full-data performance because it preserves the data's
distributions and variations; class-weighted sampling is also provided so the
claim can be tested (see ``tests/unit/test_sampling.py`` and the ablation in
``benchmarks/bench_fig11a_microprofiler_error.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import SeedLike, ensure_rng


def uniform_sample(
    features: np.ndarray,
    labels: np.ndarray,
    fraction: float,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform random sample without replacement of a labelled dataset."""
    _validate(features, labels, fraction)
    rng = rng if rng is not None else ensure_rng(seed)
    count = max(1, int(round(fraction * len(labels))))
    indices = rng.choice(len(labels), size=min(count, len(labels)), replace=False)
    return features[indices], labels[indices]


def class_balanced_sample(
    features: np.ndarray,
    labels: np.ndarray,
    fraction: float,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample roughly the same number of items from every present class.

    Included as the alternative the paper considered and rejected for
    micro-profiling: it distorts the class distribution, so estimates from it
    are less indicative of full-data retraining accuracy.
    """
    _validate(features, labels, fraction)
    rng = rng if rng is not None else ensure_rng(seed)
    total = max(1, int(round(fraction * len(labels))))
    present = np.unique(labels)
    per_class = max(1, total // len(present))
    chosen = []
    for cls in present:
        cls_indices = np.flatnonzero(labels == cls)
        take = min(per_class, len(cls_indices))
        chosen.append(rng.choice(cls_indices, size=take, replace=False))
    indices = np.concatenate(chosen)
    rng.shuffle(indices)
    indices = indices[:total]
    return features[indices], labels[indices]


def holdout_split(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    holdout_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a labelled dataset into (train, validation) parts.

    The validation part is what the micro-profiler computes per-epoch
    accuracies on before fitting the extrapolation curve.
    """
    _validate(features, labels, holdout_fraction)
    if not 0.0 < holdout_fraction < 1.0:
        raise DatasetError("holdout_fraction must be in (0, 1)")
    rng = rng if rng is not None else ensure_rng(seed)
    indices = rng.permutation(len(labels))
    holdout_count = max(1, int(round(holdout_fraction * len(labels))))
    holdout_idx = indices[:holdout_count]
    train_idx = indices[holdout_count:]
    if len(train_idx) == 0:
        raise DatasetError("holdout_fraction leaves no training data")
    return (
        features[train_idx],
        labels[train_idx],
        features[holdout_idx],
        labels[holdout_idx],
    )


def _validate(features: np.ndarray, labels: np.ndarray, fraction: float) -> None:
    if len(features) != len(labels):
        raise DatasetError("features and labels must have the same length")
    if len(labels) == 0:
        raise DatasetError("cannot sample from an empty dataset")
    if not 0.0 < fraction <= 1.0:
        raise DatasetError("fraction must be in (0, 1]")
