"""Synthetic drifting video workloads (substitute for Waymo/Cityscapes/Urban)."""

from .classes import DEFAULT_CLASSES, ClassTaxonomy
from .drift import AppearanceDrift, ClassDistributionDrift, DriftProfile
from .features import FeatureSpaceSpec, FeatureSynthesizer
from .generators import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    make_stream,
    make_workload,
    mixed_workload,
)
from .labeling import GoldenModel
from .sampling import class_balanced_sample, holdout_split, uniform_sample
from .stream import VideoStream, WindowData

__all__ = [
    "DEFAULT_CLASSES",
    "ClassTaxonomy",
    "AppearanceDrift",
    "ClassDistributionDrift",
    "DriftProfile",
    "FeatureSpaceSpec",
    "FeatureSynthesizer",
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_spec",
    "make_stream",
    "make_workload",
    "mixed_workload",
    "GoldenModel",
    "class_balanced_sample",
    "holdout_split",
    "uniform_sample",
    "VideoStream",
    "WindowData",
]
