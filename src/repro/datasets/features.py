"""Synthetic object-feature generation.

Each object class occupies a Gaussian cluster in a low-dimensional feature
space (think of it as the penultimate-layer embedding a compressed edge model
would see).  Appearance drift moves the cluster centres between retraining
windows, so a model trained on older windows gradually mis-classifies newer
frames — the data-drift accuracy drop of §2.3 — while retraining on recent
windows recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import SeedLike, ensure_rng
from .classes import ClassTaxonomy


@dataclass(frozen=True)
class FeatureSpaceSpec:
    """Geometry of the synthetic feature space.

    Attributes
    ----------
    feature_dim:
        Dimensionality of the object features.
    class_separation:
        Distance scale between class cluster centres; larger values make the
        classification problem easier.
    within_class_scale:
        Standard deviation of samples around their (drifted) cluster centre.
    """

    feature_dim: int = 16
    class_separation: float = 2.2
    within_class_scale: float = 1.1

    def __post_init__(self) -> None:
        if self.feature_dim < 2:
            raise DatasetError("feature_dim must be >= 2")
        if self.class_separation <= 0 or self.within_class_scale <= 0:
            raise DatasetError("class_separation and within_class_scale must be positive")


class FeatureSynthesizer:
    """Draws labelled feature vectors for a stream's windows."""

    def __init__(
        self,
        taxonomy: ClassTaxonomy,
        spec: FeatureSpaceSpec = FeatureSpaceSpec(),
        *,
        seed: SeedLike = None,
    ) -> None:
        self._taxonomy = taxonomy
        self._spec = spec
        rng = ensure_rng(seed)
        # Fixed per-stream class anchors.  Using random directions (rather
        # than an axis-aligned grid) keeps classes pairwise distinguishable
        # but not trivially separable.
        anchors = rng.normal(0.0, 1.0, size=(taxonomy.num_classes, spec.feature_dim))
        anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
        self._anchors = anchors * spec.class_separation
        self._rng = rng

    @property
    def spec(self) -> FeatureSpaceSpec:
        return self._spec

    @property
    def taxonomy(self) -> ClassTaxonomy:
        return self._taxonomy

    def class_centers(self, appearance_offsets: Optional[np.ndarray] = None) -> np.ndarray:
        """Cluster centres, optionally displaced by appearance drift offsets."""
        centers = self._anchors.copy()
        if appearance_offsets is not None:
            offsets = np.asarray(appearance_offsets, dtype=float)
            if offsets.shape != centers.shape:
                raise DatasetError(
                    f"appearance offsets shape {offsets.shape} does not match {centers.shape}"
                )
            centers = centers + offsets * self._spec.class_separation
        return centers

    def sample(
        self,
        num_samples: int,
        class_distribution: np.ndarray,
        *,
        appearance_offsets: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``num_samples`` labelled feature vectors.

        Returns ``(features, labels)`` where ``features`` has shape
        ``(num_samples, feature_dim)`` and ``labels`` are integer class
        indices drawn from ``class_distribution``.
        """
        if num_samples < 0:
            raise DatasetError("num_samples must be non-negative")
        rng = rng if rng is not None else self._rng
        distribution = self._taxonomy.validate_distribution(class_distribution)
        centers = self.class_centers(appearance_offsets)
        labels = rng.choice(self._taxonomy.num_classes, size=num_samples, p=distribution)
        noise = rng.normal(0.0, self._spec.within_class_scale, size=(num_samples, self._spec.feature_dim))
        features = centers[labels] + noise
        return features, labels.astype(np.int64)

    def bayes_error_estimate(
        self,
        appearance_offsets: Optional[np.ndarray] = None,
        *,
        num_samples: int = 2000,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Monte-Carlo estimate of the irreducible error of this window.

        Samples uniformly across classes and classifies with the true
        nearest-centre rule; the misclassification rate bounds what any model
        (including the golden model) can achieve on this window.
        """
        rng = rng if rng is not None else self._rng
        uniform = np.full(self._taxonomy.num_classes, 1.0 / self._taxonomy.num_classes)
        features, labels = self.sample(
            num_samples, uniform, appearance_offsets=appearance_offsets, rng=rng
        )
        centers = self.class_centers(appearance_offsets)
        distances = np.linalg.norm(features[:, None, :] - centers[None, :, :], axis=2)
        predictions = np.argmin(distances, axis=1)
        return float(np.mean(predictions != labels))
