"""Video streams and retraining-window data.

A :class:`VideoStream` is a synthetic stand-in for one camera feed: it yields
one :class:`WindowData` per retraining window containing the golden-model
labelled samples accumulated during that window (the data Ekya retrains on)
plus held-out samples used to evaluate inference accuracy on that window's
live video.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import SeedLike, ensure_rng, stable_seed
from .classes import ClassTaxonomy, DEFAULT_CLASSES
from .drift import AppearanceDrift, ClassDistributionDrift, DriftProfile
from .features import FeatureSpaceSpec, FeatureSynthesizer
from .labeling import GoldenModel


@dataclass
class WindowData:
    """All data belonging to one retraining window of one stream.

    Attributes
    ----------
    window_index:
        Zero-based index of the retraining window.
    duration_seconds:
        Length of the window (the paper uses 200 s in most experiments).
    train_features / train_labels:
        Golden-model labelled samples available for retraining in this window.
    eval_features / eval_labels:
        Held-out samples from the same window, used to measure the inference
        accuracy a model achieves *on this window's live video*.
    class_distribution:
        The window's true class-frequency vector (used for Figure 2a and by
        the cached-model-reuse baseline).
    label_noise_rate:
        Fraction of training labels the golden model got wrong.
    """

    window_index: int
    duration_seconds: float
    train_features: np.ndarray
    train_labels: np.ndarray
    eval_features: np.ndarray
    eval_labels: np.ndarray
    class_distribution: np.ndarray
    label_noise_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.window_index < 0:
            raise DatasetError("window_index must be non-negative")
        if self.duration_seconds <= 0:
            raise DatasetError("duration_seconds must be positive")
        if len(self.train_features) != len(self.train_labels):
            raise DatasetError("train features/labels length mismatch")
        if len(self.eval_features) != len(self.eval_labels):
            raise DatasetError("eval features/labels length mismatch")

    # ------------------------------------------------------------- accessors
    @property
    def num_train_samples(self) -> int:
        return int(len(self.train_labels))

    @property
    def num_eval_samples(self) -> int:
        return int(len(self.eval_labels))

    def subsample_training(
        self, fraction: float, *, rng: Optional[np.random.Generator] = None, seed: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform random subsample of the training data.

        This is both how a retraining configuration's ``data_fraction`` is
        realised and how the micro-profiler draws its 5–10 % profiling subset
        (§4.3 finds uniform sampling the most indicative choice).
        """
        if not 0.0 < fraction <= 1.0:
            raise DatasetError("fraction must be in (0, 1]")
        rng = rng if rng is not None else ensure_rng(seed)
        count = max(1, int(round(fraction * self.num_train_samples)))
        if self.num_train_samples == 0:
            return self.train_features.copy(), self.train_labels.copy()
        indices = rng.choice(self.num_train_samples, size=min(count, self.num_train_samples), replace=False)
        return self.train_features[indices], self.train_labels[indices]


class VideoStream:
    """One synthetic camera stream split into retraining windows."""

    def __init__(
        self,
        name: str,
        *,
        drift_profile: DriftProfile,
        taxonomy: Optional[ClassTaxonomy] = None,
        feature_spec: FeatureSpaceSpec = FeatureSpaceSpec(),
        window_duration: float = 200.0,
        samples_per_window: int = 400,
        eval_samples_per_window: int = 300,
        golden_model: Optional[GoldenModel] = None,
        fps: float = 30.0,
        seed: SeedLike = None,
    ) -> None:
        if samples_per_window < 4 or eval_samples_per_window < 4:
            raise DatasetError("windows need at least 4 train and eval samples")
        if window_duration <= 0 or fps <= 0:
            raise DatasetError("window_duration and fps must be positive")
        self.name = name
        self.taxonomy = taxonomy or ClassTaxonomy(DEFAULT_CLASSES)
        self.window_duration = float(window_duration)
        self.samples_per_window = int(samples_per_window)
        self.eval_samples_per_window = int(eval_samples_per_window)
        self.fps = float(fps)
        self._seed = stable_seed("stream", name, base=0 if seed is None else int(ensure_rng(seed).integers(0, 2**31 - 1)))
        base_rng = ensure_rng(self._seed)
        self._distribution_drift = ClassDistributionDrift(
            self.taxonomy, drift_profile, seed=ensure_rng(self._seed + 1)
        )
        self._appearance_drift = AppearanceDrift(
            self.taxonomy, drift_profile, feature_dim=feature_spec.feature_dim, seed=ensure_rng(self._seed + 2)
        )
        self._synthesizer = FeatureSynthesizer(self.taxonomy, feature_spec, seed=ensure_rng(self._seed + 3))
        self._golden_model = golden_model or GoldenModel(error_rate=0.02, seed=self._seed + 4)
        self._drift_profile = drift_profile
        self._window_cache: Dict[int, WindowData] = {}
        del base_rng

    # --------------------------------------------------------------- windows
    def window(self, window_index: int) -> WindowData:
        """Return (and cache) the data for retraining window ``window_index``."""
        if window_index < 0:
            raise DatasetError("window_index must be non-negative")
        if window_index in self._window_cache:
            return self._window_cache[window_index]
        distribution = self._distribution_drift.distribution_for_window(window_index)
        offsets = self._appearance_drift.offsets_for_window(window_index)
        rng = ensure_rng(stable_seed("window", self.name, window_index, base=self._seed))
        train_features, true_train_labels = self._synthesizer.sample(
            self.samples_per_window, distribution, appearance_offsets=offsets, rng=rng
        )
        eval_features, eval_labels = self._synthesizer.sample(
            self.eval_samples_per_window, distribution, appearance_offsets=offsets, rng=rng
        )
        train_labels, noise_rate = self._golden_model.label(
            true_train_labels, num_classes=self.taxonomy.num_classes, rng=rng
        )
        data = WindowData(
            window_index=window_index,
            duration_seconds=self.window_duration,
            train_features=train_features,
            train_labels=train_labels,
            eval_features=eval_features,
            eval_labels=eval_labels,
            class_distribution=distribution,
            label_noise_rate=noise_rate,
        )
        self._window_cache[window_index] = data
        return data

    def windows(self, count: int):
        """Iterate over the first ``count`` windows."""
        for index in range(count):
            yield self.window(index)

    # ----------------------------------------------------------------- drift
    def drift_magnitude(self, from_window: int, to_window: int) -> float:
        """Appearance-drift magnitude between two windows (see §4.2)."""
        return self._appearance_drift.drift_magnitude(from_window, to_window)

    def class_distribution(self, window_index: int) -> np.ndarray:
        """The class-frequency vector of a window (Figure 2a)."""
        return self._distribution_drift.distribution_for_window(window_index)

    @property
    def feature_dim(self) -> int:
        return self._synthesizer.spec.feature_dim

    @property
    def golden_model(self) -> GoldenModel:
        return self._golden_model

    @property
    def drift_profile(self) -> DriftProfile:
        return self._drift_profile

    def frames_per_window(self) -> int:
        """Number of live frames arriving during one retraining window."""
        return int(round(self.fps * self.window_duration))

    def __repr__(self) -> str:
        return (
            f"VideoStream(name={self.name!r}, window_duration={self.window_duration}, "
            f"samples_per_window={self.samples_per_window})"
        )
