"""Golden-model labelling (teacher/student supervision).

Manual labelling is infeasible for continuous retraining on the edge, so the
paper obtains labels from a "golden model": a large, expensive DNN
(ResNeXt101) that is highly accurate but too slow to run on every live frame
(§2.2).  The golden model labels only the subset of frames kept for
retraining, and those labels contain a small amount of error.

In this reproduction the generative ground truth is known, so the
:class:`GoldenModel` simply corrupts the true labels at a configurable error
rate — exercising the same student-supervised-by-imperfect-teacher code path
without a second heavyweight network.  Its cost model (GPU-seconds per
labelled sample) is used by the cloud-offload comparison and by capacity
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import SeedLike, ensure_rng


@dataclass
class GoldenModel:
    """A simulated high-accuracy, high-cost teacher model.

    Attributes
    ----------
    error_rate:
        Probability that the golden model assigns a wrong (uniformly random
        other) class to a sample.  The paper verifies golden-model labels are
        "very similar to human-annotated labels", so the default is small.
    gpu_seconds_per_sample:
        Cost of labelling one sample, used when accounting for the labelling
        overhead of retraining data preparation.
    seed:
        Seed for the label-corruption randomness (only used when no generator
        is passed to :meth:`label`).
    """

    error_rate: float = 0.02
    gpu_seconds_per_sample: float = 0.05
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise DatasetError("error_rate must be in [0, 1)")
        if self.gpu_seconds_per_sample < 0:
            raise DatasetError("gpu_seconds_per_sample must be non-negative")
        self._rng = ensure_rng(self.seed)

    def label(
        self,
        true_labels: np.ndarray,
        *,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, float]:
        """Return golden-model labels and the realised noise rate.

        Each label is replaced with a uniformly-random *different* class with
        probability ``error_rate``.
        """
        if num_classes < 2:
            raise DatasetError("num_classes must be >= 2")
        rng = rng if rng is not None else self._rng
        labels = np.asarray(true_labels, dtype=np.int64).copy()
        if labels.size == 0:
            return labels, 0.0
        flip_mask = rng.random(labels.shape) < self.error_rate
        if np.any(flip_mask):
            offsets = rng.integers(1, num_classes, size=int(flip_mask.sum()))
            labels[flip_mask] = (labels[flip_mask] + offsets) % num_classes
        return labels, float(np.mean(flip_mask))

    def labeling_cost(self, num_samples: int) -> float:
        """GPU-seconds needed to label ``num_samples`` samples."""
        if num_samples < 0:
            raise DatasetError("num_samples must be non-negative")
        return float(num_samples * self.gpu_seconds_per_sample)
