"""Workload generators mirroring the paper's four video datasets.

The evaluation (§6.1) uses two dashcam datasets (Waymo Open, Cityscapes) and
two stationary-camera datasets collected over 24 hours ("Urban Building" and
"Urban Traffic").  We cannot ship those videos, so each dataset is replaced by
a synthetic generator whose drift characteristics match the qualitative
behaviour the paper reports:

* **cityscapes** — dashcam, moderate class-distribution drift with occasional
  class dropout (Figure 2a) and steady appearance drift as the car moves
  through neighbourhoods.
* **waymo** — dashcam, higher appearance drift (many cities, day/night) and
  regime switches.
* **urban_building** — static camera, slow drift dominated by diurnal cycles.
* **urban_traffic** — static traffic camera, diurnal cycles plus rush-hour
  regime switches (stronger class-mix swings than the building camera).

Every generated stream is deterministic in ``(dataset, stream index, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exceptions import DatasetError
from ..utils.rng import stable_seed
from .classes import ClassTaxonomy, DEFAULT_CLASSES
from .drift import DriftProfile
from .features import FeatureSpaceSpec
from .labeling import GoldenModel
from .stream import VideoStream

#: Canonical dataset names accepted by :func:`make_workload`.
DATASET_NAMES = ("cityscapes", "waymo", "urban_building", "urban_traffic")


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one synthetic dataset family."""

    name: str
    drift_profile: DriftProfile
    window_duration: float = 200.0
    samples_per_window: int = 400
    eval_samples_per_window: int = 300
    fps: float = 30.0
    feature_spec: FeatureSpaceSpec = FeatureSpaceSpec()

    def __post_init__(self) -> None:
        if not self.name:
            raise DatasetError("dataset name must be non-empty")


_DATASET_SPECS: Dict[str, DatasetSpec] = {
    "cityscapes": DatasetSpec(
        name="cityscapes",
        drift_profile=DriftProfile(
            distribution_volatility=0.40,
            appearance_volatility=0.22,
            dropout_probability=0.15,
        ),
    ),
    "waymo": DatasetSpec(
        name="waymo",
        drift_profile=DriftProfile(
            distribution_volatility=0.30,
            appearance_volatility=0.30,
            regime_period=4,
            dropout_probability=0.10,
        ),
    ),
    "urban_building": DatasetSpec(
        name="urban_building",
        drift_profile=DriftProfile(
            distribution_volatility=0.15,
            appearance_volatility=0.11,
            dropout_probability=0.05,
            diurnal=True,
        ),
    ),
    "urban_traffic": DatasetSpec(
        name="urban_traffic",
        drift_profile=DriftProfile(
            distribution_volatility=0.25,
            appearance_volatility=0.16,
            regime_period=6,
            dropout_probability=0.08,
            diurnal=True,
        ),
    ),
}


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the spec for a dataset family by name."""
    try:
        return _DATASET_SPECS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {sorted(_DATASET_SPECS)}"
        ) from exc


def make_stream(
    dataset: str,
    stream_index: int,
    *,
    seed: int = 0,
    window_duration: Optional[float] = None,
    samples_per_window: Optional[int] = None,
    eval_samples_per_window: Optional[int] = None,
    golden_model: Optional[GoldenModel] = None,
    taxonomy: Optional[ClassTaxonomy] = None,
) -> VideoStream:
    """Create one deterministic synthetic stream of a dataset family."""
    if stream_index < 0:
        raise DatasetError("stream_index must be non-negative")
    spec = dataset_spec(dataset)
    stream_seed = stable_seed("dataset", dataset, stream_index, base=seed)
    return VideoStream(
        name=f"{dataset}-{stream_index}",
        drift_profile=spec.drift_profile,
        taxonomy=taxonomy or ClassTaxonomy(DEFAULT_CLASSES),
        feature_spec=spec.feature_spec,
        window_duration=window_duration if window_duration is not None else spec.window_duration,
        samples_per_window=samples_per_window if samples_per_window is not None else spec.samples_per_window,
        eval_samples_per_window=(
            eval_samples_per_window
            if eval_samples_per_window is not None
            else spec.eval_samples_per_window
        ),
        golden_model=golden_model,
        fps=spec.fps,
        seed=stream_seed,
    )


def make_workload(
    dataset: str,
    num_streams: int,
    *,
    seed: int = 0,
    window_duration: Optional[float] = None,
    samples_per_window: Optional[int] = None,
    eval_samples_per_window: Optional[int] = None,
) -> List[VideoStream]:
    """Create ``num_streams`` streams of the given dataset family.

    This is the entry point the benchmark harness uses: e.g. 10 Cityscapes
    streams for Figure 7a, or 2–8 Waymo streams for Figure 6b.
    """
    if num_streams < 1:
        raise DatasetError("num_streams must be >= 1")
    return [
        make_stream(
            dataset,
            index,
            seed=seed,
            window_duration=window_duration,
            samples_per_window=samples_per_window,
            eval_samples_per_window=eval_samples_per_window,
        )
        for index in range(num_streams)
    ]


def mixed_workload(
    datasets: Sequence[str],
    streams_per_dataset: int,
    *,
    seed: int = 0,
    window_duration: Optional[float] = None,
) -> List[VideoStream]:
    """Interleave streams from several dataset families.

    Useful for examples and stress tests: an edge server often serves a mix of
    camera types (building cameras plus traffic intersections).
    """
    if streams_per_dataset < 1:
        raise DatasetError("streams_per_dataset must be >= 1")
    streams: List[VideoStream] = []
    for dataset in datasets:
        streams.extend(
            make_workload(
                dataset,
                streams_per_dataset,
                seed=seed,
                window_duration=window_duration,
            )
        )
    return streams
