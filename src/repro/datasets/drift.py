"""Data-drift models for the synthetic video workloads.

The paper identifies two forms of drift that erode an edge model's accuracy
(§2.2, Figure 2):

* **class-distribution drift** — the mix of object classes changes across
  retraining windows (bicycles disappear, person share fluctuates), and
* **appearance drift** — objects of the same class look different over time
  (lighting, viewing angles, clothing, neighbourhoods).

:class:`ClassDistributionDrift` generates a per-window class-frequency vector
and :class:`AppearanceDrift` generates a per-window displacement of each
class's feature-space cluster centre.  Both are deterministic functions of a
seed, so workloads are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import SeedLike, ensure_rng
from .classes import ClassTaxonomy


@dataclass(frozen=True)
class DriftProfile:
    """Knobs controlling how quickly a stream's content changes.

    Attributes
    ----------
    distribution_volatility:
        Scale of the random-walk step applied to class log-frequencies per
        window.  Dashcam streams (Waymo/Cityscapes-like) use higher values
        than static cameras.
    appearance_volatility:
        Step size of the per-class appearance (cluster-centre) random walk in
        feature space, expressed as a fraction of the inter-class distance.
    regime_period:
        If set, the class distribution also switches between distinct
        "regimes" (e.g. rush hour vs night) every ``regime_period`` windows.
    dropout_probability:
        Probability that a minority class disappears from a window entirely
        (Figure 2a: bicycles vanish in windows 6–7).
    diurnal:
        If true, a slow sinusoidal modulation is layered on the class
        distribution to mimic 24-hour cycles of the static "Urban" cameras.
    """

    distribution_volatility: float = 0.35
    appearance_volatility: float = 0.12
    regime_period: Optional[int] = None
    dropout_probability: float = 0.1
    diurnal: bool = False

    def __post_init__(self) -> None:
        if self.distribution_volatility < 0 or self.appearance_volatility < 0:
            raise DatasetError("drift volatilities must be non-negative")
        if self.regime_period is not None and self.regime_period < 1:
            raise DatasetError("regime_period must be >= 1 when provided")
        if not 0.0 <= self.dropout_probability <= 1.0:
            raise DatasetError("dropout_probability must be in [0, 1]")


class ClassDistributionDrift:
    """Per-window class-frequency vectors following a constrained random walk."""

    def __init__(
        self,
        taxonomy: ClassTaxonomy,
        profile: DriftProfile,
        *,
        base_distribution: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
    ) -> None:
        self._taxonomy = taxonomy
        self._profile = profile
        self._rng = ensure_rng(seed)
        if base_distribution is None:
            base = self._rng.dirichlet(np.full(taxonomy.num_classes, 2.0))
        else:
            base = taxonomy.validate_distribution(base_distribution)
        self._base_logits = np.log(np.clip(base, 1e-6, None))
        self._regimes = self._make_regimes()

    def _make_regimes(self) -> List[np.ndarray]:
        """Pre-draw a handful of distribution regimes to alternate between."""
        regimes = [self._base_logits]
        for _ in range(3):
            perturbation = self._rng.normal(0.0, 1.2, size=self._base_logits.shape)
            regimes.append(self._base_logits + perturbation)
        return regimes

    def distribution_for_window(self, window_index: int) -> np.ndarray:
        """Class-frequency vector for retraining window ``window_index``."""
        if window_index < 0:
            raise DatasetError("window_index must be non-negative")
        profile = self._profile
        # Recompute the random walk from the start for every request so that
        # windows can be queried out of order and still agree.
        logits = self._base_logits.copy()
        walk_rng = ensure_rng(int(self._rng_integer()))
        for step in range(window_index + 1):
            logits = logits + walk_rng.normal(0.0, profile.distribution_volatility, size=logits.shape)
        if profile.regime_period:
            regime_index = (window_index // profile.regime_period) % len(self._regimes)
            logits = 0.5 * logits + 0.5 * self._regimes[regime_index]
        if profile.diurnal:
            phase = 2.0 * np.pi * window_index / 12.0
            modulation = 0.6 * np.sin(phase + np.arange(logits.size))
            logits = logits + modulation
        distribution = np.exp(logits - logits.max())
        distribution /= distribution.sum()
        # Class dropout: zero-out a random minority class occasionally.
        dropout_rng = ensure_rng(int(self._rng_integer()) + window_index)
        if dropout_rng.random() < profile.dropout_probability and distribution.size > 2:
            victim = int(np.argsort(distribution)[0])
            distribution[victim] = 0.0
            distribution /= distribution.sum()
        return distribution

    # A fixed integer derived once so the per-window walks share a root seed.
    def _rng_integer(self) -> int:
        if not hasattr(self, "_root_seed"):
            self._root_seed = int(self._rng.integers(0, 2**31 - 1))
        return self._root_seed


class AppearanceDrift:
    """Per-window displacement of each class's cluster centre in feature space."""

    def __init__(
        self,
        taxonomy: ClassTaxonomy,
        profile: DriftProfile,
        *,
        feature_dim: int,
        seed: SeedLike = None,
    ) -> None:
        if feature_dim < 1:
            raise DatasetError("feature_dim must be >= 1")
        self._taxonomy = taxonomy
        self._profile = profile
        self._feature_dim = feature_dim
        self._rng = ensure_rng(seed)
        self._root_seed = int(self._rng.integers(0, 2**31 - 1))

    @property
    def feature_dim(self) -> int:
        return self._feature_dim

    def offsets_for_window(self, window_index: int) -> np.ndarray:
        """(num_classes, feature_dim) array of cluster-centre offsets."""
        if window_index < 0:
            raise DatasetError("window_index must be non-negative")
        walk_rng = ensure_rng(self._root_seed)
        offsets = np.zeros((self._taxonomy.num_classes, self._feature_dim))
        for _ in range(window_index + 1):
            offsets = offsets + walk_rng.normal(
                0.0, self._profile.appearance_volatility, size=offsets.shape
            )
        return offsets

    def drift_magnitude(self, from_window: int, to_window: int) -> float:
        """Mean per-class displacement between two windows.

        The controller uses this as a cheap proxy for "how much the stream's
        characteristics changed", which drives how much a stream benefits from
        retraining (§4: Ekya prioritises the streams whose characteristics
        changed the most).
        """
        a = self.offsets_for_window(from_window)
        b = self.offsets_for_window(to_window)
        return float(np.mean(np.linalg.norm(b - a, axis=1)))
