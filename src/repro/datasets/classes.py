"""Object-class taxonomy used by the synthetic video workloads.

The Cityscapes study in the paper (Figure 2a) tracks six object classes —
bicycle, bus, car, motorcycle, person and truck — whose relative frequencies
drift across retraining windows.  The synthetic generators use the same
taxonomy so the reproduced Figure 2a is directly comparable.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..exceptions import DatasetError

#: The canonical class names, in the order used for distribution vectors.
DEFAULT_CLASSES: List[str] = ["bicycle", "bus", "car", "motorcycle", "person", "truck"]


class ClassTaxonomy:
    """Ordered set of object classes with index lookups.

    A taxonomy maps class names to contiguous integer labels (the labels the
    edge model predicts) and validates class-distribution vectors.
    """

    def __init__(self, names: Sequence[str] = DEFAULT_CLASSES) -> None:
        names = list(names)
        if not names:
            raise DatasetError("a taxonomy needs at least one class")
        if len(set(names)) != len(names):
            raise DatasetError("class names must be unique")
        self._names = names
        self._index = {name: i for i, name in enumerate(names)}

    # ------------------------------------------------------------ accessors
    @property
    def names(self) -> List[str]:
        return list(self._names)

    @property
    def num_classes(self) -> int:
        return len(self._names)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError as exc:
            raise DatasetError(f"unknown class {name!r}") from exc

    def name_of(self, index: int) -> str:
        if not 0 <= index < len(self._names):
            raise DatasetError(f"class index {index} out of range")
        return self._names[index]

    def __len__(self) -> int:
        return self.num_classes

    def __iter__(self):
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassTaxonomy) and other._names == self._names

    def __hash__(self) -> int:
        return hash(tuple(self._names))

    def __repr__(self) -> str:
        return f"ClassTaxonomy({self._names!r})"

    # ----------------------------------------------------------- validation
    def validate_distribution(self, distribution: Sequence[float]) -> np.ndarray:
        """Check a class-frequency vector and return it as a numpy array."""
        arr = np.asarray(list(distribution), dtype=float)
        if arr.shape != (self.num_classes,):
            raise DatasetError(
                f"distribution has {arr.shape} entries; expected {self.num_classes}"
            )
        if np.any(arr < 0):
            raise DatasetError("class frequencies must be non-negative")
        total = float(arr.sum())
        if total <= 0:
            raise DatasetError("class frequencies must not all be zero")
        return arr / total
