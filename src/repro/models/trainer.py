"""Retraining execution on the numpy substrate.

:class:`Trainer` runs one retraining configuration against one window's data,
recording the per-epoch validation accuracy and the GPU-time consumed — the
same "training-accuracy progression over GPU-time" trace the paper's testbed
logs and its simulator replays (§6.1).  The trainer is used directly by the
micro-profiler (short, subsampled runs) and by the testbed-style examples
(full runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..configs.retraining import RetrainingConfig
from ..datasets.sampling import holdout_split
from ..datasets.stream import WindowData
from ..exceptions import ModelError
from ..utils.rng import SeedLike, ensure_rng
from .edge_model import training_gpu_seconds
from .mlp import MLPClassifier


@dataclass
class TrainingResult:
    """Outcome of executing a retraining configuration.

    Attributes
    ----------
    config:
        The retraining configuration that was executed.
    epoch_accuracies:
        Validation accuracy measured after each completed epoch.
    gpu_seconds:
        Total GPU-time consumed at 100 % allocation.
    gpu_seconds_per_epoch:
        GPU-time of a single epoch (used by the scheduler to rescale cost for
        other allocations / epoch counts).
    samples_used:
        Number of training samples actually used after applying the
        configuration's ``data_fraction``.
    final_accuracy:
        Convenience accessor for the last entry of ``epoch_accuracies``.
    """

    config: RetrainingConfig
    epoch_accuracies: List[float] = field(default_factory=list)
    gpu_seconds: float = 0.0
    gpu_seconds_per_epoch: float = 0.0
    samples_used: int = 0

    @property
    def final_accuracy(self) -> float:
        return self.epoch_accuracies[-1] if self.epoch_accuracies else 0.0

    def accuracy_after(self, epochs: int) -> float:
        """Accuracy after the first ``epochs`` epochs (clamps to the run length)."""
        if epochs < 1 or not self.epoch_accuracies:
            return 0.0
        return self.epoch_accuracies[min(epochs, len(self.epoch_accuracies)) - 1]


class Trainer:
    """Executes retraining configurations against window data."""

    def __init__(
        self,
        *,
        holdout_fraction: float = 0.25,
        seconds_per_sample_epoch: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 < holdout_fraction < 1.0:
            raise ModelError("holdout_fraction must be in (0, 1)")
        self._holdout_fraction = holdout_fraction
        self._seconds_per_sample_epoch = seconds_per_sample_epoch
        self._rng = ensure_rng(seed)

    def train(
        self,
        model: MLPClassifier,
        window: WindowData,
        config: RetrainingConfig,
        *,
        max_epochs: Optional[int] = None,
        data_fraction_override: Optional[float] = None,
        validation_features: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainingResult:
        """Train ``model`` in place on ``window`` using ``config``.

        ``max_epochs`` and ``data_fraction_override`` support the
        micro-profiler's early termination and data subsampling without
        constructing a separate configuration.  If validation data is not
        supplied, a holdout split of the (sampled) training data is used.
        """
        rng = rng if rng is not None else self._rng
        fraction = data_fraction_override if data_fraction_override is not None else config.data_fraction
        features, labels = window.subsample_training(fraction, rng=rng)
        if validation_features is None or validation_labels is None:
            if len(labels) >= 8:
                features, labels, validation_features, validation_labels = holdout_split(
                    features, labels, holdout_fraction=self._holdout_fraction, rng=rng
                )
            else:
                validation_features, validation_labels = features, labels

        model.set_trainable_fraction(config.layers_trained_fraction)
        epochs = config.epochs if max_epochs is None else min(config.epochs, max_epochs)
        if epochs < 1:
            raise ModelError("must train for at least one epoch")

        kwargs = {}
        if self._seconds_per_sample_epoch is not None:
            kwargs["seconds_per_sample_epoch"] = self._seconds_per_sample_epoch
        total_gpu_seconds = training_gpu_seconds(
            window.num_train_samples,
            config.with_epochs(epochs).with_data_fraction(fraction),
            **kwargs,
        )
        per_epoch = total_gpu_seconds / epochs

        accuracies: List[float] = []
        for _ in range(epochs):
            model.train_epoch(features, labels, batch_size=config.batch_size, rng=rng)
            accuracies.append(model.accuracy(validation_features, validation_labels))

        return TrainingResult(
            config=config,
            epoch_accuracies=accuracies,
            gpu_seconds=total_gpu_seconds,
            gpu_seconds_per_epoch=per_epoch,
            samples_used=len(labels),
        )

    def evaluate(self, model: MLPClassifier, window: WindowData) -> float:
        """Inference accuracy of ``model`` on a window's held-out live data."""
        return model.accuracy(window.eval_features, window.eval_labels)
