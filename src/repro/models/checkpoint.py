"""Model checkpointing during retraining.

Ekya periodically checkpoints the model being retrained and can dynamically
load the checkpoint as the live inference model so that inference benefits
from retraining before it fully completes (§5).  Checkpointing has a cost —
it briefly disrupts both jobs — so the controller weighs that cost against the
benefit of serving a more accurate model sooner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import CheckpointError
from .mlp import MLPClassifier


@dataclass
class Checkpoint:
    """A snapshot of model weights taken at a point during retraining."""

    epoch: int
    validation_accuracy: float
    state: List = field(repr=False)
    wall_clock_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise CheckpointError("epoch must be non-negative")
        if not 0.0 <= self.validation_accuracy <= 1.0:
            raise CheckpointError("validation_accuracy must be in [0, 1]")


class CheckpointManager:
    """Stores checkpoints of one retraining job and restores the best one.

    Attributes
    ----------
    checkpoint_every_epochs:
        Interval between snapshots.
    disruption_seconds:
        Simulated cost of taking or loading a snapshot (retraining pauses and
        queued inference requests wait while weights are swapped).
    """

    def __init__(self, *, checkpoint_every_epochs: int = 5, disruption_seconds: float = 1.0) -> None:
        if checkpoint_every_epochs < 1:
            raise CheckpointError("checkpoint_every_epochs must be >= 1")
        if disruption_seconds < 0:
            raise CheckpointError("disruption_seconds must be non-negative")
        self.checkpoint_every_epochs = checkpoint_every_epochs
        self.disruption_seconds = disruption_seconds
        self._checkpoints: List[Checkpoint] = []

    # --------------------------------------------------------------- storage
    def maybe_checkpoint(
        self,
        model: MLPClassifier,
        *,
        epoch: int,
        validation_accuracy: float,
        wall_clock_seconds: float = 0.0,
    ) -> Optional[Checkpoint]:
        """Snapshot the model if ``epoch`` is on the checkpoint interval."""
        if epoch < 1:
            raise CheckpointError("epoch must be >= 1 when checkpointing")
        if epoch % self.checkpoint_every_epochs != 0:
            return None
        checkpoint = Checkpoint(
            epoch=epoch,
            validation_accuracy=validation_accuracy,
            state=model.get_state(),
            wall_clock_seconds=wall_clock_seconds,
        )
        self._checkpoints.append(checkpoint)
        return checkpoint

    @property
    def checkpoints(self) -> List[Checkpoint]:
        return list(self._checkpoints)

    @property
    def total_disruption_seconds(self) -> float:
        """Aggregate retraining delay introduced by the snapshots taken so far."""
        return self.disruption_seconds * len(self._checkpoints)

    # --------------------------------------------------------------- restore
    def best(self) -> Optional[Checkpoint]:
        """The stored checkpoint with the highest validation accuracy."""
        if not self._checkpoints:
            return None
        return max(self._checkpoints, key=lambda ckpt: ckpt.validation_accuracy)

    def latest(self) -> Optional[Checkpoint]:
        """The most recent checkpoint, if any."""
        return self._checkpoints[-1] if self._checkpoints else None

    def restore(self, model: MLPClassifier, checkpoint: Optional[Checkpoint] = None) -> Checkpoint:
        """Load ``checkpoint`` (default: the best one) into ``model``."""
        target = checkpoint or self.best()
        if target is None:
            raise CheckpointError("no checkpoints available to restore")
        model.set_state(target.state)
        return target

    def should_reload(
        self,
        *,
        current_accuracy: float,
        remaining_window_seconds: float,
    ) -> bool:
        """Decide whether loading the best checkpoint pays off.

        Loading is worthwhile when the best checkpoint improves on the serving
        model's accuracy by enough that the improvement, integrated over the
        remaining window, outweighs the disruption cost (during which the
        stream is effectively unanalysed).
        """
        best = self.best()
        if best is None or remaining_window_seconds <= 0:
            return False
        gain = best.validation_accuracy - current_accuracy
        if gain <= 0:
            return False
        benefit = gain * remaining_window_seconds
        cost = self.disruption_seconds * max(current_accuracy, best.validation_accuracy)
        return benefit > cost
