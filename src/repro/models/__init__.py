"""Trainable edge-DNN substrate (numpy MLP, trainer, continual learning)."""

from .checkpoint import Checkpoint, CheckpointManager
from .continual import ExemplarReplayLearner, ExemplarSet
from .edge_model import (
    EDGE_MODEL_SIZE_MBITS,
    GOLDEN_MODEL_SLOWDOWN,
    GPU_SECONDS_PER_SAMPLE_EPOCH,
    EdgeModelSpec,
    create_edge_model,
    training_gpu_seconds,
)
from .layers import DenseLayer, cross_entropy_gradient, cross_entropy_loss, softmax
from .mlp import MLPClassifier
from .trainer import Trainer, TrainingResult

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "ExemplarReplayLearner",
    "ExemplarSet",
    "EDGE_MODEL_SIZE_MBITS",
    "GOLDEN_MODEL_SLOWDOWN",
    "GPU_SECONDS_PER_SAMPLE_EPOCH",
    "EdgeModelSpec",
    "create_edge_model",
    "training_gpu_seconds",
    "DenseLayer",
    "cross_entropy_gradient",
    "cross_entropy_loss",
    "softmax",
    "MLPClassifier",
    "Trainer",
    "TrainingResult",
]
