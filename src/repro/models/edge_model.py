"""Edge model factory and cost constants.

The paper deploys a compressed ResNet18 classifier per stream and a large
ResNeXt101 "golden" model for labelling (§6.1).  In this reproduction the
edge model is an :class:`~repro.models.mlp.MLPClassifier` whose hidden width
is the retraining configuration's ``last_layer_neurons`` knob; the constants
below capture the *relative* costs the paper cites (the golden model is ~13×
slower than the compressed model) so that capacity and cloud-offload
accounting stay faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..configs.retraining import RetrainingConfig
from ..exceptions import ModelError
from ..utils.rng import SeedLike
from .mlp import MLPClassifier

#: GPU-seconds to train one epoch over one sample on the (simulated) edge GPU
#: at 100 % allocation.  400 samples/window × 30 epochs ≈ 120 GPU-seconds,
#: matching the 0–200 GPU-second range of Figure 3.
GPU_SECONDS_PER_SAMPLE_EPOCH = 0.01

#: Relative inference cost of the golden model versus the edge model
#: (ResNet101 is reported ~13× slower than the compressed ResNet18).
GOLDEN_MODEL_SLOWDOWN = 13.0

#: Serialized size of the edge model in megabits, used by the cloud-offload
#: comparison (the paper uses the 398 Mb torchvision ResNet18 checkpoint).
EDGE_MODEL_SIZE_MBITS = 398.0


@dataclass(frozen=True)
class EdgeModelSpec:
    """Architecture description of the per-stream compressed edge model."""

    feature_dim: int
    num_classes: int
    hidden_layers: int = 2
    hidden_width: int = 32
    learning_rate: float = 0.08

    def __post_init__(self) -> None:
        if self.hidden_layers < 1:
            raise ModelError("hidden_layers must be >= 1")
        if self.hidden_width < 2:
            raise ModelError("hidden_width must be >= 2")


def create_edge_model(
    spec: EdgeModelSpec,
    *,
    config: RetrainingConfig | None = None,
    seed: SeedLike = None,
) -> MLPClassifier:
    """Instantiate a fresh edge model.

    When a retraining configuration is given, its ``last_layer_neurons`` knob
    overrides the width of the final hidden layer, mirroring how the paper's
    configurations resize the classification head.
    """
    hidden_sizes = [spec.hidden_width] * spec.hidden_layers
    if config is not None:
        hidden_sizes[-1] = int(config.last_layer_neurons)
    return MLPClassifier(
        feature_dim=spec.feature_dim,
        num_classes=spec.num_classes,
        hidden_sizes=hidden_sizes,
        learning_rate=spec.learning_rate,
        seed=seed,
    )


def training_gpu_seconds(
    num_samples: int,
    config: RetrainingConfig,
    *,
    seconds_per_sample_epoch: float = GPU_SECONDS_PER_SAMPLE_EPOCH,
) -> float:
    """GPU-seconds (at 100 % allocation) to run ``config`` on ``num_samples``.

    Cost is linear in epochs and in the number of samples actually used
    (``num_samples × data_fraction``), and scales with the freeze/batch/width
    factors of :meth:`RetrainingConfig.relative_cost`.
    """
    if num_samples < 0:
        raise ModelError("num_samples must be non-negative")
    if seconds_per_sample_epoch <= 0:
        raise ModelError("seconds_per_sample_epoch must be positive")
    used_samples = num_samples * config.data_fraction
    freeze_factor = 0.35 + 0.65 * config.layers_trained_fraction
    batch_factor = 1.0 + 8.0 / float(config.batch_size)
    width_factor = 0.8 + 0.2 * (config.last_layer_neurons / 64.0)
    per_epoch = used_samples * seconds_per_sample_epoch * freeze_factor * batch_factor * width_factor / 1.5
    return float(per_epoch * config.epochs)
