"""A small multi-layer perceptron classifier trained with mini-batch SGD.

This is the "compressed edge DNN" substrate (the paper's ResNet18 analogue):
a deliberately low-capacity model that can be retrained in milliseconds on the
synthetic object features, supports freezing a fraction of its layers, and
exposes per-epoch accuracy so the micro-profiler can fit its extrapolation
curves against genuine training dynamics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ModelError
from ..utils.rng import SeedLike, ensure_rng
from .layers import DenseLayer, cross_entropy_gradient, cross_entropy_loss, softmax


class MLPClassifier:
    """Feed-forward classifier with ReLU hidden layers and a softmax head."""

    def __init__(
        self,
        feature_dim: int,
        num_classes: int,
        hidden_sizes: Sequence[int] = (32, 32),
        *,
        learning_rate: float = 0.08,
        seed: SeedLike = None,
    ) -> None:
        if feature_dim < 1 or num_classes < 2:
            raise ModelError("need feature_dim >= 1 and num_classes >= 2")
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        self.feature_dim = int(feature_dim)
        self.num_classes = int(num_classes)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.learning_rate = float(learning_rate)
        rng = ensure_rng(seed)
        sizes = [self.feature_dim, *self.hidden_sizes, self.num_classes]
        self.layers: List[DenseLayer] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            activation = "relu" if i < len(sizes) - 2 else "linear"
            self.layers.append(
                DenseLayer(fan_in, fan_out, activation=activation, seed=rng)
            )
        self._rng = rng

    # -------------------------------------------------------------- freezing
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def set_trainable_fraction(self, fraction: float) -> int:
        """Freeze the earliest layers so only ``fraction`` of layers train.

        Returns the number of layers left trainable.  Mirrors the retraining
        configuration knob "number of layers to retrain": at least the final
        classification layer is always trainable.
        """
        if not 0.0 < fraction <= 1.0:
            raise ModelError("fraction must be in (0, 1]")
        trainable = max(1, int(round(fraction * self.num_layers)))
        frozen_count = self.num_layers - trainable
        for index, layer in enumerate(self.layers):
            layer.frozen = index < frozen_count
        return trainable

    def trainable_parameter_fraction(self) -> float:
        """Fraction of parameters currently unfrozen (cost-model input)."""
        total = sum(layer.num_parameters for layer in self.layers)
        trainable = sum(layer.num_parameters for layer in self.layers if not layer.frozen)
        return trainable / total if total else 0.0

    # --------------------------------------------------------------- forward
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of feature vectors."""
        activations = np.asarray(features, dtype=float)
        if activations.ndim == 1:
            activations = activations[None, :]
        for layer in self.layers:
            activations = layer.forward(activations, training=False)
        return softmax(activations)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class index for each feature vector."""
        return np.argmax(self.predict_proba(features), axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy against integer labels."""
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) == 0:
            return 0.0
        predictions = self.predict(features)
        return float(np.mean(predictions == labels))

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss on a labelled batch."""
        return cross_entropy_loss(self.predict_proba(features), labels)

    # -------------------------------------------------------------- training
    def train_epoch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        batch_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """One pass of mini-batch SGD; returns the mean batch loss."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=np.int64)
        if len(features) != len(labels):
            raise ModelError("features and labels must have the same length")
        if len(labels) == 0:
            raise ModelError("cannot train on an empty dataset")
        if batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        rng = rng if rng is not None else self._rng
        order = rng.permutation(len(labels))
        losses = []
        for start in range(0, len(labels), batch_size):
            batch_idx = order[start : start + batch_size]
            batch_features = features[batch_idx]
            batch_labels = labels[batch_idx]
            activations = batch_features
            for layer in self.layers:
                activations = layer.forward(activations, training=True)
            probabilities = softmax(activations)
            losses.append(cross_entropy_loss(probabilities, batch_labels))
            grad = cross_entropy_gradient(probabilities, batch_labels)
            for layer in reversed(self.layers):
                grad = layer.backward(grad, self.learning_rate)
        return float(np.mean(losses))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        epochs: int = 10,
        batch_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> List[float]:
        """Train for several epochs; returns the per-epoch mean losses."""
        if epochs < 1:
            raise ModelError("epochs must be >= 1")
        return [
            self.train_epoch(features, labels, batch_size=batch_size, rng=rng)
            for _ in range(epochs)
        ]

    # ------------------------------------------------------------ state copy
    def get_state(self) -> List:
        """Snapshot of all layer weights (used by checkpointing)."""
        return [layer.get_state() for layer in self.layers]

    def set_state(self, state: List) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        if len(state) != len(self.layers):
            raise ModelError("checkpoint has a different number of layers")
        for layer, layer_state in zip(self.layers, state):
            layer.set_state(layer_state)

    def clone(self) -> "MLPClassifier":
        """Deep copy with identical weights and freezing pattern."""
        copy = MLPClassifier(
            self.feature_dim,
            self.num_classes,
            self.hidden_sizes,
            learning_rate=self.learning_rate,
            seed=self._rng,
        )
        copy.set_state(self.get_state())
        for src, dst in zip(self.layers, copy.layers):
            dst.frozen = src.frozen
        return copy

    def __repr__(self) -> str:
        return (
            f"MLPClassifier(feature_dim={self.feature_dim}, num_classes={self.num_classes}, "
            f"hidden_sizes={self.hidden_sizes})"
        )
