"""Minimal neural-network building blocks (pure numpy).

The edge DNN substrate only needs to exhibit the *training behaviour* Ekya's
scheduler and micro-profiler rely on: accuracy that rises with epochs and data
with diminishing returns, a cost that scales with the number of trainable
layers, and the ability to freeze early layers.  A small fully-connected
network over the synthetic object features provides exactly that at laptop
scale, so we implement dense layers with manual forward/backward passes
instead of depending on a deep-learning framework.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ModelError
from ..utils.rng import SeedLike, ensure_rng


class DenseLayer:
    """A fully-connected layer ``y = activation(x @ W + b)``.

    Supports ReLU or linear activation, gradient computation, and a
    ``frozen`` flag: frozen layers still run forward/backward (gradients must
    flow to earlier layers during backprop bookkeeping) but skip their weight
    update — which is how "number of layers retrained" is realised.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: str = "relu",
        seed: SeedLike = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ModelError("layer dimensions must be >= 1")
        if activation not in ("relu", "linear"):
            raise ModelError(f"unsupported activation {activation!r}")
        rng = ensure_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.weights = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.activation = activation
        self.frozen = False
        self._cache_input: Optional[np.ndarray] = None
        self._cache_pre_activation: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- shape
    @property
    def in_features(self) -> int:
        return int(self.weights.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weights.shape[1])

    @property
    def num_parameters(self) -> int:
        return int(self.weights.size + self.bias.size)

    # -------------------------------------------------------------- forward
    def forward(self, inputs: np.ndarray, *, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ModelError(
                f"expected input of shape (batch, {self.in_features}), got {inputs.shape}"
            )
        pre_activation = inputs @ self.weights + self.bias
        if training:
            self._cache_input = inputs
            self._cache_pre_activation = pre_activation
        if self.activation == "relu":
            return np.maximum(pre_activation, 0.0)
        return pre_activation

    # ------------------------------------------------------------- backward
    def backward(self, grad_output: np.ndarray, learning_rate: float) -> np.ndarray:
        """Backpropagate ``grad_output`` and apply an SGD step (unless frozen).

        Returns the gradient with respect to the layer's input.
        """
        if self._cache_input is None or self._cache_pre_activation is None:
            raise ModelError("backward() called before a training-mode forward()")
        grad = np.asarray(grad_output, dtype=float)
        if self.activation == "relu":
            grad = grad * (self._cache_pre_activation > 0.0)
        grad_weights = self._cache_input.T @ grad / len(self._cache_input)
        grad_bias = grad.mean(axis=0)
        grad_input = grad @ self.weights.T
        if not self.frozen:
            self.weights -= learning_rate * grad_weights
            self.bias -= learning_rate * grad_bias
        return grad_input

    # ----------------------------------------------------------- state copy
    def get_state(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.weights.copy(), self.bias.copy()

    def set_state(self, state: Tuple[np.ndarray, np.ndarray]) -> None:
        weights, bias = state
        if weights.shape != self.weights.shape or bias.shape != self.bias.shape:
            raise ModelError("checkpoint state does not match layer dimensions")
        self.weights = weights.copy()
        self.bias = bias.copy()


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of predicted probabilities against integer labels."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.ndim != 2 or len(probabilities) != len(labels):
        raise ModelError("probabilities and labels are inconsistent")
    picked = probabilities[np.arange(len(labels)), labels]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))


def cross_entropy_gradient(probabilities: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of the mean cross-entropy with softmax folded in (p - y)."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=np.int64)
    grad = probabilities.copy()
    grad[np.arange(len(labels)), labels] -= 1.0
    return grad
