"""Continual-learning wrapper (iCaRL-style exemplar replay).

The paper retrains with "a modified version of iCaRL" (§2.2): the edge model
is incrementally updated on the newest window's data while an exemplar memory
retains representative samples of previously-seen classes so that classes that
temporarily disappear (bicycles in windows 6–7 of Figure 2a) are not
catastrophically forgotten.

:class:`ExemplarReplayLearner` keeps a bounded per-class exemplar set chosen
by a herding-style rule (samples closest to the running class mean) and mixes
exemplars into every retraining call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..configs.retraining import RetrainingConfig
from ..datasets.stream import WindowData
from ..exceptions import ModelError
from ..utils.rng import SeedLike, ensure_rng
from .mlp import MLPClassifier
from .trainer import Trainer, TrainingResult


@dataclass
class ExemplarSet:
    """Bounded per-class memory of representative feature vectors."""

    capacity_per_class: int
    features_by_class: Dict[int, np.ndarray]

    @classmethod
    def empty(cls, capacity_per_class: int) -> "ExemplarSet":
        if capacity_per_class < 1:
            raise ModelError("capacity_per_class must be >= 1")
        return cls(capacity_per_class=capacity_per_class, features_by_class={})

    def update(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Fold new labelled samples into the memory using herding selection.

        For every class, the stored exemplars are the samples closest to the
        class mean of the *combined* (old exemplars + new samples) set —
        a cheap approximation of iCaRL's herding that keeps the memory
        representative of the class's recent appearance.
        """
        labels = np.asarray(labels, dtype=np.int64)
        for cls in np.unique(labels):
            new = features[labels == cls]
            old = self.features_by_class.get(int(cls))
            combined = new if old is None else np.vstack([old, new])
            mean = combined.mean(axis=0)
            distances = np.linalg.norm(combined - mean, axis=1)
            keep = np.argsort(distances)[: self.capacity_per_class]
            self.features_by_class[int(cls)] = combined[keep]

    def as_training_data(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored exemplars as a labelled dataset (may be empty)."""
        if not self.features_by_class:
            return np.empty((0, 0)), np.empty((0,), dtype=np.int64)
        features = []
        labels = []
        for cls, class_features in sorted(self.features_by_class.items()):
            features.append(class_features)
            labels.append(np.full(len(class_features), cls, dtype=np.int64))
        return np.vstack(features), np.concatenate(labels)

    @property
    def num_exemplars(self) -> int:
        return int(sum(len(v) for v in self.features_by_class.values()))

    @property
    def known_classes(self) -> List[int]:
        return sorted(self.features_by_class.keys())


class ExemplarReplayLearner:
    """Continually retrains an edge model with exemplar replay."""

    def __init__(
        self,
        model: MLPClassifier,
        *,
        exemplars_per_class: int = 40,
        replay_weight: float = 0.35,
        trainer: Optional[Trainer] = None,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= replay_weight < 1.0:
            raise ModelError("replay_weight must be in [0, 1)")
        self.model = model
        self.exemplars = ExemplarSet.empty(exemplars_per_class)
        self.replay_weight = replay_weight
        self._trainer = trainer or Trainer(seed=seed)
        self._rng = ensure_rng(seed)

    def retrain(
        self,
        window: WindowData,
        config: RetrainingConfig,
        *,
        max_epochs: Optional[int] = None,
    ) -> TrainingResult:
        """Retrain on a new window's data mixed with the exemplar memory."""
        new_features, new_labels = window.subsample_training(config.data_fraction, rng=self._rng)
        replay_features, replay_labels = self.exemplars.as_training_data()

        if replay_labels.size and replay_features.shape[1] == new_features.shape[1]:
            # Cap the replay contribution so recent data dominates: replay is
            # `replay_weight` of the combined batch at most.
            max_replay = int(self.replay_weight / max(1e-9, 1.0 - self.replay_weight) * len(new_labels))
            if max_replay > 0 and len(replay_labels) > max_replay:
                keep = self._rng.choice(len(replay_labels), size=max_replay, replace=False)
                replay_features, replay_labels = replay_features[keep], replay_labels[keep]
            combined_features = np.vstack([new_features, replay_features])
            combined_labels = np.concatenate([new_labels, replay_labels])
        else:
            combined_features, combined_labels = new_features, new_labels

        synthetic_window = WindowData(
            window_index=window.window_index,
            duration_seconds=window.duration_seconds,
            train_features=combined_features,
            train_labels=combined_labels,
            eval_features=window.eval_features,
            eval_labels=window.eval_labels,
            class_distribution=window.class_distribution,
            label_noise_rate=window.label_noise_rate,
        )
        # The data_fraction was already applied when drawing ``new_features``,
        # so train on the full combined set here.
        result = self._trainer.train(
            self.model,
            synthetic_window,
            config,
            max_epochs=max_epochs,
            data_fraction_override=1.0,
            rng=self._rng,
        )
        self.exemplars.update(new_features, new_labels)
        return result

    def evaluate(self, window: WindowData) -> float:
        """Inference accuracy of the current model on a window's live data."""
        return self._trainer.evaluate(self.model, window)
