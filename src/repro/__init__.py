"""Reproduction of "Ekya: Continuous Learning of Video Analytics Models on
Edge Compute Servers" (NSDI 2022).

The package is organised around the paper's structure:

* :mod:`repro.datasets` — synthetic drifting video workloads (Cityscapes /
  Waymo / Urban Building / Urban Traffic stand-ins) and golden-model labelling.
* :mod:`repro.models` — the trainable edge-DNN substrate (numpy MLPs),
  continual learning with exemplar replay, and checkpointing.
* :mod:`repro.configs` — retraining and inference configuration spaces.
* :mod:`repro.cluster` — GPUs, fractional allocations, placement, jobs and
  WAN links of the edge server.
* :mod:`repro.profiles` — resource/accuracy profiles and accuracy dynamics.
* :mod:`repro.core` — Ekya itself: the thief scheduler, the micro-profiler,
  the per-window controller and every baseline the paper compares against.
* :mod:`repro.simulation` — the trace-driven simulator and the experiment
  harness that regenerates each table and figure of the evaluation.
* :mod:`repro.fleet` — multi-site fleet orchestration above the paper's
  single server: stream admission, WAN-aware migration, failure scenarios.

Quickstart::

    from repro.simulation import run_experiment

    result = run_experiment("ekya", dataset="cityscapes", num_streams=4,
                            num_gpus=1, num_windows=5)
    print(result.mean_accuracy)
"""

from . import cluster, configs, core, datasets, fleet, models, profiles, simulation, utils
from .cluster import EdgeServer, EdgeServerSpec
from .configs import ConfigurationSpace, InferenceConfig, RetrainingConfig
from .core import EkyaPolicy, MicroProfiler, OracleProfileSource, ThiefScheduler, UniformPolicy
from .datasets import VideoStream, make_workload
from .exceptions import ReproError
from .fleet import FleetController, FleetSimulator, make_fleet
from .profiles import AnalyticDynamics, SubstrateDynamics
from .simulation import Simulator, run_experiment

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "configs",
    "core",
    "datasets",
    "fleet",
    "models",
    "profiles",
    "simulation",
    "utils",
    "EdgeServer",
    "EdgeServerSpec",
    "ConfigurationSpace",
    "InferenceConfig",
    "RetrainingConfig",
    "EkyaPolicy",
    "MicroProfiler",
    "OracleProfileSource",
    "ThiefScheduler",
    "UniformPolicy",
    "VideoStream",
    "make_workload",
    "ReproError",
    "FleetController",
    "FleetSimulator",
    "make_fleet",
    "AnalyticDynamics",
    "SubstrateDynamics",
    "Simulator",
    "run_experiment",
    "__version__",
]
