"""Fleet-batched planning: the thief scheduler over stacked lattice tensors.

:mod:`repro.core.candidate_table` vectorised Algorithm 2 *within* one stream:
a lattice column — every retraining level at one inference level — is a single
masked argmax.  This module batches *across* streams (and, at the fleet layer,
across every site whose ``WindowBoundary`` fires at the same instant): all
pending columns are stacked into one numpy evaluation over
``(row, retraining_level, retraining_config)`` tensors, where a *row* is one
``(site, stream, inference_level)`` triple.  Per-row scalars (window length,
a_min, quantum, lattice size) broadcast elementwise, so heterogeneous sites —
different GPU counts, degraded capacity, different window durations — stack
into the same call.

Correctness contract: the scalar path (:class:`~repro.core.thief.
ThiefScheduler` over per-stream :class:`~repro.core.candidate_table.
CandidateTable` columns, with :func:`repro.core.pick_configs.pick_configs` as
the root oracle) remains the reference, and
:class:`BatchedThiefScheduler` is **bit-identical** to it: same decisions,
same estimated accuracies, same iteration and evaluation counters.  Two rules
make that hold:

* every stacked operation is an IEEE-exact elementwise twin (add/sub/mul/div/
  min/max/compare) of the scalar op on the same operands — vectorisation
  cannot change those results;
* anything transcendental (the under-provisioned inference power law) stays
  on the scalar code path shared with :class:`CandidateTable`, and every
  epsilon-near-tie or below-a_min level runs the *reference* candidate scan —
  ``_sequential_select``'s automaton — elementwise across all pending levels,
  looping only over the config axis, so its comparisons are the scalar
  loop's verbatim.

The property suite (``tests/property/test_property_batched_planner.py``)
fuzzes randomized fleets against the oracle to enforce the contract.

Why batching wins: the thief's steal trajectories visit only a handful of
distinct inference levels, but visit them for *every* stream.  Computing a
missed column for all of a cohort's streams at once replaces hundreds of
small per-stream numpy dispatches with a few large ones; the speculative
columns land in each table's memo, where the sibling streams' queries find
them.  ``pick_configs_evaluations`` keeps the oracle's meaning — distinct
columns actually *queried* — so the counter is comparable across both paths.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.jobs import inference_job_id, retraining_job_id
from ..exceptions import SchedulingError
from ..utils.clock import Stopwatch
from ..utils.math_utils import safe_mean
from .candidate_table import CandidateTable, _Column, build_candidate_tables
from .pick_configs import IMPROVEMENT_EPS as _IMPROVEMENT_EPS
from .thief import ThiefScheduler
from .types import ScheduleRequest, WindowSchedule


class _HeavyRow:
    """One non-trivial column in a stacked batch (lattice has room to retrain)."""

    __slots__ = (
        "table",
        "units",
        "inference_index",
        "factor_during",
        "accuracy_during",
        "base_meets",
        "max_level",
        "num_configs",
    )

    def __init__(
        self,
        table: CandidateTable,
        units: int,
        inference_index: int,
        factor_during: float,
        accuracy_during: float,
        base_meets: bool,
        max_level: int,
        num_configs: int,
    ) -> None:
        self.table = table
        self.units = units
        self.inference_index = inference_index
        self.factor_during = factor_during
        self.accuracy_during = accuracy_during
        self.base_meets = base_meets
        self.max_level = max_level
        self.num_configs = num_configs


class _ScratchPool:
    """Reusable backing buffers for the stacked ``(row, level, config)`` math.

    A 100-stream cohort call builds a dozen ~1 MiB tensors; allocating them
    fresh on every call makes page faults, not arithmetic, the dominant cost
    (4 cohort calls per schedule → ~50 MiB of first-touch traffic).  Each
    named slot hands back a view over a grow-only flat buffer instead, so
    repeat calls run entirely on warm pages.  The pool only ever changes
    *where* a temporary lives, never its value, so bit-identity with the
    scalar oracle is untouched.  The planner runs on the single-threaded
    event loop; the pool is not thread-safe by design.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def take(self, tag: str, shape: Tuple[int, ...], dtype: type) -> np.ndarray:
        size = 1
        for dim in shape:
            size *= dim
        buffer = self._buffers.get(tag)
        if buffer is None or buffer.size < size or buffer.dtype != dtype:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[tag] = buffer
        return buffer[:size].reshape(shape)


_SCRATCH = _ScratchPool()


def compute_columns_batched(rows: Sequence[Tuple[CandidateTable, int]]) -> None:
    """Seed many tables' lattice columns from one stacked evaluation.

    Each ``(table, inference_units)`` pair gets exactly the :class:`_Column`
    that ``table._compute_column(inference_units)`` would produce — the
    stacked arithmetic mirrors it operation-for-operation — written into the
    table's memo.  Pairs whose column is already memoised are skipped, and
    ``table.evaluations`` is *not* touched: the batched scheduler counts
    queries itself, so the counter keeps the oracle's first-query semantics.
    """
    pending: List[Tuple[CandidateTable, int]] = []
    seen = set()
    for table, units in rows:
        if units in table._columns:
            continue
        key = (table, units)
        if key in seen:
            continue
        seen.add(key)
        if not 0 <= units <= table._total_units:
            raise SchedulingError(
                f"inference_units {units} outside lattice [0, {table._total_units}]"
            )
        pending.append((table, units))
    if not pending:
        return

    # ---- inference-config pick, stacked (twin of _pick_inference_index).
    # Padding: demands +inf (never fits, never argmin), factors -inf (never
    # argmax), above_min False — padded slots can never win a tie-break.
    num_rows = len(pending)
    max_inference = max(len(table._demands_list) for table, _ in pending)
    demands = np.full((num_rows, max_inference), np.inf, dtype=float)
    base_factors = np.full((num_rows, max_inference), -np.inf, dtype=float)
    above_min = np.zeros((num_rows, max_inference), dtype=bool)
    inference_gpu = np.empty(num_rows, dtype=float)
    for row, (table, units) in enumerate(pending):
        count = len(table._demands_list)
        demands[row, :count] = table._demands
        base_factors[row, :count] = table._base_factors
        above_min[row, :count] = table._above_min
        inference_gpu[row] = units * table._quantum
    fitting = demands <= inference_gpu[:, None] + 1e-9
    any_fitting = fitting.any(axis=1)
    pool = fitting & above_min
    pool = np.where(pool.any(axis=1)[:, None], pool, fitting)
    fitting_index = np.argmax(np.where(pool, base_factors, -np.inf), axis=1)
    fallback_index = np.argmin(demands, axis=1)
    inference_index = np.where(any_fitting, fitting_index, fallback_index)

    # ---- scalar prologue per row (pure-Python floats, as in the oracle).
    heavy: List[_HeavyRow] = []
    for row, (table, units) in enumerate(pending):
        index = int(inference_index[row])
        factor_during = table._effective_factor(index, units * table._quantum)
        accuracy_during = float(min(max(table._start * factor_during, 0.0), 1.0))
        base_meets = accuracy_during + 1e-9 >= table._a_min
        max_level = table._total_units - units
        num_configs = len(table._retraining_configs)
        if max_level < 1 or num_configs == 0:
            accuracy = np.full(max_level + 1, accuracy_during, dtype=float)
            choice = np.full(max_level + 1, -1, dtype=np.int64)
            table._columns[units] = _Column(index, accuracy.tolist(), choice.tolist())
            continue
        heavy.append(
            _HeavyRow(
                table,
                units,
                index,
                factor_during,
                accuracy_during,
                base_meets,
                max_level,
                num_configs,
            )
        )
    if not heavy:
        return

    # ---- stacked (row, level, config) evaluation.  Padded configs carry
    # gpu_seconds = 0, so `completes` is False and they mask to -inf; padded
    # levels hold valid positive allocations (the lattice just ends earlier
    # for that row) and are sliced away before write-back.
    num_heavy = len(heavy)
    max_levels = max(item.max_level for item in heavy)
    max_configs = max(item.num_configs for item in heavy)
    post = np.zeros((num_heavy, max_configs), dtype=float)
    gpu_seconds = np.zeros((num_heavy, max_configs), dtype=float)
    quanta = np.empty(num_heavy, dtype=float)
    windows = np.empty(num_heavy, dtype=float)
    a_mins = np.empty(num_heavy, dtype=float)
    accuracy_during_col = np.empty(num_heavy, dtype=float)
    for row, item in enumerate(heavy):
        table = item.table
        post[row, : item.num_configs] = table._post
        gpu_seconds[row, : item.num_configs] = table._gpu_seconds
        quanta[row] = table._quantum
        windows[row] = table._window
        a_mins[row] = table._a_min
        accuracy_during_col[row] = item.accuracy_during

    retraining_gpus = np.arange(1, max_levels + 1, dtype=float)[None, :] * quanta[:, None]

    # Post-retraining inference factor.  With release the retraining share
    # rejoins inference after the window, so the factor depends on the level
    # only for rows whose *smallest* post-window share (level 1 — post_gpus
    # grows monotonically) still under-provisions the chosen config; those
    # run the scalar power law (shared with CandidateTable) for bit-identity.
    # Without release it is the prologue's factor_during verbatim.  Nearly
    # every row is level-constant, which collapses the factor — and
    # everything derived from it alone — from (row, level, config) tensors
    # to (row, config) matrices.
    factor_row = np.empty(num_heavy, dtype=float)
    varying: List[int] = []
    for row, item in enumerate(heavy):
        table = item.table
        index = item.inference_index
        if table._release:
            factor_row[row] = table._base_list[index]
            demand = table._demands_list[index]
            if (
                demand > 0
                and inference_gpu_of(table, item.units) + retraining_gpus[row, 0] < demand
            ):
                varying.append(row)
        else:
            factor_row[row] = item.factor_during

    # estimate_batch_average_accuracy, elementwise with per-row scalars.
    # Every op below is the scalar estimate's IEEE twin on the same
    # operands; in-place variants and the shared `window_remainder`
    # subexpression change only where intermediates live, never their bits.
    # `average` and `meets` are only ever consumed where `completes` holds —
    # the fast path masks with ``completes & meets`` and the reference
    # automaton gates every state update on completes — so the scalar
    # estimate's non-completing fallback branch never needs materialising.
    windows3 = windows[:, None, None]
    acc_during3 = accuracy_during_col[:, None, None]
    shape3 = (num_heavy, max_levels, max_configs)
    duration = np.divide(
        gpu_seconds[:, None, :],
        retraining_gpus[:, :, None],
        out=_SCRATCH.take("duration", shape3, float),
    )
    completes = np.less(duration, windows3, out=_SCRATCH.take("completes", shape3, bool))
    completes &= (gpu_seconds > 0)[:, None, :]
    if varying:
        factor_after = np.empty((num_heavy, max_levels), dtype=float)
        factor_after[:] = factor_row[:, None]
        for row in varying:
            item = heavy[row]
            table = item.table
            index = item.inference_index
            demand = table._demands_list[index]
            post_gpus = inference_gpu_of(table, item.units) + retraining_gpus[row]
            for level in np.nonzero(post_gpus < demand)[0].tolist():
                factor_after[row, level] = table._effective_factor(
                    index, float(post_gpus[level])
                )
        accuracy_after = np.multiply(
            post[:, None, :],
            factor_after[:, :, None],
            out=_SCRATCH.take("accuracy_after", shape3, float),
        )
        np.maximum(accuracy_after, 0.0, out=accuracy_after)
        np.minimum(accuracy_after, 1.0, out=accuracy_after)
        tail_after = accuracy_after
    else:
        accuracy_after = None
        accuracy_after2 = post * factor_row[:, None]
        np.maximum(accuracy_after2, 0.0, out=accuracy_after2)
        np.minimum(accuracy_after2, 1.0, out=accuracy_after2)
        tail_after = accuracy_after2[:, None, :]
    # ``windows3 - duration`` feeds both the weighted tail and total_time in
    # the scalar estimate; computing it once reuses identical bits.
    window_remainder = np.subtract(
        windows3, duration, out=_SCRATCH.take("window_remainder", shape3, float)
    )
    weighted = np.multiply(
        duration, acc_during3, out=_SCRATCH.take("weighted", shape3, float)
    )
    weighted += np.multiply(
        window_remainder, tail_after, out=_SCRATCH.take("tail", shape3, float)
    )
    total_time = np.add(duration, window_remainder, out=window_remainder)
    average = np.divide(weighted, total_time, out=weighted)
    if accuracy_after is not None:
        minimum = np.minimum(acc_during3, accuracy_after, out=accuracy_after)
        minimum += 1e-9
        meets3: Optional[np.ndarray] = np.greater_equal(
            minimum, a_mins[:, None, None], out=_SCRATCH.take("meets", shape3, bool)
        )
        meets2: Optional[np.ndarray] = None
    else:
        minimum2 = np.minimum(accuracy_during_col[:, None], accuracy_after2, out=accuracy_after2)
        minimum2 += 1e-9
        meets3 = None
        meets2 = minimum2 >= a_mins[:, None]

    base_meets_col = np.array([item.base_meets for item in heavy], dtype=bool)
    max_level_col = np.array([item.max_level for item in heavy], dtype=np.int64)
    level_valid = np.arange(max_levels, dtype=np.int64)[None, :] < max_level_col[:, None]

    result_choice = np.full((num_heavy, max_levels), -1, dtype=np.int64)
    result_accuracy = np.empty((num_heavy, max_levels), dtype=float)
    result_accuracy[:] = accuracy_during_col[:, None]
    scan = level_valid.copy()

    # Fast path (rows whose base accuracy meets a_min): non-meeting
    # candidates can never displace a meeting incumbent, so the winner is a
    # masked argmax per level — exactly as CandidateTable — and only levels
    # whose eligible values near-tie within the improvement epsilon fall
    # through to the reference scan.
    fast = np.nonzero(base_meets_col)[0]
    if fast.size:
        if fast.size == num_heavy:
            # All rows take the fast path (the common cohort shape): skip
            # the fancy-index copies and mask eligibility in scratch —
            # value-identical to np.where over the fast subset.
            if meets3 is not None:
                eligible = np.logical_and(
                    completes, meets3, out=_SCRATCH.take("eligible", shape3, bool)
                )
            else:
                eligible = np.logical_and(
                    completes,
                    meets2[:, None, :],
                    out=_SCRATCH.take("eligible", shape3, bool),
                )
            masked = _SCRATCH.take("masked", shape3, float)
            masked.fill(-np.inf)
            np.copyto(masked, average, where=eligible)
            acc_fast = accuracy_during_col
            valid_fast = level_valid
        else:
            meets_fast = meets3[fast] if meets3 is not None else meets2[fast][:, None, :]
            masked = np.where(completes[fast] & meets_fast, average[fast], -np.inf)
            acc_fast = accuracy_during_col[fast]
            valid_fast = level_valid[fast]
        best_j = np.argmax(masked, axis=2)
        best_vals = np.take_along_axis(masked, best_j[:, :, None], axis=2)[:, :, 0]
        has_eligible = best_vals > -np.inf
        ties = np.greater_equal(
            masked,
            (best_vals - _IMPROVEMENT_EPS)[:, :, None],
            out=_SCRATCH.take("ties", masked.shape, bool),
        )
        ties &= np.not_equal(
            masked,
            best_vals[:, :, None],
            out=_SCRATCH.take("tie_not_equal", masked.shape, bool),
        )
        near_tie = ties.any(axis=2)
        accept = (
            valid_fast
            & has_eligible
            & ~near_tie
            & (best_vals > acc_fast[:, None] + _IMPROVEMENT_EPS)
        )
        result_choice[fast] = np.where(accept, best_j, np.int64(-1))
        result_accuracy[fast] = np.where(accept, best_vals, acc_fast[:, None])
        scan[fast] = valid_fast & has_eligible & near_tie

    # Every remaining level runs the reference candidate scan — the
    # _sequential_select automaton — elementwise across all scan elements,
    # looping only over the config axis.  The state updates are the scalar
    # loop's comparisons verbatim, so the result is bit-identical.
    scan_rows, scan_levels = np.nonzero(scan)
    if scan_rows.size:
        avg_scan = average[scan_rows, scan_levels]
        completes_scan = completes[scan_rows, scan_levels]
        meets_scan = (
            meets3[scan_rows, scan_levels] if meets3 is not None else meets2[scan_rows]
        )
        state_avg = accuracy_during_col[scan_rows]
        state_meets = base_meets_col[scan_rows]
        state_j = np.full(scan_rows.size, -1, dtype=np.int64)
        for config in range(max_configs):
            cand_avg = avg_scan[:, config]
            cand_meets = meets_scan[:, config]
            better = cand_avg > state_avg + _IMPROVEMENT_EPS
            flips_up = cand_meets & ~state_meets
            better = np.where(
                flips_up, (cand_avg >= state_avg - _IMPROVEMENT_EPS) | better, better
            )
            better &= ~(~cand_meets & state_meets)
            update = completes_scan[:, config] & better
            state_avg = np.where(update, cand_avg, state_avg)
            state_meets = np.where(update, cand_meets, state_meets)
            state_j = np.where(update, np.int64(config), state_j)
        result_choice[scan_rows, scan_levels] = state_j
        result_accuracy[scan_rows, scan_levels] = state_avg

    # ---- write-back per row (level 0 is the no-retraining base point).
    accuracy_rows = result_accuracy.tolist()
    choice_rows = result_choice.tolist()
    for row, item in enumerate(heavy):
        levels = item.max_level
        accuracy = [item.accuracy_during]
        accuracy.extend(accuracy_rows[row][:levels])
        choice = [-1]
        choice.extend(choice_rows[row][:levels])
        item.table._columns[item.units] = _Column(item.inference_index, accuracy, choice)


def inference_gpu_of(table: CandidateTable, units: int) -> float:
    """The scalar path's ``inference_units * quantum`` product, verbatim."""
    return units * table._quantum


class _CohortContext:
    """Per-request state for one sweep of the batched thief."""

    __slots__ = (
        "request",
        "stream_names",
        "tables_list",
        "column_maps",
        "units",
        "base_runtime",
    )

    def __init__(
        self,
        request: ScheduleRequest,
        stream_names: List[str],
        tables_list: List[CandidateTable],
        units: List[int],
    ) -> None:
        self.request = request
        self.stream_names = stream_names
        self.tables_list = tables_list
        self.column_maps = [table._columns for table in tables_list]
        self.units = units
        self.base_runtime = 0.0


class BatchedThiefScheduler(ThiefScheduler):
    """The thief scheduler with cross-stream (and cross-site) column batching.

    Bit-identical to :class:`~repro.core.thief.ThiefScheduler` — same steal
    trajectory, same decisions, accuracies and counters — but every lattice
    column the trajectory misses is computed for *all* streams of the cohort
    in one stacked numpy call (:func:`compute_columns_batched`), and the
    steal loop itself runs on flat integer lists instead of the allocation
    vector's dict operations.  :meth:`schedule_cohort` extends the batch
    across many requests: all same-instant sites' fair-start columns stack
    into a single ``(site, stream, level, config)`` evaluation before the
    per-site sweeps run.

    ``scheduler_runtime_seconds`` attributes the shared cohort precompute
    evenly across the cohort's requests; with a
    :class:`~repro.utils.clock.ManualClock` it is 0.0 either way.
    """

    name = "ekya-thief-batched"

    def schedule(self, request: ScheduleRequest) -> WindowSchedule:
        return self.schedule_cohort({"": request})[""]

    def schedule_cohort(
        self, requests: Mapping[str, ScheduleRequest]
    ) -> Dict[str, WindowSchedule]:
        """Plan every request of one boundary cohort; keys are preserved."""
        if not requests:
            return {}
        contexts: List[Tuple[str, _CohortContext]] = []
        prepare_elapsed: List[float] = []
        fair_rows: List[Tuple[CandidateTable, int]] = []
        for key, request in requests.items():
            watch = Stopwatch(self._clock)
            context = self._prepare(request)
            contexts.append((key, context))
            prepare_elapsed.append(watch.elapsed())
            for index, table in enumerate(context.tables_list):
                fair_rows.append((table, context.units[2 * index]))
        shared_watch = Stopwatch(self._clock)
        compute_columns_batched(fair_rows)
        shared = shared_watch.elapsed() / len(contexts)
        schedules: Dict[str, WindowSchedule] = {}
        for (key, context), prepared in zip(contexts, prepare_elapsed):
            context.base_runtime = prepared + shared
            schedules[key] = self._sweep(context)
        return schedules

    # ----------------------------------------------------------------- setup
    def _prepare(self, request: ScheduleRequest) -> _CohortContext:
        quantum = self._steal_quantum if self._steal_quantum is not None else request.delta
        quantum = min(quantum, request.total_gpus)
        allocation = self.fair_start(request, quantum)
        tables = build_candidate_tables(
            request.streams,
            window_seconds=request.window_seconds,
            a_min=request.a_min,
            quantum=allocation.quantum,
            total_units=allocation.total_units,
            release_retraining_gpu_to_inference=self._release,
        )
        stream_names = list(request.streams)
        tables_list = [tables[name] for name in stream_names]
        units: List[int] = []
        for name in stream_names:
            units.append(allocation.units(inference_job_id(name)))
            units.append(allocation.units(retraining_job_id(name)))
        return _CohortContext(request, stream_names, tables_list, units)

    # ----------------------------------------------------------------- sweep
    def _sweep(self, context: _CohortContext) -> WindowSchedule:
        watch = Stopwatch(self._clock)
        request = context.request
        tables_list = context.tables_list
        column_maps = context.column_maps
        units = context.units
        num_streams = len(tables_list)
        num_jobs = 2 * num_streams
        patience = self._patience
        eps = _IMPROVEMENT_EPS

        # Per-stream accuracy rows actually *queried* so far: a miss here is
        # exactly one oracle evaluation (the memo may hold speculatively
        # batched columns the count must not include until queried).  Levels
        # are dense small ints, so a flat list per stream turns the hot
        # loop's row lookup into an index instead of a dict probe.
        queried: List[List[Optional[List[float]]]] = [
            [None] * (table._total_units + 1) for table in tables_list
        ]
        evaluations = 0

        def load(stream: int, level: int) -> List[float]:
            column = column_maps[stream].get(level)
            if column is None:
                compute_columns_batched([(table, level) for table in tables_list])
                column = column_maps[stream][level]
            row = column.accuracy
            queried[stream][level] = row
            return row

        accuracy_of: List[float] = []
        for stream in range(num_streams):
            evaluations += 1
            row = load(stream, units[2 * stream])
            accuracy_of.append(row[units[2 * stream + 1]])
        accuracy_sum = sum(accuracy_of)
        best_accuracy = accuracy_sum / num_streams
        iterations = 1

        # The sweep below is the scalar thief loop with the allocation vector
        # flattened into local integers: a steal touches at most four unit
        # counters (thief/victim × inference/retraining), so each (thief,
        # victim) pair tracks them as locals and writes back once.  A column
        # row is re-fetched only when its stream's *inference* level moved —
        # the only key a column depends on.  Zero-unit victims are skipped
        # outright: the scalar path's steal fails immediately for them, and
        # only the thief gains units mid-sweep, so the skip is
        # trajectory-identical.
        for _ in range(self._max_rounds):
            improved_in_round = False
            for thief_job in range(num_jobs):
                thief_stream = thief_job >> 1
                thief_inf = thief_stream * 2
                thief_ret = thief_inf + 1
                thief_rows = queried[thief_stream]
                thief_is_inf = thief_job == thief_inf
                for victim_job, victim_units in enumerate(units):
                    if victim_units == 0 or victim_job == thief_job:
                        continue
                    victim_stream = victim_job >> 1
                    thief_inf_units = units[thief_inf]
                    thief_ret_units = units[thief_ret]
                    acc_thief = accuracy_of[thief_stream]
                    misses = 0
                    pending = 0
                    if victim_stream == thief_stream:
                        # Intra-stream: units move between one stream's own
                        # inference and retraining jobs.
                        while True:
                            if thief_is_inf:
                                if thief_ret_units == 0:
                                    break
                                thief_ret_units -= 1
                                thief_inf_units += 1
                            else:
                                if thief_inf_units == 0:
                                    break
                                thief_inf_units -= 1
                                thief_ret_units += 1
                            pending += 1
                            iterations += 1
                            row = thief_rows[thief_inf_units]
                            if row is None:
                                evaluations += 1
                                row = load(thief_stream, thief_inf_units)
                            new_thief = row[thief_ret_units]
                            new_sum = accuracy_sum - acc_thief + new_thief
                            accuracy = new_sum / num_streams
                            if accuracy > best_accuracy + eps:
                                acc_thief = new_thief
                                accuracy_sum = new_sum
                                best_accuracy = accuracy
                                pending = 0
                                misses = 0
                                improved_in_round = True
                            else:
                                misses += 1
                                if misses >= patience:
                                    break
                        if pending:
                            if thief_is_inf:
                                thief_inf_units -= pending
                                thief_ret_units += pending
                            else:
                                thief_inf_units += pending
                                thief_ret_units -= pending
                        units[thief_inf] = thief_inf_units
                        units[thief_ret] = thief_ret_units
                        accuracy_of[thief_stream] = acc_thief
                        continue
                    victim_inf = victim_stream * 2
                    victim_ret = victim_inf + 1
                    victim_rows = queried[victim_stream]
                    victim_is_inf = victim_job == victim_inf
                    victim_inf_units = units[victim_inf]
                    victim_ret_units = units[victim_ret]
                    acc_victim = accuracy_of[victim_stream]
                    if thief_is_inf:
                        thief_row = None
                    else:
                        # Retraining thief: its inference level is fixed for
                        # the whole pair, so its column row is too.
                        thief_row = thief_rows[thief_inf_units]
                        if thief_row is None:
                            evaluations += 1
                            thief_row = load(thief_stream, thief_inf_units)
                    if victim_is_inf:
                        victim_row = None
                    else:
                        victim_row = victim_rows[victim_inf_units]
                        if victim_row is None:
                            evaluations += 1
                            victim_row = load(victim_stream, victim_inf_units)
                    while True:
                        if victim_is_inf:
                            if victim_inf_units == 0:
                                break
                            victim_inf_units -= 1
                            victim_row = victim_rows[victim_inf_units]
                            if victim_row is None:
                                evaluations += 1
                                victim_row = load(victim_stream, victim_inf_units)
                        else:
                            if victim_ret_units == 0:
                                break
                            victim_ret_units -= 1
                        if thief_is_inf:
                            thief_inf_units += 1
                            thief_row = thief_rows[thief_inf_units]
                            if thief_row is None:
                                evaluations += 1
                                thief_row = load(thief_stream, thief_inf_units)
                        else:
                            thief_ret_units += 1
                        pending += 1
                        iterations += 1
                        new_thief = thief_row[thief_ret_units]
                        new_sum = accuracy_sum - acc_thief + new_thief
                        new_victim = victim_row[victim_ret_units]
                        new_sum += new_victim - acc_victim
                        accuracy = new_sum / num_streams
                        if accuracy > best_accuracy + eps:
                            acc_thief = new_thief
                            acc_victim = new_victim
                            accuracy_sum = new_sum
                            best_accuracy = accuracy
                            pending = 0
                            misses = 0
                            improved_in_round = True
                        else:
                            misses += 1
                            if misses >= patience:
                                break
                    if pending:
                        if victim_is_inf:
                            victim_inf_units += pending
                        else:
                            victim_ret_units += pending
                        if thief_is_inf:
                            thief_inf_units -= pending
                        else:
                            thief_ret_units -= pending
                    units[thief_inf] = thief_inf_units
                    units[thief_ret] = thief_ret_units
                    units[victim_inf] = victim_inf_units
                    units[victim_ret] = victim_ret_units
                    accuracy_of[thief_stream] = acc_thief
                    accuracy_of[victim_stream] = acc_victim
            if not improved_in_round:
                break

        decisions = {}
        for stream, name in enumerate(context.stream_names):
            inference_units = units[2 * stream]
            if queried[stream][inference_units] is None:
                # Unreachable in practice (the final lattice point was always
                # queried), but keeps the counter oracle-exact regardless.
                evaluations += 1
                load(stream, inference_units)
            decisions[name] = tables_list[stream].decision(
                inference_units, units[2 * stream + 1]
            )
        schedule = WindowSchedule(
            window_index=request.window_index,
            decisions=decisions,
            estimated_average_accuracy=safe_mean(
                [d.estimated_average_accuracy for d in decisions.values()]
            ),
            scheduler_runtime_seconds=context.base_runtime + watch.elapsed(),
            iterations=iterations,
            pick_configs_evaluations=evaluations,
        )
        schedule.validate_against(request)
        return schedule
