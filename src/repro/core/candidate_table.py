"""Vectorised per-stream candidate tables for Algorithm 2 (PickConfigs).

The thief scheduler (Algorithm 1) evaluates thousands of candidate
allocations per window, and every evaluation runs Algorithm 2 for the one or
two streams a steal perturbs.  The scalar implementation in
:mod:`repro.core.pick_configs` walks Python objects per candidate; this
module precomputes, once per window per stream, numpy arrays over the full
retraining×inference candidate grid — post-retraining accuracy, GPU-seconds,
inference accuracy-factors and GPU demands — and reimplements Algorithm 2's
inner search as vectorised masks + argmax over those arrays.

Because the thief moves allocations on an integer-quantum lattice
(:class:`repro.cluster.resources.AllocationVector`), a stream's decision is a
function of the pair ``(inference units, retraining units)``.  The table
evaluates one *column* of that lattice at a time — all retraining levels for
a fixed inference level in a single vectorised pass — and memoises the result
on exact integer keys, so repeated queries along a steal trajectory are O(1)
lookups.

The scalar path (:func:`repro.core.pick_configs.pick_configs_for_stream`)
is retained as the reference oracle; the property suite asserts the two are
equivalent decision-for-decision.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import SchedulingError
from .estimator import estimate_batch_average_accuracy
from .pick_configs import IMPROVEMENT_EPS as _IMPROVEMENT_EPS
from .types import StreamDecision, StreamWindowInput


def _sequential_select(
    avg_row,
    completes_row,
    meets_row,
    base_avg: float,
    base_meets: bool,
) -> Tuple[int, float]:
    """Reference semantics of Algorithm 2's candidate scan.

    Replicates ``pick_configs_for_stream``'s loop exactly, including the
    a_MIN preference rules and the strict-improvement epsilon, over
    precomputed value rows.  Returns ``(config_index, average_accuracy)``
    with ``-1`` meaning "no retraining".
    """
    best_j = -1
    best_avg = base_avg
    best_meets = base_meets
    for j, cand_avg in enumerate(avg_row):
        if not completes_row[j]:
            continue
        cand_meets = meets_row[j]
        better = cand_avg > best_avg + _IMPROVEMENT_EPS
        if cand_meets and not best_meets:
            better = cand_avg >= best_avg - _IMPROVEMENT_EPS or better
        elif not cand_meets and best_meets:
            better = False
        if better:
            best_j = j
            best_avg = cand_avg
            best_meets = cand_meets
    return best_j, best_avg


class _Column:
    """Decisions for every retraining level at one inference level.

    The per-level values are plain Python lists: the thief queries them once
    per candidate steal, and list indexing is several times cheaper than
    numpy scalar extraction on that path.
    """

    __slots__ = ("inference_index", "accuracy", "choice")

    def __init__(self, inference_index: int, accuracy: List[float], choice: List[int]) -> None:
        self.inference_index = inference_index
        self.accuracy = accuracy  # indexed by retraining units
        self.choice = choice  # config index; -1 = no retraining


class CandidateTable:
    """Vectorised Algorithm 2 for one stream over the allocation lattice."""

    def __init__(
        self,
        stream_input: StreamWindowInput,
        *,
        window_seconds: float,
        a_min: float,
        quantum: float,
        total_units: int,
        release_retraining_gpu_to_inference: bool = True,
    ) -> None:
        if window_seconds <= 0:
            raise SchedulingError("window_seconds must be positive")
        if quantum <= 0:
            raise SchedulingError("quantum must be positive")
        if total_units < 0:
            raise SchedulingError("total_units must be non-negative")
        self.stream_name = stream_input.stream_name
        self._window = float(window_seconds)
        self._a_min = float(a_min)
        self._quantum = float(quantum)
        self._total_units = int(total_units)
        self._release = release_retraining_gpu_to_inference

        profile = stream_input.profile
        self._start = float(profile.start_accuracy)
        self._retraining_configs = list(profile.estimates.keys())
        estimates = [profile.estimates[cfg] for cfg in self._retraining_configs]
        self._post = np.array(
            [est.post_retraining_accuracy for est in estimates], dtype=float
        )
        self._gpu_seconds = np.array([est.gpu_seconds for est in estimates], dtype=float)

        self._inference_configs = list(stream_input.inference_configs)
        self._demands = np.array(
            [float(cfg.gpu_demand or 0.0) for cfg in self._inference_configs], dtype=float
        )
        self._base_factors = np.array(
            [cfg.accuracy_factor() for cfg in self._inference_configs], dtype=float
        )
        self._demands_list = self._demands.tolist()
        self._base_list = self._base_factors.tolist()
        # a_MIN viability of each inference config at the stream's current
        # accuracy — allocation independent, so computed once.
        self._above_min = self._start * self._base_factors + 1e-9 >= self._a_min

        self._columns: Dict[int, _Column] = {}
        #: Number of vectorised Algorithm-2 executions (lattice columns
        #: computed).  Every other query is a memoised O(1) lookup.
        self.evaluations = 0

    # ------------------------------------------------------------- inference
    def _pick_inference_index(self, inference_gpu: float) -> int:
        """Vectorised twin of ``pick_inference_config`` (same tie-breaks)."""
        fitting = self._demands <= inference_gpu + 1e-9
        if fitting.any():
            pool = fitting & self._above_min
            if not pool.any():
                pool = fitting
            return int(np.argmax(np.where(pool, self._base_factors, -np.inf)))
        return int(np.argmin(self._demands))

    def _effective_factor(self, index: int, allocated_gpu: float) -> float:
        """``InferenceConfig.effective_accuracy_factor`` on cached scalars.

        Same arithmetic (and therefore bit-identical results), without
        re-deriving the base accuracy factor per call.
        """
        base = self._base_list[index]
        demand = self._demands_list[index]
        if demand <= 0 or allocated_gpu >= demand:
            return base
        if allocated_gpu == 0:
            return 0.0
        return base * float((allocated_gpu / demand) ** 0.4)

    # --------------------------------------------------------------- columns
    def _column(self, inference_units: int) -> _Column:
        column = self._columns.get(inference_units)
        if column is None:
            column = self._compute_column(inference_units)
            self._columns[inference_units] = column
        return column

    def _compute_column(self, inference_units: int) -> _Column:
        if not 0 <= inference_units <= self._total_units:
            raise SchedulingError(
                f"inference_units {inference_units} outside lattice [0, {self._total_units}]"
            )
        self.evaluations += 1
        inference_gpu = inference_units * self._quantum
        inference_index = self._pick_inference_index(inference_gpu)
        factor_during = self._effective_factor(inference_index, inference_gpu)
        accuracy_during = float(min(max(self._start * factor_during, 0.0), 1.0))
        base_meets = accuracy_during + 1e-9 >= self._a_min

        max_level = self._total_units - inference_units
        accuracy = np.full(max_level + 1, accuracy_during, dtype=float)
        choice = np.full(max_level + 1, -1, dtype=np.int64)
        num_configs = len(self._retraining_configs)
        if max_level < 1 or num_configs == 0:
            return _Column(inference_index, accuracy.tolist(), choice.tolist())

        retraining_gpus = np.arange(1, max_level + 1, dtype=float) * self._quantum
        if self._release:
            # Post-retraining the freed GPUs flow back to inference.  Above
            # the config's demand the factor saturates at its base value, so
            # only the handful of under-provisioned levels need the scalar
            # power-law computation (kept in Python for bit-identity with
            # the reference oracle).
            demand = self._demands_list[inference_index]
            base = self._base_list[inference_index]
            factor_after = np.full(max_level, base, dtype=float)
            post_gpus = inference_gpu + retraining_gpus
            if demand > 0:
                under = np.nonzero(post_gpus < demand)[0]
                for level in under.tolist():
                    factor_after[level] = self._effective_factor(
                        inference_index, float(post_gpus[level])
                    )
        else:
            factor_after = np.full(max_level, factor_during, dtype=float)

        batch = estimate_batch_average_accuracy(
            accuracy_during=accuracy_during,
            post_retraining_accuracies=self._post,
            retraining_gpu_seconds=self._gpu_seconds,
            inference_factor_after=factor_after[:, None],
            retraining_gpu=retraining_gpus[:, None],
            window_seconds=self._window,
            a_min=self._a_min,
        )
        avg = batch.average_accuracy
        completes = batch.completes
        meets = batch.meets_minimum

        if base_meets:
            # Fast path: non-meeting candidates can never displace a meeting
            # incumbent, so the winner is a masked argmax per level.  Levels
            # whose eligible values near-tie within the improvement epsilon
            # fall back to the sequential reference scan, which keeps the
            # vector path exactly equivalent to the oracle.
            masked = np.where(completes & meets, avg, -np.inf)
            best_j = np.argmax(masked, axis=1)
            best_vals = masked[np.arange(max_level), best_j]
            has_eligible = best_vals > -np.inf
            near_tie = (
                (masked >= best_vals[:, None] - _IMPROVEMENT_EPS)
                & (masked != best_vals[:, None])
            ).any(axis=1)
            accept = (
                has_eligible
                & ~near_tie
                & (best_vals > accuracy_during + _IMPROVEMENT_EPS)
            )
            choice[1:][accept] = best_j[accept]
            accuracy[1:][accept] = best_vals[accept]
            scan_levels = np.nonzero(has_eligible & near_tie)[0]
        else:
            scan_levels = np.arange(max_level)

        if scan_levels.size:
            avg_list = avg.tolist()
            completes_list = completes.tolist()
            meets_list = meets.tolist()
            for level in scan_levels.tolist():
                j, value = _sequential_select(
                    avg_list[level],
                    completes_list[level],
                    meets_list[level],
                    accuracy_during,
                    base_meets,
                )
                choice[level + 1] = j
                accuracy[level + 1] = value
        return _Column(inference_index, accuracy.tolist(), choice.tolist())

    # --------------------------------------------------------------- queries
    def accuracy_at(self, inference_units: int, retraining_units: int) -> float:
        """Estimated window-average accuracy at one lattice point (memoised)."""
        column = self._columns.get(inference_units)
        if column is None:
            column = self._column(inference_units)
        return column.accuracy[retraining_units]

    def decision(self, inference_units: int, retraining_units: int) -> StreamDecision:
        """Full :class:`StreamDecision` at one lattice point."""
        column = self._column(inference_units)
        config_index = column.choice[retraining_units]
        retraining_config = (
            self._retraining_configs[config_index] if config_index >= 0 else None
        )
        return StreamDecision(
            stream_name=self.stream_name,
            inference_config=self._inference_configs[column.inference_index],
            inference_gpu=inference_units * self._quantum,
            retraining_config=retraining_config,
            retraining_gpu=(
                retraining_units * self._quantum if retraining_config is not None else 0.0
            ),
            estimated_average_accuracy=float(column.accuracy[retraining_units]),
        )


def build_candidate_tables(
    streams: Dict[str, StreamWindowInput],
    *,
    window_seconds: float,
    a_min: float,
    quantum: float,
    total_units: int,
    release_retraining_gpu_to_inference: bool = True,
) -> Dict[str, CandidateTable]:
    """One :class:`CandidateTable` per stream for a schedule request."""
    return {
        name: CandidateTable(
            stream_input,
            window_seconds=window_seconds,
            a_min=a_min,
            quantum=quantum,
            total_units=total_units,
            release_retraining_gpu_to_inference=release_retraining_gpu_to_inference,
        )
        for name, stream_input in streams.items()
    }
