"""Configuration selection for given allocations (Algorithm 2, PickConfigs).

Given a tentative GPU allocation for every inference and retraining job,
``PickConfigs`` chooses, per stream, the inference configuration with the
highest accuracy that keeps up within its allocation and stays above a_MIN,
and then the retraining configuration (possibly "no retraining") that
maximises the estimated accuracy averaged over the retraining window.
"""

from __future__ import annotations

from typing import Dict, Mapping, MutableMapping, Optional, Tuple

from ..cluster.jobs import inference_job_id, retraining_job_id
from ..configs.inference import InferenceConfig
from ..exceptions import SchedulingError
from ..utils.math_utils import safe_mean
from .estimator import estimate_stream_average_accuracy
from .types import ScheduleRequest, StreamDecision, StreamWindowInput


def pick_inference_config(
    stream_input: StreamWindowInput,
    inference_gpu: float,
    *,
    a_min: float,
) -> InferenceConfig:
    """Pick the most accurate inference configuration that fits the allocation.

    Preference order (Algorithm 2, lines 3–4): configurations that both fit
    within the allocation and keep the instantaneous accuracy at or above
    a_MIN; failing that, configurations that merely fit; failing that, the
    cheapest configuration (the stream is under-provisioned and will degrade).
    """
    start_accuracy = stream_input.profile.start_accuracy
    fitting = [
        cfg
        for cfg in stream_input.inference_configs
        if float(cfg.gpu_demand or 0.0) <= inference_gpu + 1e-9
    ]
    if fitting:
        above_min = [
            cfg for cfg in fitting if start_accuracy * cfg.accuracy_factor() + 1e-9 >= a_min
        ]
        pool = above_min or fitting
        return max(pool, key=lambda cfg: cfg.accuracy_factor())
    return min(stream_input.inference_configs, key=lambda cfg: float(cfg.gpu_demand or 0.0))


def pick_configs_for_stream(
    stream_input: StreamWindowInput,
    inference_gpu: float,
    retraining_gpu: float,
    *,
    window_seconds: float,
    a_min: float,
    release_retraining_gpu_to_inference: bool = True,
) -> StreamDecision:
    """Choose the (inference, retraining) configuration pair for one stream."""
    if inference_gpu < 0 or retraining_gpu < 0:
        raise SchedulingError("allocations must be non-negative")
    profile = stream_input.profile
    inference_config = pick_inference_config(stream_input, inference_gpu, a_min=a_min)

    def evaluate(config, post_accuracy, gpu_seconds):
        return estimate_stream_average_accuracy(
            start_accuracy=profile.start_accuracy,
            post_retraining_accuracy=post_accuracy,
            retraining_gpu_seconds=gpu_seconds,
            inference_config=inference_config,
            inference_gpu=inference_gpu,
            retraining_gpu=retraining_gpu if config is not None else 0.0,
            window_seconds=window_seconds,
            release_retraining_gpu_to_inference=release_retraining_gpu_to_inference,
        )

    # The "no retraining" option is always a candidate (γ = ∅).
    best_config = None
    best_estimate = evaluate(None, None, 0.0)

    if retraining_gpu > 0:
        for config, estimate in profile.estimates.items():
            candidate = evaluate(config, estimate.post_retraining_accuracy, estimate.gpu_seconds)
            if not candidate.retraining_completes:
                # Exceeds the window at this allocation (first constraint of Eq. 1).
                continue
            better = candidate.average_accuracy > best_estimate.average_accuracy + 1e-12
            # Prefer options that respect a_MIN over ones that do not.
            if candidate.meets_minimum(a_min) and not best_estimate.meets_minimum(a_min):
                better = candidate.average_accuracy >= best_estimate.average_accuracy - 1e-12 or better
            elif not candidate.meets_minimum(a_min) and best_estimate.meets_minimum(a_min):
                better = False
            if better:
                best_config = config
                best_estimate = candidate

    retraining_allocation = retraining_gpu if best_config is not None else 0.0
    return StreamDecision(
        stream_name=stream_input.stream_name,
        inference_config=inference_config,
        inference_gpu=inference_gpu,
        retraining_config=best_config,
        retraining_gpu=retraining_allocation,
        estimated_average_accuracy=best_estimate.average_accuracy,
    )


def pick_configs(
    request: ScheduleRequest,
    allocation: Mapping[str, float],
    *,
    release_retraining_gpu_to_inference: bool = True,
    cache: Optional[MutableMapping[Tuple[str, float, float], StreamDecision]] = None,
) -> Tuple[Dict[str, StreamDecision], float]:
    """Algorithm 2 over all streams; returns decisions and their mean accuracy.

    ``allocation`` maps job ids (``<stream>/inference`` and
    ``<stream>/retraining``) to GPU fractions.  ``cache`` memoises per-stream
    decisions keyed by the stream's own pair of allocations: the thief
    scheduler perturbs only two jobs per step, so almost every other stream's
    decision can be reused, which keeps Algorithm 1 fast.
    """
    decisions: Dict[str, StreamDecision] = {}
    for name, stream_input in request.streams.items():
        inference_gpu = float(allocation.get(inference_job_id(name), 0.0))
        retraining_gpu = float(allocation.get(retraining_job_id(name), 0.0))
        key = (name, round(inference_gpu, 6), round(retraining_gpu, 6))
        if cache is not None and key in cache:
            decisions[name] = cache[key]
            continue
        decision = pick_configs_for_stream(
            stream_input,
            inference_gpu,
            retraining_gpu,
            window_seconds=request.window_seconds,
            a_min=request.a_min,
            release_retraining_gpu_to_inference=release_retraining_gpu_to_inference,
        )
        decisions[name] = decision
        if cache is not None:
            cache[key] = decision
    mean_accuracy = safe_mean([d.estimated_average_accuracy for d in decisions.values()])
    return decisions, mean_accuracy
