"""Configuration selection for given allocations (Algorithm 2, PickConfigs).

Given a tentative GPU allocation for every inference and retraining job,
``PickConfigs`` chooses, per stream, the inference configuration with the
highest accuracy that keeps up within its allocation and stays above a_MIN,
and then the retraining configuration (possibly "no retraining") that
maximises the estimated accuracy averaged over the retraining window.
"""

from __future__ import annotations

from typing import Dict, Mapping, MutableMapping, Optional, Tuple, Union

from ..cluster.jobs import inference_job_id, retraining_job_id
from ..cluster.resources import AllocationVector
from ..configs.inference import InferenceConfig
from ..exceptions import SchedulingError
from ..utils.math_utils import safe_mean
from .estimator import estimate_stream_average_accuracy
from .types import ScheduleRequest, StreamDecision, StreamWindowInput

#: Strict-improvement epsilon of Algorithm 2's candidate comparison (and of
#: Algorithm 1's steal acceptance).  The vectorised hot path in
#: :mod:`repro.core.candidate_table` and the thief import it from here so the
#: scalar oracle and the vectorised search can never drift apart.
IMPROVEMENT_EPS = 1e-12


def pick_inference_config(
    stream_input: StreamWindowInput,
    inference_gpu: float,
    *,
    a_min: float,
) -> InferenceConfig:
    """Pick the most accurate inference configuration that fits the allocation.

    Preference order (Algorithm 2, lines 3–4): configurations that both fit
    within the allocation and keep the instantaneous accuracy at or above
    a_MIN; failing that, configurations that merely fit; failing that, the
    cheapest configuration (the stream is under-provisioned and will degrade).
    """
    start_accuracy = stream_input.profile.start_accuracy
    fitting = [
        cfg
        for cfg in stream_input.inference_configs
        if float(cfg.gpu_demand or 0.0) <= inference_gpu + 1e-9
    ]
    if fitting:
        above_min = [
            cfg for cfg in fitting if start_accuracy * cfg.accuracy_factor() + 1e-9 >= a_min
        ]
        pool = above_min or fitting
        return max(pool, key=lambda cfg: cfg.accuracy_factor())
    return min(stream_input.inference_configs, key=lambda cfg: float(cfg.gpu_demand or 0.0))


def pick_configs_for_stream(
    stream_input: StreamWindowInput,
    inference_gpu: float,
    retraining_gpu: float,
    *,
    window_seconds: float,
    a_min: float,
    release_retraining_gpu_to_inference: bool = True,
) -> StreamDecision:
    """Choose the (inference, retraining) configuration pair for one stream."""
    if inference_gpu < 0 or retraining_gpu < 0:
        raise SchedulingError("allocations must be non-negative")
    profile = stream_input.profile
    inference_config = pick_inference_config(stream_input, inference_gpu, a_min=a_min)

    def evaluate(config, post_accuracy, gpu_seconds):
        return estimate_stream_average_accuracy(
            start_accuracy=profile.start_accuracy,
            post_retraining_accuracy=post_accuracy,
            retraining_gpu_seconds=gpu_seconds,
            inference_config=inference_config,
            inference_gpu=inference_gpu,
            retraining_gpu=retraining_gpu if config is not None else 0.0,
            window_seconds=window_seconds,
            release_retraining_gpu_to_inference=release_retraining_gpu_to_inference,
        )

    # The "no retraining" option is always a candidate (γ = ∅).
    best_config = None
    best_estimate = evaluate(None, None, 0.0)

    if retraining_gpu > 0:
        for config, estimate in profile.estimates.items():
            candidate = evaluate(config, estimate.post_retraining_accuracy, estimate.gpu_seconds)
            if not candidate.retraining_completes:
                # Exceeds the window at this allocation (first constraint of Eq. 1).
                continue
            better = candidate.average_accuracy > best_estimate.average_accuracy + IMPROVEMENT_EPS
            # Prefer options that respect a_MIN over ones that do not.
            if candidate.meets_minimum(a_min) and not best_estimate.meets_minimum(a_min):
                better = (
                    candidate.average_accuracy
                    >= best_estimate.average_accuracy - IMPROVEMENT_EPS
                    or better
                )
            elif not candidate.meets_minimum(a_min) and best_estimate.meets_minimum(a_min):
                better = False
            if better:
                best_config = config
                best_estimate = candidate

    retraining_allocation = retraining_gpu if best_config is not None else 0.0
    return StreamDecision(
        stream_name=stream_input.stream_name,
        inference_config=inference_config,
        inference_gpu=inference_gpu,
        retraining_config=best_config,
        retraining_gpu=retraining_allocation,
        estimated_average_accuracy=best_estimate.average_accuracy,
    )


def pick_configs(
    request: ScheduleRequest,
    allocation: Union[Mapping[str, float], AllocationVector],
    *,
    release_retraining_gpu_to_inference: bool = True,
    cache: Optional[MutableMapping[Tuple[str, int, int], StreamDecision]] = None,
) -> Tuple[Dict[str, StreamDecision], float]:
    """Algorithm 2 over all streams; returns decisions and their mean accuracy.

    ``allocation`` maps job ids (``<stream>/inference`` and
    ``<stream>/retraining``) to GPU fractions, or is an
    :class:`~repro.cluster.resources.AllocationVector` on the integer-quantum
    lattice.  ``cache`` memoises per-stream decisions keyed by the stream's
    own pair of allocations, which lets a caller that perturbs only a couple
    of jobs between calls reuse every other stream's decision.

    Cache keys are the **exact integer quanta** of the lattice — never
    rounded floats, which alias distinct allocations (and miss equal ones)
    whenever the quantum walks below the rounding resolution.  Exact keys
    require the lattice, so the cache is only consulted when ``allocation``
    is an :class:`AllocationVector`; raw float mappings are always evaluated.
    """
    lattice = allocation if isinstance(allocation, AllocationVector) else None
    decisions: Dict[str, StreamDecision] = {}
    for name, stream_input in request.streams.items():
        if lattice is not None:
            inference_units = lattice.units(inference_job_id(name))
            retraining_units = lattice.units(retraining_job_id(name))
            inference_gpu = inference_units * lattice.quantum
            retraining_gpu = retraining_units * lattice.quantum
            key: Optional[Tuple[str, int, int]] = (name, inference_units, retraining_units)
        else:
            inference_gpu = float(allocation.get(inference_job_id(name), 0.0))
            retraining_gpu = float(allocation.get(retraining_job_id(name), 0.0))
            key = None
        if cache is not None and key is not None and key in cache:
            decisions[name] = cache[key]
            continue
        decision = pick_configs_for_stream(
            stream_input,
            inference_gpu,
            retraining_gpu,
            window_seconds=request.window_seconds,
            a_min=request.a_min,
            release_retraining_gpu_to_inference=release_retraining_gpu_to_inference,
        )
        decisions[name] = decision
        if cache is not None and key is not None:
            cache[key] = decision
    mean_accuracy = safe_mean([d.estimated_average_accuracy for d in decisions.values()])
    return decisions, mean_accuracy
