"""The Ekya controller: micro-profiling + thief scheduling per window.

:class:`EkyaPolicy` is the full system: at the start of every retraining
window it micro-profiles (or queries the oracle profiler for) every stream's
candidate retraining configurations and runs the thief scheduler over the
resulting profiles.  Two ablated variants reproduce the factor analysis of
Figure 8:

* ``fixed_resources=True`` (Ekya-FixedRes) keeps the uniform baseline's
  static inference/retraining split but still selects configurations with the
  micro-profiled estimates.
* ``fixed_retraining_config`` (Ekya-FixedConfig) keeps the thief scheduler's
  adaptive allocation but always retrains with one fixed configuration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cluster.edge_server import EdgeServerSpec
from ..cluster.jobs import inference_job_id, retraining_job_id
from ..configs.retraining import RetrainingConfig
from ..configs.space import ConfigurationSpace
from ..datasets.stream import VideoStream
from ..exceptions import SchedulingError
from ..utils.clock import Clock, Stopwatch
from .baselines import even_stream_share
from .batched_planner import BatchedThiefScheduler
from .microprofiler import ProfileSource
from .pick_configs import pick_configs
from .policy import ProfiledPolicy
from .thief import ThiefScheduler
from .types import ScheduleRequest, WindowSchedule


class EkyaPolicy(ProfiledPolicy):
    """Full Ekya: joint configuration selection and resource allocation."""

    def __init__(
        self,
        profile_source: ProfileSource,
        config_space: ConfigurationSpace | None = None,
        *,
        steal_quantum: Optional[float] = None,
        fixed_resources: bool = False,
        inference_share_when_fixed: float = 0.5,
        fixed_retraining_config: Optional[RetrainingConfig] = None,
        name: Optional[str] = None,
        clock: Optional[Clock] = None,
        batched_planning: bool = False,
    ) -> None:
        super().__init__(profile_source, config_space)
        if not 0.0 < inference_share_when_fixed < 1.0:
            raise SchedulingError("inference_share_when_fixed must be in (0, 1)")
        if batched_planning and fixed_resources:
            # Fixed-resource ablation never runs the thief, so the batched
            # scheduler would be a silently dead flag.
            raise SchedulingError("batched_planning is incompatible with fixed_resources")
        self._clock = clock
        scheduler_cls = BatchedThiefScheduler if batched_planning else ThiefScheduler
        self._scheduler = scheduler_cls(steal_quantum=steal_quantum, clock=clock)
        self._batched_planning = batched_planning
        self._fixed_resources = fixed_resources
        self._inference_share = inference_share_when_fixed
        self._fixed_config = fixed_retraining_config
        if name is not None:
            self.name = name
        elif fixed_resources:
            self.name = "ekya-fixedres"
        elif fixed_retraining_config is not None:
            self.name = "ekya-fixedconfig"
        else:
            self.name = "ekya"

    # ------------------------------------------------------------- interface
    @property
    def batched_planning(self) -> bool:
        return self._batched_planning

    @property
    def scheduler(self) -> ThiefScheduler:
        """The thief scheduler instance planning this policy's windows.

        With ``batched_planning=True`` this is a
        :class:`~repro.core.batched_planner.BatchedThiefScheduler`, whose
        ``schedule_cohort`` the fleet event loop feeds whole same-instant
        boundary cohorts (requests built via :meth:`prepare_request`).
        """
        return self._scheduler

    def prepare_request(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> ScheduleRequest:
        """Build (and profile) this window's request without solving it.

        The profiling half of :meth:`plan_window`: all profile-source side
        effects (micro-profiling cost, estimator-error draws) happen here,
        in call order, so a fleet that batches many sites' *solves* into one
        call still profiles site by site exactly as the scalar path does.
        """
        request = self.build_request(streams, window_index, spec)
        if self._fixed_config is not None:
            request = self._restrict_to_fixed_config(request)
        return request

    def plan_window(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> WindowSchedule:
        request = self.prepare_request(streams, window_index, spec)
        if self._fixed_resources:
            return self._plan_with_fixed_resources(request)
        return self._scheduler.schedule(request)

    # -------------------------------------------------------------- variants
    def _restrict_to_fixed_config(self, request: ScheduleRequest) -> ScheduleRequest:
        """Keep only the fixed retraining configuration in every profile."""
        assert self._fixed_config is not None
        for stream_input in request.streams.values():
            estimates = stream_input.profile.estimates
            kept = {
                config: est for config, est in estimates.items() if config.key() == self._fixed_config.key()
            }
            if kept:
                stream_input.profile.estimates = kept
        return request

    def _plan_with_fixed_resources(self, request: ScheduleRequest) -> WindowSchedule:
        """Static per-stream split, configuration choice still profile-driven."""
        watch = Stopwatch(self._clock)
        per_stream = even_stream_share(request.total_gpus, len(request.streams))
        allocation: Dict[str, float] = {}
        for name in request.streams:
            allocation[inference_job_id(name)] = per_stream * self._inference_share
            allocation[retraining_job_id(name)] = per_stream * (1.0 - self._inference_share)
        decisions, accuracy = pick_configs(request, allocation)
        schedule = WindowSchedule(
            window_index=request.window_index,
            decisions=decisions,
            estimated_average_accuracy=accuracy,
            scheduler_runtime_seconds=watch.elapsed(),
            iterations=1,
        )
        schedule.validate_against(request)
        return schedule
