"""Ekya's core: thief scheduler, micro-profiler, controller and baselines."""

from .baselines import (
    UNIFORM_CONFIG_1,
    UNIFORM_CONFIG_2,
    NoRetrainingPolicy,
    UniformPolicy,
    even_stream_share,
    finalize_window_schedule,
    standard_uniform_baselines,
)
from .cached import (
    CachedModelEntry,
    CachedReuseResult,
    build_model_cache,
    evaluate_cached_reuse,
    select_cached_model,
)
from .candidate_table import CandidateTable, build_candidate_tables
from .cloud import CloudRetrainingPolicy
from .controller import EkyaPolicy
from .estimator import (
    AccuracyEstimate,
    BatchAccuracyEstimate,
    estimate_batch_average_accuracy,
    estimate_stream_average_accuracy,
)
from .microprofiler import (
    MicroProfiler,
    MicroProfilerSettings,
    MicroProfilingSource,
    OracleProfileSource,
    ProfileSource,
    SharedProfileOracle,
)
from .pick_configs import pick_configs, pick_configs_for_stream, pick_inference_config
from .policy import ProfiledPolicy, WindowPolicy
from .thief import ThiefScheduler
from .types import (
    ScheduleRequest,
    Scheduler,
    StreamDecision,
    StreamWindowInput,
    WindowSchedule,
)

__all__ = [
    "UNIFORM_CONFIG_1",
    "UNIFORM_CONFIG_2",
    "NoRetrainingPolicy",
    "UniformPolicy",
    "even_stream_share",
    "finalize_window_schedule",
    "standard_uniform_baselines",
    "CachedModelEntry",
    "CachedReuseResult",
    "build_model_cache",
    "evaluate_cached_reuse",
    "select_cached_model",
    "CandidateTable",
    "build_candidate_tables",
    "CloudRetrainingPolicy",
    "EkyaPolicy",
    "AccuracyEstimate",
    "BatchAccuracyEstimate",
    "estimate_batch_average_accuracy",
    "estimate_stream_average_accuracy",
    "MicroProfiler",
    "MicroProfilerSettings",
    "MicroProfilingSource",
    "OracleProfileSource",
    "ProfileSource",
    "SharedProfileOracle",
    "pick_configs",
    "pick_configs_for_stream",
    "pick_inference_config",
    "ProfiledPolicy",
    "WindowPolicy",
    "ThiefScheduler",
    "ScheduleRequest",
    "Scheduler",
    "StreamDecision",
    "StreamWindowInput",
    "WindowSchedule",
]
