"""Cloud-offloaded retraining baseline (§6.5, Table 4).

Instead of retraining on the edge, the sampled and golden-model-labelled
training frames are uploaded to the cloud over a constrained WAN link, the
model is retrained there (assumed instantaneous, a conservative assumption in
the paper), and the updated model is downloaded back to the edge.  The edge
GPUs meanwhile serve inference only.  The retrained model therefore only
becomes available after the network round trip — which on cellular/satellite
links eats most (or all) of the retraining window, so the stream spends the
window at the stale model's accuracy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cluster.edge_server import EdgeServerSpec
from ..cluster.network import NetworkLink, training_data_megabits
from ..configs.space import ConfigurationSpace
from ..datasets.stream import VideoStream
from ..exceptions import SchedulingError
from ..models.edge_model import EDGE_MODEL_SIZE_MBITS
from ..utils.clock import Clock, Stopwatch
from .estimator import estimate_stream_average_accuracy
from .microprofiler import ProfileSource
from .pick_configs import pick_inference_config
from .policy import ProfiledPolicy
from .types import StreamDecision, WindowSchedule


class CloudRetrainingPolicy(ProfiledPolicy):
    """Retrain in the cloud; the edge only runs inference.

    Parameters
    ----------
    link:
        WAN link between the edge site and the cloud.  All streams share the
        link, so uploads/downloads are serialised across streams.
    stream_bitrate_mbps / sample_fraction:
        Size model of the uploaded training data (defaults match the paper's
        worked example: 4 Mbps HD video, 10 % subsampling).
    model_size_mbits:
        Size of the model downloaded after cloud retraining.
    clock:
        Clock used to measure the scheduler's own runtime.  Defaults to the
        system monotonic clock; tests inject a
        :class:`~repro.utils.clock.ManualClock` so simulation results are
        deterministic-comparable field for field.
    """

    def __init__(
        self,
        profile_source: ProfileSource,
        link: NetworkLink,
        config_space: ConfigurationSpace | None = None,
        *,
        stream_bitrate_mbps: float = 4.0,
        sample_fraction: float = 0.1,
        model_size_mbits: float = EDGE_MODEL_SIZE_MBITS,
        name: Optional[str] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(profile_source, config_space)
        if stream_bitrate_mbps <= 0 or model_size_mbits <= 0:
            raise SchedulingError("bitrate and model size must be positive")
        if not 0.0 < sample_fraction <= 1.0:
            raise SchedulingError("sample_fraction must be in (0, 1]")
        self._link = link
        self._stream_bitrate = stream_bitrate_mbps
        self._sample_fraction = sample_fraction
        self._model_size_mbits = model_size_mbits
        self._clock = clock
        self.name = name or f"cloud ({link.name})"

    @property
    def link(self) -> NetworkLink:
        return self._link

    # ------------------------------------------------------------- interface
    def transfer_seconds_per_stream(self, window_seconds: float) -> float:
        """WAN time to ship one stream's training data up and its model down."""
        upload_mbits = training_data_megabits(
            stream_bitrate_mbps=self._stream_bitrate,
            window_seconds=window_seconds,
            sample_fraction=self._sample_fraction,
        )
        return self._link.round_trip_seconds(upload_mbits, self._model_size_mbits)

    def model_arrival_times(self, num_streams: int, window_seconds: float) -> list:
        """When each stream's retrained model lands back on the edge.

        The WAN link is shared by all cameras: every camera's training data
        must be uploaded before cloud retraining can produce its model (the
        uplink is the bottleneck the paper's worked example highlights), and
        the retrained models then come back one after another over the
        downlink.  Stream ``i`` therefore sees its new model at
        ``N·T_up + (i+1)·T_down`` seconds into the window.
        """
        upload_mbits = training_data_megabits(
            stream_bitrate_mbps=self._stream_bitrate,
            window_seconds=window_seconds,
            sample_fraction=self._sample_fraction,
        )
        upload_seconds = self._link.upload_seconds(upload_mbits)
        download_seconds = self._link.download_seconds(self._model_size_mbits)
        all_uploads_done = num_streams * upload_seconds
        return [
            all_uploads_done + (position + 1) * download_seconds
            for position in range(num_streams)
        ]

    def plan_window(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> WindowSchedule:
        request = self.build_request(streams, window_index, spec)
        watch = Stopwatch(self._clock)
        per_stream_gpu = request.total_gpus / len(request.streams)
        arrivals = self.model_arrival_times(len(request.streams), request.window_seconds)

        decisions: Dict[str, StreamDecision] = {}
        for position, (name, stream_input) in enumerate(request.streams.items()):
            profile = stream_input.profile
            inference_config = pick_inference_config(
                stream_input, per_stream_gpu, a_min=request.a_min
            )
            best_config = max(
                profile.estimates,
                key=lambda cfg: profile.estimates[cfg].post_retraining_accuracy,
                default=None,
            )
            arrival = arrivals[position]
            post_accuracy = (
                profile.estimates[best_config].post_retraining_accuracy
                if best_config is not None
                else None
            )
            evaluation = estimate_stream_average_accuracy(
                start_accuracy=profile.start_accuracy,
                post_retraining_accuracy=post_accuracy,
                retraining_gpu_seconds=0.0,
                inference_config=inference_config,
                inference_gpu=per_stream_gpu,
                retraining_gpu=0.0,
                window_seconds=request.window_seconds,
                external_retraining_duration=arrival,
            )
            decisions[name] = StreamDecision(
                stream_name=name,
                inference_config=inference_config,
                inference_gpu=per_stream_gpu,
                retraining_config=best_config,
                retraining_gpu=0.0,
                estimated_average_accuracy=evaluation.average_accuracy,
                external_completion_seconds=arrival,
            )

        mean_accuracy = sum(d.estimated_average_accuracy for d in decisions.values()) / len(decisions)
        schedule = WindowSchedule(
            window_index=request.window_index,
            decisions=decisions,
            estimated_average_accuracy=mean_accuracy,
            scheduler_runtime_seconds=watch.elapsed(),
            iterations=1,
        )
        schedule.validate_against(request)
        return schedule

    # ------------------------------------------------------------- reporting
    def bandwidth_multiple_to_finish_in(
        self,
        target_seconds: float,
        *,
        num_streams: int,
        window_seconds: float,
    ) -> Dict[str, float]:
        """How much more uplink/downlink capacity would be needed.

        Table 4's right-hand columns: the factor by which the link's uplink
        and downlink would have to grow for all streams' transfers to finish
        within ``target_seconds``.
        """
        if target_seconds <= 0 or num_streams < 1:
            raise SchedulingError("target_seconds must be positive and num_streams >= 1")
        upload_mbits = num_streams * training_data_megabits(
            stream_bitrate_mbps=self._stream_bitrate,
            window_seconds=window_seconds,
            sample_fraction=self._sample_fraction,
        )
        download_mbits = num_streams * self._model_size_mbits
        # Give each direction half of the target budget.
        needed_uplink = upload_mbits / (target_seconds / 2.0)
        needed_downlink = download_mbits / (target_seconds / 2.0)
        return {
            "uplink_multiple": needed_uplink / self._link.uplink_mbps,
            "downlink_multiple": needed_downlink / self._link.downlink_mbps,
        }
