"""Window policies: the glue between profiling, scheduling and simulation.

A :class:`WindowPolicy` is invoked once per retraining window with the
attached streams and the edge-server spec, and returns a
:class:`~repro.core.types.WindowSchedule`.  Ekya's policy builds a
:class:`~repro.core.types.ScheduleRequest` from micro-profiled (or oracle)
profiles and runs the thief scheduler; baseline policies apply their fixed
rules.  Keeping this interface small lets the trace-driven simulator execute
every scheduler in exactly the same way, which is what the evaluation's
like-for-like comparisons require.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence

from ..cluster.edge_server import EdgeServerSpec
from ..configs.space import ConfigurationSpace
from ..datasets.stream import VideoStream
from ..exceptions import SchedulingError
from .microprofiler import ProfileSource
from .types import ScheduleRequest, StreamWindowInput, WindowSchedule


class WindowPolicy(abc.ABC):
    """Decides configurations and allocations for each retraining window."""

    #: Label used in benchmark tables (e.g. "Ekya", "Uniform (Cfg 1, 50%)").
    name: str = "policy"

    @abc.abstractmethod
    def plan_window(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> WindowSchedule:
        """Return the schedule for ``window_index`` over ``streams``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ProfiledPolicy(WindowPolicy):
    """Base class for policies that consume per-window profiles."""

    def __init__(
        self,
        profile_source: ProfileSource,
        config_space: ConfigurationSpace | None = None,
    ) -> None:
        self._profile_source = profile_source
        self._config_space = config_space or ConfigurationSpace.default()

    @property
    def profile_source(self) -> ProfileSource:
        return self._profile_source

    @property
    def config_space(self) -> ConfigurationSpace:
        return self._config_space

    def build_request(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> ScheduleRequest:
        """Profile every stream and assemble the scheduler's input."""
        if not streams:
            raise SchedulingError("cannot plan a window with no streams")
        inputs: Dict[str, StreamWindowInput] = {}
        for stream in streams:
            profile = self._profile_source.profile(
                stream, window_index, self._config_space.retraining_configs
            )
            profile.stream_name = stream.name
            inputs[stream.name] = StreamWindowInput(
                stream_name=stream.name,
                profile=profile,
                inference_configs=list(self._config_space.inference_configs),
            )
        return ScheduleRequest(
            window_index=window_index,
            window_seconds=spec.window_duration,
            total_gpus=float(spec.num_gpus),
            delta=spec.delta,
            a_min=spec.min_inference_accuracy,
            streams=inputs,
        )
