"""Shared data structures exchanged between schedulers and the simulator.

A scheduler (Ekya's thief scheduler or any baseline) is a pure function from
a :class:`ScheduleRequest` — everything known at the start of a retraining
window — to a :class:`WindowSchedule` — the chosen configurations and GPU
allocations for every stream's inference and retraining job.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..configs.inference import InferenceConfig
from ..configs.retraining import RetrainingConfig
from ..exceptions import SchedulingError
from ..profiles.profile import StreamWindowProfile


@dataclass
class StreamWindowInput:
    """Per-stream information available to the scheduler for one window."""

    stream_name: str
    profile: StreamWindowProfile
    inference_configs: List[InferenceConfig]

    def __post_init__(self) -> None:
        if not self.inference_configs:
            raise SchedulingError(f"stream {self.stream_name!r} has no inference configurations")
        if self.profile.stream_name != self.stream_name:
            raise SchedulingError("profile/stream name mismatch")


@dataclass
class ScheduleRequest:
    """Everything the scheduler needs to decide one retraining window."""

    window_index: int
    window_seconds: float
    total_gpus: float
    delta: float
    a_min: float
    streams: Dict[str, StreamWindowInput] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise SchedulingError("window_seconds must be positive")
        if self.total_gpus <= 0:
            raise SchedulingError("total_gpus must be positive")
        if not 0 < self.delta <= self.total_gpus:
            raise SchedulingError("delta must be in (0, total_gpus]")
        if not 0.0 <= self.a_min < 1.0:
            raise SchedulingError("a_min must be in [0, 1)")
        if not self.streams:
            raise SchedulingError("a schedule request needs at least one stream")

    @property
    def stream_names(self) -> List[str]:
        return list(self.streams.keys())

    @property
    def gpu_time_budget(self) -> float:
        """Total GPU-time G·∥T∥ available in the window."""
        return self.total_gpus * self.window_seconds


@dataclass
class StreamDecision:
    """The scheduler's decision for one stream in one window."""

    stream_name: str
    inference_config: InferenceConfig
    inference_gpu: float
    retraining_config: Optional[RetrainingConfig] = None
    retraining_gpu: float = 0.0
    estimated_average_accuracy: float = 0.0
    #: If set, the retrained model arrives after this many seconds regardless
    #: of edge GPU allocation (used by the cloud-offload baseline, where the
    #: "retraining duration" is the WAN upload + download time).
    external_completion_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.inference_gpu < 0 or self.retraining_gpu < 0:
            raise SchedulingError("GPU allocations must be non-negative")
        if self.external_completion_seconds is not None and self.external_completion_seconds < 0:
            raise SchedulingError("external_completion_seconds must be non-negative")
        if (
            self.retraining_config is None
            and self.retraining_gpu > 1e-9
        ):
            # Allocating GPUs to a retraining job that will not run is wasteful
            # but not fatal; normalise it away.
            self.retraining_gpu = 0.0

    @property
    def total_gpu(self) -> float:
        return self.inference_gpu + self.retraining_gpu

    @property
    def retrains(self) -> bool:
        if self.retraining_config is None:
            return False
        return self.retraining_gpu > 0 or self.external_completion_seconds is not None


@dataclass
class WindowSchedule:
    """The complete decision for one retraining window."""

    window_index: int
    decisions: Dict[str, StreamDecision] = field(default_factory=dict)
    estimated_average_accuracy: float = 0.0
    scheduler_runtime_seconds: float = 0.0
    #: Candidate allocations the scheduler evaluated (steal attempts + 1).
    iterations: int = 0
    #: Executions of Algorithm 2's per-stream search that were actually
    #: computed (vectorised lattice columns for the thief; full sweeps for
    #: schedulers that call PickConfigs directly).  Memoised lookups do not
    #: count, so this is the scheduler's real configuration-selection work.
    pick_configs_evaluations: int = 0

    def decision_for(self, stream_name: str) -> StreamDecision:
        try:
            return self.decisions[stream_name]
        except KeyError as exc:
            raise SchedulingError(f"no decision recorded for stream {stream_name!r}") from exc

    @property
    def total_gpu_allocated(self) -> float:
        return float(sum(decision.total_gpu for decision in self.decisions.values()))

    def allocation_map(self) -> Dict[str, float]:
        """Flat job-id → GPU fraction map (for placement onto devices)."""
        from ..cluster.jobs import inference_job_id, retraining_job_id

        allocation: Dict[str, float] = {}
        for name, decision in self.decisions.items():
            allocation[inference_job_id(name)] = decision.inference_gpu
            allocation[retraining_job_id(name)] = decision.retraining_gpu
        return allocation

    def validate_against(self, request: ScheduleRequest) -> None:
        """Raise if the schedule violates the request's capacity constraints."""
        if set(self.decisions) != set(request.streams):
            raise SchedulingError("schedule does not cover exactly the requested streams")
        if self.total_gpu_allocated > request.total_gpus + 1e-6:
            raise SchedulingError(
                f"schedule allocates {self.total_gpu_allocated:.3f} GPUs, "
                f"exceeding the {request.total_gpus} provisioned"
            )


class Scheduler(abc.ABC):
    """Interface implemented by Ekya's thief scheduler and all baselines."""

    #: Human-readable name used in benchmark tables and plots.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, request: ScheduleRequest) -> WindowSchedule:
        """Decide configurations and allocations for one retraining window."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
