"""Micro-profiling: cheap estimation of retraining accuracy and cost (§4.3).

The micro-profiler estimates, for every candidate retraining configuration,
the post-retraining accuracy and the GPU-time cost — without running the full
retraining.  It does so by

1. training on a small uniform sample (5–10 %) of the window's data,
2. stopping after a handful of epochs (early termination),
3. fitting the observed accuracy-vs-epoch points to a non-linear saturating
   curve with a non-negative least-squares solver and extrapolating to the
   configuration's full epoch count and data size, and
4. pruning configurations that history shows to be far from the
   resource/accuracy Pareto frontier.

Two "profile sources" wrap this for the scheduler/simulator:

* :class:`MicroProfilingSource` runs the real algorithm against the numpy
  substrate (testbed mode).
* :class:`OracleProfileSource` queries an accuracy dynamics model directly
  and optionally perturbs it with Gaussian error — this is how the simulator
  reproduces Figure 11b (robustness to estimation error) without retraining.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..configs.retraining import RetrainingConfig
from ..configs.space import ConfigurationSpace
from ..datasets.stream import VideoStream, WindowData
from ..exceptions import ProfilingError
from ..models.edge_model import training_gpu_seconds
from ..models.mlp import MLPClassifier
from ..models.trainer import Trainer
from ..profiles.dynamics import StreamDynamics, SubstrateDynamics
from ..profiles.fleet_store import FleetProfileStore, stream_profile_key
from ..profiles.profile import RetrainingEstimate, StreamWindowProfile
from ..profiles.store import ProfileStore
from ..utils.curves import fit_accuracy_curve, scale_for_data_fraction
from ..utils.math_utils import clamp
from ..utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class MicroProfilerSettings:
    """Tunables of the micro-profiling procedure."""

    data_fraction: float = 0.1
    profiling_epochs: int = 5
    holdout_fraction: float = 0.25
    prune_with_history: bool = True
    max_configs: int = 18

    def __post_init__(self) -> None:
        if not 0.0 < self.data_fraction <= 1.0:
            raise ProfilingError("data_fraction must be in (0, 1]")
        if self.profiling_epochs < 2:
            raise ProfilingError("profiling_epochs must be >= 2 (need points to fit a curve)")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ProfilingError("holdout_fraction must be in (0, 1)")
        if self.max_configs < 1:
            raise ProfilingError("max_configs must be >= 1")


class MicroProfiler:
    """The micro-profiling algorithm itself (operates on real models/data)."""

    def __init__(
        self,
        settings: MicroProfilerSettings = MicroProfilerSettings(),
        *,
        seed: SeedLike = None,
    ) -> None:
        self.settings = settings
        self._trainer = Trainer(holdout_fraction=settings.holdout_fraction, seed=seed)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------ single cfg
    def profile_config(
        self,
        model: MLPClassifier,
        window: WindowData,
        config: RetrainingConfig,
    ) -> RetrainingEstimate:
        """Micro-profile one configuration on one window.

        The model is cloned so the caller's serving model is untouched.  The
        estimate extrapolates the early-epoch accuracies on the profiling
        subset to the configuration's full epochs and data fraction.
        """
        probe = model.clone()
        profiling_fraction = min(self.settings.data_fraction, config.data_fraction)
        result = self._trainer.train(
            probe,
            window,
            config,
            max_epochs=self.settings.profiling_epochs,
            data_fraction_override=profiling_fraction,
            rng=self._rng,
        )
        epochs_observed = list(range(1, len(result.epoch_accuracies) + 1))
        try:
            curve = fit_accuracy_curve(epochs_observed, result.epoch_accuracies)
            curve = scale_for_data_fraction(
                curve,
                profiled_fraction=profiling_fraction,
                target_fraction=config.data_fraction,
            )
            predicted = curve.accuracy_at(config.epochs)
        except ProfilingError:
            curve = None
            predicted = result.final_accuracy
        full_cost = training_gpu_seconds(window.num_train_samples, config)
        return RetrainingEstimate(
            config=config,
            post_retraining_accuracy=clamp(predicted),
            gpu_seconds=full_cost,
            curve=curve,
            profiling_gpu_seconds=result.gpu_seconds,
        )

    # ---------------------------------------------------------------- window
    def profile_window(
        self,
        model: MLPClassifier,
        window: WindowData,
        configs: Sequence[RetrainingConfig],
        *,
        start_accuracy: Optional[float] = None,
        history: Optional[Dict[RetrainingConfig, tuple]] = None,
    ) -> StreamWindowProfile:
        """Micro-profile a set of configurations for one stream/window."""
        if not configs:
            raise ProfilingError("need at least one configuration to profile")
        if start_accuracy is None:
            start_accuracy = model.accuracy(window.eval_features, window.eval_labels)
        candidates = list(configs)
        if history and self.settings.prune_with_history:
            space = ConfigurationSpace(retraining_configs=candidates)
            candidates = space.pruned(history, max_configs=self.settings.max_configs).retraining_configs
        profile = StreamWindowProfile(
            stream_name="",  # filled by callers that know the stream
            window_index=window.window_index,
            start_accuracy=clamp(start_accuracy),
        )
        for config in candidates:
            profile.add(self.profile_config(model, window, config))
        return profile

    def exhaustive_profile_config(
        self,
        model: MLPClassifier,
        window: WindowData,
        config: RetrainingConfig,
    ) -> RetrainingEstimate:
        """Ground-truth profile: full data, full epochs (for error evaluation)."""
        probe = model.clone()
        result = self._trainer.train(probe, window, config, rng=self._rng)
        return RetrainingEstimate(
            config=config,
            post_retraining_accuracy=clamp(result.final_accuracy),
            gpu_seconds=result.gpu_seconds,
            profiling_gpu_seconds=result.gpu_seconds,
        )


class ProfileSource(abc.ABC):
    """Produces per-(stream, window) profiles for the scheduler."""

    @abc.abstractmethod
    def profile(
        self,
        stream: VideoStream,
        window_index: int,
        configs: Sequence[RetrainingConfig],
    ) -> StreamWindowProfile:
        """Return a profile of ``configs`` for one stream and window."""


class OracleProfileSource(ProfileSource):
    """Profiles taken from an accuracy-dynamics model, optionally with noise.

    With ``accuracy_error_std = 0`` this is a perfect oracle (used to isolate
    scheduling quality); a non-zero value reproduces the micro-profiler's
    estimation error (Figure 11a reports ~5.8 % median absolute error) and is
    the knob swept by the Figure 11b robustness experiment.
    """

    def __init__(
        self,
        dynamics: StreamDynamics,
        *,
        accuracy_error_std: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        if accuracy_error_std < 0:
            raise ProfilingError("accuracy_error_std must be non-negative")
        self._dynamics = dynamics
        self._error_std = accuracy_error_std
        self._rng = ensure_rng(seed)

    @property
    def dynamics(self) -> StreamDynamics:
        return self._dynamics

    def _estimate(
        self,
        stream: VideoStream,
        window_index: int,
        config: RetrainingConfig,
        *,
        profiling_gpu_seconds: float = 0.0,
    ) -> RetrainingEstimate:
        """One config's oracle estimate (shared with :class:`SharedProfileOracle`)."""
        truth = self._dynamics.candidate_post_accuracy(stream, window_index, config)
        if self._error_std > 0:
            truth = clamp(truth + self._rng.normal(0.0, self._error_std))
        return RetrainingEstimate(
            config=config,
            post_retraining_accuracy=truth,
            gpu_seconds=self._dynamics.retraining_gpu_seconds(stream, window_index, config),
            profiling_gpu_seconds=profiling_gpu_seconds,
        )

    def profile(
        self,
        stream: VideoStream,
        window_index: int,
        configs: Sequence[RetrainingConfig],
    ) -> StreamWindowProfile:
        profile = StreamWindowProfile(
            stream_name=stream.name,
            window_index=window_index,
            start_accuracy=clamp(self._dynamics.start_accuracy(stream, window_index)),
        )
        for config in configs:
            profile.add(self._estimate(stream, window_index, config))
        return profile


class MicroProfilingSource(ProfileSource):
    """End-to-end testbed mode: real micro-profiling over the numpy substrate.

    ``fleet_store`` optionally warm-starts streams that have no local
    history: their first window seeds the history-based pruning from the
    fleet-wide :class:`~repro.profiles.fleet_store.FleetProfileStore`
    curves for the stream's ``(dataset, drift-regime)`` key, so a new or
    migrated stream profiles the ``max_configs``-pruned candidate set
    instead of the full grid.
    """

    def __init__(
        self,
        dynamics: SubstrateDynamics,
        *,
        settings: MicroProfilerSettings = MicroProfilerSettings(),
        store: Optional[ProfileStore] = None,
        fleet_store: Optional[FleetProfileStore] = None,
        seed: SeedLike = None,
    ) -> None:
        self._dynamics = dynamics
        self._profiler = MicroProfiler(settings, seed=seed)
        self._store = store or ProfileStore()
        self._fleet_store = fleet_store

    @property
    def dynamics(self) -> SubstrateDynamics:
        return self._dynamics

    @property
    def store(self) -> ProfileStore:
        return self._store

    def profile(
        self,
        stream: VideoStream,
        window_index: int,
        configs: Sequence[RetrainingConfig],
    ) -> StreamWindowProfile:
        learner = self._dynamics._learner(stream)  # noqa: SLF001 - deliberate substrate access
        window = stream.window(window_index)
        history = self._store.history_for(stream.name, up_to_window=window_index)
        if not history and self._fleet_store is not None:
            # Warm start: no local observations yet, so prune from the
            # fleet's aggregated curves for this (dataset, drift-regime).
            history = self._fleet_store.curves_for(stream_profile_key(stream))
        start_accuracy = self._dynamics.start_accuracy(stream, window_index)
        profile = self._profiler.profile_window(
            learner.model,
            window,
            configs,
            start_accuracy=start_accuracy,
            history=history if history else None,
        )
        profile.stream_name = stream.name
        self._store.put(profile)
        return profile


class SharedProfileOracle(OracleProfileSource):
    """Oracle profiles with modelled micro-profiling cost and fleet warm start.

    The fleet simulator's profile source when cross-site profile sharing is
    enabled.  Accuracy estimates come from the same dynamics oracle as
    :class:`OracleProfileSource`, but each estimate additionally carries the
    GPU-time the micro-profiler *would* have spent producing it — the cost
    of ``settings.profiling_epochs`` early-termination epochs on a
    ``settings.data_fraction`` uniform sample (§4.3) — so the fleet can
    account profiling overhead and the savings sharing buys.

    A stream with no local history warm-starts from the
    :class:`~repro.profiles.fleet_store.FleetProfileStore` curves for its
    ``(dataset, drift-regime)`` key: the candidate grid is pruned to at most
    ``settings.max_configs`` configurations before profiling, and the
    difference to the full-grid cost is recorded as saved profiling time
    (drained per window via :meth:`pop_saved`).
    """

    def __init__(
        self,
        dynamics: StreamDynamics,
        fleet_store: FleetProfileStore,
        *,
        settings: MicroProfilerSettings = MicroProfilerSettings(),
        accuracy_error_std: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(dynamics, accuracy_error_std=accuracy_error_std, seed=seed)
        self._fleet_store = fleet_store
        self._settings = settings
        self._local = ProfileStore()
        self._saved: Dict[tuple, float] = {}

    @property
    def fleet_store(self) -> FleetProfileStore:
        return self._fleet_store

    @property
    def local_store(self) -> ProfileStore:
        return self._local

    def profiling_gpu_seconds(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        """Modelled cost of micro-profiling ``config`` on one window.

        Profiling trains on ``min(data_fraction, config.data_fraction)`` of
        the window's data for ``profiling_epochs`` early epochs; full
        retraining cost is linear in both, so the micro-profiling cost is
        the full cost scaled by both ratios.
        """
        full = self._dynamics.retraining_gpu_seconds(stream, window_index, config)
        fraction = min(self._settings.data_fraction, config.data_fraction)
        epochs = min(self._settings.profiling_epochs, config.epochs)
        return full * (fraction / config.data_fraction) * (epochs / config.epochs)

    def pop_saved(self, stream_name: str, window_index: int) -> float:
        """Profiling GPU-seconds the fleet store saved for one (stream, window)."""
        return self._saved.pop((stream_name, window_index), 0.0)

    def profile(
        self,
        stream: VideoStream,
        window_index: int,
        configs: Sequence[RetrainingConfig],
    ) -> StreamWindowProfile:
        candidates = list(configs)
        warm_started = False
        has_local_history = any(
            window < window_index for window in self._local.windows_for(stream.name)
        )
        if not has_local_history:
            curves = self._fleet_store.curves_for(stream_profile_key(stream))
            if curves:
                space = ConfigurationSpace(retraining_configs=candidates)
                candidates = space.pruned(
                    curves, max_configs=self._settings.max_configs
                ).retraining_configs
                warm_started = len(candidates) < len(configs)
        profile = StreamWindowProfile(
            stream_name=stream.name,
            window_index=window_index,
            start_accuracy=clamp(self._dynamics.start_accuracy(stream, window_index)),
        )
        for config in candidates:
            profile.add(
                self._estimate(
                    stream,
                    window_index,
                    config,
                    profiling_gpu_seconds=self.profiling_gpu_seconds(
                        stream, window_index, config
                    ),
                )
            )
        if warm_started:
            full_grid_cost = sum(
                self.profiling_gpu_seconds(stream, window_index, config)
                for config in configs
            )
            self._saved[(stream.name, window_index)] = (
                full_grid_cost - profile.profiling_gpu_seconds
            )
        self._local.put(profile)
        return profile
