"""Baseline schedulers the paper compares against.

The primary baseline is the **uniform scheduler** (§6.1): GPUs are split
evenly across video streams, each stream statically partitions its share
between inference and retraining, and retraining always uses one fixed
configuration chosen from the hold-out Pareto frontier ("Config 1" is the
expensive high-accuracy point, "Config 2" the cheap one).  A no-retraining
policy is also provided as a lower bound and for capacity accounting.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cluster.edge_server import EdgeServerSpec
from ..configs.retraining import RetrainingConfig
from ..configs.space import ConfigurationSpace
from ..datasets.stream import VideoStream
from ..exceptions import SchedulingError
from .estimator import estimate_stream_average_accuracy
from .microprofiler import ProfileSource
from .pick_configs import pick_inference_config
from .policy import ProfiledPolicy
from .types import StreamDecision, WindowSchedule
from ..utils.clock import Clock, Stopwatch


#: The two fixed retraining configurations used by the uniform baselines.
#: "Config 1" sits at the expensive end of the Pareto frontier of the default
#: grid, "Config 2" near the cheap end (§6.1).
UNIFORM_CONFIG_1 = RetrainingConfig(
    epochs=30, layers_trained_fraction=1.0, data_fraction=1.0, name="Config1"
)
UNIFORM_CONFIG_2 = RetrainingConfig(
    epochs=15, layers_trained_fraction=0.5, data_fraction=0.5, name="Config2"
)


def even_stream_share(total_gpus: float, num_streams: int) -> float:
    """Per-stream GPU slice of the uniform baselines (§6.1).

    The uniform schedulers split the fleet evenly by construction; unlike the
    thief's lattice-aligned fair start (``AllocationVector.fair``) the static
    split is *not* snapped to the allocation quantum, matching the paper's
    description of the baseline.
    """
    if num_streams <= 0:
        raise SchedulingError("num_streams must be positive")
    if total_gpus <= 0:
        raise SchedulingError("total_gpus must be positive")
    return total_gpus / num_streams


def finalize_window_schedule(request, decisions: Dict[str, StreamDecision], watch: Stopwatch) -> WindowSchedule:
    """Assemble and validate a single-pass baseline's :class:`WindowSchedule`.

    Shared by the uniform-family policies, which all evaluate every stream
    exactly once (``iterations`` = 1, one full PickConfigs-equivalent sweep).
    """
    mean_accuracy = sum(d.estimated_average_accuracy for d in decisions.values()) / len(decisions)
    schedule = WindowSchedule(
        window_index=request.window_index,
        decisions=decisions,
        estimated_average_accuracy=mean_accuracy,
        scheduler_runtime_seconds=watch.elapsed(),
        iterations=1,
        pick_configs_evaluations=len(decisions),
    )
    schedule.validate_against(request)
    return schedule


class UniformPolicy(ProfiledPolicy):
    """Even GPU split across streams, static inference share, fixed config.

    ``inference_share`` is the fraction of each stream's GPU slice given to
    inference (the paper sweeps 30 %, 50 % and 90 %); the remainder goes to
    retraining with ``retraining_config`` in every window.
    """

    def __init__(
        self,
        profile_source: ProfileSource,
        config_space: ConfigurationSpace | None = None,
        *,
        retraining_config: RetrainingConfig = UNIFORM_CONFIG_2,
        inference_share: float = 0.5,
        name: Optional[str] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(profile_source, config_space)
        if not 0.0 < inference_share <= 1.0:
            raise SchedulingError("inference_share must be in (0, 1]")
        self._retraining_config = retraining_config
        self._inference_share = inference_share
        self._clock = clock
        config_label = retraining_config.name or "fixed"
        self.name = name or f"uniform ({config_label}, {int(round(inference_share * 100))}%)"

    @property
    def retraining_config(self) -> RetrainingConfig:
        return self._retraining_config

    @property
    def inference_share(self) -> float:
        return self._inference_share

    def plan_window(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> WindowSchedule:
        request = self.build_request(streams, window_index, spec)
        watch = Stopwatch(self._clock)
        per_stream = even_stream_share(request.total_gpus, len(request.streams))
        inference_gpu = per_stream * self._inference_share
        retraining_gpu = per_stream - inference_gpu

        decisions: Dict[str, StreamDecision] = {}
        for name, stream_input in request.streams.items():
            profile = stream_input.profile
            inference_config = pick_inference_config(
                stream_input, inference_gpu, a_min=request.a_min
            )
            estimate = None
            chosen_config = None
            if retraining_gpu > 1e-9:
                chosen_config = self._matching_config(profile.estimates.keys())
                if chosen_config is not None:
                    estimate = profile.estimates[chosen_config]
            evaluation = estimate_stream_average_accuracy(
                start_accuracy=profile.start_accuracy,
                post_retraining_accuracy=(
                    estimate.post_retraining_accuracy if estimate is not None else None
                ),
                retraining_gpu_seconds=estimate.gpu_seconds if estimate is not None else 0.0,
                inference_config=inference_config,
                inference_gpu=inference_gpu,
                retraining_gpu=retraining_gpu if estimate is not None else 0.0,
                window_seconds=request.window_seconds,
            )
            decisions[name] = StreamDecision(
                stream_name=name,
                inference_config=inference_config,
                inference_gpu=inference_gpu,
                retraining_config=chosen_config if estimate is not None else None,
                retraining_gpu=retraining_gpu if estimate is not None else 0.0,
                estimated_average_accuracy=evaluation.average_accuracy,
            )

        return finalize_window_schedule(request, decisions, watch)

    def _matching_config(self, available) -> Optional[RetrainingConfig]:
        """Find the profiled configuration matching the fixed choice."""
        target_key = self._retraining_config.key()
        for config in available:
            if config.key() == target_key:
                return config
        # The fixed configuration was pruned from the profile; fall back to the
        # closest match by epoch count so the baseline still retrains.
        candidates = list(available)
        if not candidates:
            return None
        return min(candidates, key=lambda cfg: abs(cfg.epochs - self._retraining_config.epochs))


class NoRetrainingPolicy(ProfiledPolicy):
    """Never retrains: all GPUs go to inference (lower bound / ablation)."""

    def __init__(
        self,
        profile_source: ProfileSource,
        config_space: ConfigurationSpace | None = None,
        *,
        name: str = "no-retraining",
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(profile_source, config_space)
        self.name = name
        self._clock = clock

    def plan_window(
        self,
        streams: Sequence[VideoStream],
        window_index: int,
        spec: EdgeServerSpec,
    ) -> WindowSchedule:
        request = self.build_request(streams, window_index, spec)
        watch = Stopwatch(self._clock)
        per_stream = even_stream_share(request.total_gpus, len(request.streams))
        decisions: Dict[str, StreamDecision] = {}
        for name, stream_input in request.streams.items():
            inference_config = pick_inference_config(stream_input, per_stream, a_min=request.a_min)
            evaluation = estimate_stream_average_accuracy(
                start_accuracy=stream_input.profile.start_accuracy,
                post_retraining_accuracy=None,
                retraining_gpu_seconds=0.0,
                inference_config=inference_config,
                inference_gpu=per_stream,
                retraining_gpu=0.0,
                window_seconds=request.window_seconds,
            )
            decisions[name] = StreamDecision(
                stream_name=name,
                inference_config=inference_config,
                inference_gpu=per_stream,
                estimated_average_accuracy=evaluation.average_accuracy,
            )
        return finalize_window_schedule(request, decisions, watch)


def standard_uniform_baselines(
    profile_source: ProfileSource,
    config_space: ConfigurationSpace | None = None,
) -> Dict[str, UniformPolicy]:
    """The four uniform variants plotted in Figures 6–8.

    Returns a mapping from the paper's legend label to the policy:
    ``Uniform (Config 1, 50%)``, ``Uniform (Config 2, 30%)``,
    ``Uniform (Config 2, 50%)`` and ``Uniform (Config 2, 90%)``.
    """
    variants = [
        (UNIFORM_CONFIG_1, 0.5),
        (UNIFORM_CONFIG_2, 0.3),
        (UNIFORM_CONFIG_2, 0.5),
        (UNIFORM_CONFIG_2, 0.9),
    ]
    policies: Dict[str, UniformPolicy] = {}
    for config, share in variants:
        policy = UniformPolicy(
            profile_source,
            config_space,
            retraining_config=config,
            inference_share=share,
        )
        policies[policy.name] = policy
    return policies
