"""Cached-model-reuse baseline (§6.5).

Instead of retraining, a library of models from earlier retraining windows is
kept, and in each new window the cached model whose *training-data class
distribution* is closest (Euclidean distance over the class-frequency vector)
to the current window's distribution is deployed.  GPU cycles are then shared
evenly by the inference jobs since nothing retrains.  The paper finds this
reaches 0.72 average accuracy versus Ekya's 0.78 on the same setup, because
similar class mixes do not imply similar object appearances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.edge_server import EdgeServerSpec
from ..configs.inference import InferenceConfig
from ..configs.retraining import RetrainingConfig
from ..configs.space import ConfigurationSpace
from ..datasets.stream import VideoStream
from ..exceptions import SchedulingError
from ..profiles.dynamics import AnalyticDynamics
from ..utils.math_utils import clamp, euclidean_distance, safe_mean


@dataclass(frozen=True)
class CachedModelEntry:
    """One cached model: when it was trained and on what class mix."""

    stream_name: str
    trained_window: int
    class_distribution: np.ndarray
    config: RetrainingConfig


@dataclass
class CachedReuseResult:
    """Outcome of the cached-model-reuse evaluation."""

    mean_accuracy: float
    per_window_accuracy: List[float] = field(default_factory=list)
    per_stream_accuracy: Dict[str, float] = field(default_factory=dict)
    selections: Dict[str, List[int]] = field(default_factory=dict)


def build_model_cache(
    streams: Sequence[VideoStream],
    cache_windows: Sequence[int],
    *,
    config: RetrainingConfig,
) -> List[CachedModelEntry]:
    """Pre-train (conceptually) and cache models on a set of earlier windows."""
    if not cache_windows:
        raise SchedulingError("need at least one cache window")
    cache: List[CachedModelEntry] = []
    for stream in streams:
        for window_index in cache_windows:
            cache.append(
                CachedModelEntry(
                    stream_name=stream.name,
                    trained_window=window_index,
                    class_distribution=stream.class_distribution(window_index),
                    config=config,
                )
            )
    return cache


def select_cached_model(
    cache: Sequence[CachedModelEntry],
    stream: VideoStream,
    window_index: int,
) -> CachedModelEntry:
    """Pick the cached model with the closest training class distribution."""
    candidates = [entry for entry in cache if entry.stream_name == stream.name]
    if not candidates:
        raise SchedulingError(f"no cached models for stream {stream.name!r}")
    target = stream.class_distribution(window_index)
    return min(
        candidates,
        key=lambda entry: euclidean_distance(entry.class_distribution, target),
    )


def evaluate_cached_reuse(
    streams: Sequence[VideoStream],
    dynamics: AnalyticDynamics,
    spec: EdgeServerSpec,
    *,
    eval_windows: Sequence[int],
    cache_windows: Sequence[int],
    cached_config: RetrainingConfig = RetrainingConfig(epochs=30, name="cached"),
    config_space: Optional[ConfigurationSpace] = None,
) -> CachedReuseResult:
    """Run the cached-model-reuse baseline over ``eval_windows``.

    GPUs are split evenly among the inference jobs (no retraining runs), the
    best-fitting inference configuration is chosen per stream, and each
    window's accuracy is the cached model's drift-eroded accuracy times the
    inference configuration's degradation factor.
    """
    if not eval_windows:
        raise SchedulingError("need at least one evaluation window")
    space = config_space or ConfigurationSpace.default()
    cache = build_model_cache(streams, cache_windows, config=cached_config)
    per_stream_gpu = spec.num_gpus / len(streams)
    inference_config = _best_fitting_inference_config(space.inference_configs, per_stream_gpu)

    per_window: List[float] = []
    per_stream_totals: Dict[str, List[float]] = {stream.name: [] for stream in streams}
    selections: Dict[str, List[int]] = {stream.name: [] for stream in streams}
    for window_index in eval_windows:
        window_accuracies = []
        for stream in streams:
            entry = select_cached_model(cache, stream, window_index)
            model_accuracy = dynamics.accuracy_of_model_trained_at(
                stream, entry.trained_window, window_index, entry.config
            )
            accuracy = clamp(
                model_accuracy * inference_config.effective_accuracy_factor(per_stream_gpu)
            )
            window_accuracies.append(accuracy)
            per_stream_totals[stream.name].append(accuracy)
            selections[stream.name].append(entry.trained_window)
        per_window.append(safe_mean(window_accuracies))

    return CachedReuseResult(
        mean_accuracy=safe_mean(per_window),
        per_window_accuracy=per_window,
        per_stream_accuracy={name: safe_mean(vals) for name, vals in per_stream_totals.items()},
        selections=selections,
    )


def _best_fitting_inference_config(
    configs: Sequence[InferenceConfig], gpu_share: float
) -> InferenceConfig:
    fitting = [cfg for cfg in configs if float(cfg.gpu_demand or 0.0) <= gpu_share + 1e-9]
    if fitting:
        return max(fitting, key=lambda cfg: cfg.accuracy_factor())
    return min(configs, key=lambda cfg: float(cfg.gpu_demand or 0.0))
