"""The thief resource scheduler (Algorithm 1).

The thief scheduler makes the joint retraining/inference problem tractable by
decoupling resource allocation from configuration selection.  Starting from a
fair allocation, every job in turn plays the "thief": it steals GPU quanta Δ
from each other job as long as doing so improves the estimated inference
accuracy averaged over the retraining window (computed by ``PickConfigs``),
and stops as soon as the accuracy stops improving.

Hot-path implementation notes (the behaviour is the paper's Algorithm 1):

* Allocations live on the integer-quantum lattice of
  :class:`~repro.cluster.resources.AllocationVector`; a candidate steal is an
  O(1) integer mutation that is *undone* by the inverse transfer when the
  trajectory is abandoned — no per-candidate vector copies, no float drift.
* A steal perturbs exactly one or two streams, so the window objective is
  maintained incrementally: a running per-stream accuracy sum is updated with
  only the affected streams' deltas instead of re-running PickConfigs over
  every stream per candidate.
* Per-stream decisions come from the vectorised
  :class:`~repro.core.candidate_table.CandidateTable`, which memoises whole
  retraining-level columns on exact integer keys, making almost every
  candidate evaluation a dictionary lookup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cluster.jobs import inference_job_id, retraining_job_id
from ..cluster.resources import AllocationVector
from ..exceptions import SchedulingError
from ..utils.clock import Clock, Stopwatch
from ..utils.math_utils import safe_mean
from .candidate_table import CandidateTable, build_candidate_tables
from .pick_configs import IMPROVEMENT_EPS as _IMPROVEMENT_EPS
from .types import ScheduleRequest, Scheduler, WindowSchedule


class ThiefScheduler(Scheduler):
    """Ekya's accuracy-optimising scheduler.

    Parameters
    ----------
    steal_quantum:
        The stealing increment Δ.  Defaults to the request's allocation unit
        δ; Figure 10 studies its sensitivity.
    release_retraining_gpu_to_inference:
        Whether the accuracy estimator assumes the retraining job's GPUs flow
        back to the stream's inference job after the retraining completes
        (Ekya re-invokes the scheduler at that point, so the default is True).
    max_rounds:
        Number of full thief/victim sweeps.  One sweep (the paper's algorithm)
        is almost always sufficient because later thieves see the allocations
        left by earlier ones; additional rounds are supported for ablations.
    patience:
        Number of consecutive non-improving steals tolerated before the thief
        moves on to the next victim.  The paper's Algorithm 1 stops at the
        first non-improving steal (patience = 1); a small look-ahead avoids a
        local minimum where a retraining job needs several quanta before its
        retraining can complete inside the window at all, so nothing improves
        until the allocation crosses that threshold.
    clock:
        Clock used to measure ``scheduler_runtime_seconds``; tests inject a
        :class:`~repro.utils.clock.ManualClock` for deterministic schedules.
    """

    name = "ekya-thief"

    def __init__(
        self,
        *,
        steal_quantum: Optional[float] = None,
        release_retraining_gpu_to_inference: bool = True,
        max_rounds: int = 1,
        patience: int = 4,
        clock: Optional[Clock] = None,
    ) -> None:
        if steal_quantum is not None and steal_quantum <= 0:
            raise SchedulingError("steal_quantum must be positive")
        if max_rounds < 1:
            raise SchedulingError("max_rounds must be >= 1")
        if patience < 1:
            raise SchedulingError("patience must be >= 1")
        self._steal_quantum = steal_quantum
        self._release = release_retraining_gpu_to_inference
        self._max_rounds = max_rounds
        self._patience = patience
        self._clock = clock

    # ------------------------------------------------------------- interface
    @staticmethod
    def fair_start(request: ScheduleRequest, quantum: float) -> AllocationVector:
        """The thief's lattice-aligned fair starting allocation.

        Remainder quanta that cannot be split evenly go to inference jobs
        (one per stream) before any retraining job: under heavy contention
        every stream should be able to serve its live video before any
        stream retrains.
        """
        job_ids: List[str] = []
        inference_first: List[str] = []
        for name in request.streams:
            job_ids.extend((inference_job_id(name), retraining_job_id(name)))
            inference_first.append(inference_job_id(name))
        inference_first.extend(retraining_job_id(name) for name in request.streams)
        return AllocationVector.fair(
            job_ids,
            request.total_gpus,
            quantum=quantum,
            remainder_priority=inference_first,
        )

    def schedule(self, request: ScheduleRequest) -> WindowSchedule:
        watch = Stopwatch(self._clock)
        quantum = self._steal_quantum if self._steal_quantum is not None else request.delta
        quantum = min(quantum, request.total_gpus)

        stream_names = list(request.streams)
        job_ids: List[str] = []
        job_stream: Dict[str, str] = {}
        stream_jobs: Dict[str, Tuple[str, str]] = {}
        for name in stream_names:
            inference = inference_job_id(name)
            retraining = retraining_job_id(name)
            job_ids.extend((inference, retraining))
            job_stream[inference] = name
            job_stream[retraining] = name
            stream_jobs[name] = (inference, retraining)

        allocation = self.fair_start(request, quantum)
        tables: Dict[str, CandidateTable] = build_candidate_tables(
            request.streams,
            window_seconds=request.window_seconds,
            a_min=request.a_min,
            quantum=allocation.quantum,
            total_units=allocation.total_units,
            release_retraining_gpu_to_inference=self._release,
        )

        # Committed state: per-stream window accuracy under the best-so-far
        # allocation, and its running sum (the incremental objective).
        num_streams = len(stream_names)
        accuracy_of: Dict[str, float] = {}
        for name in stream_names:
            inference, retraining = stream_jobs[name]
            accuracy_of[name] = tables[name].accuracy_at(
                allocation.units(inference), allocation.units(retraining)
            )
        accuracy_sum = sum(accuracy_of.values())
        best_accuracy = accuracy_sum / num_streams
        iterations = 1

        for _ in range(self._max_rounds):
            improved_in_round = False
            for thief_job in job_ids:
                thief_stream = job_stream[thief_job]
                for victim_job in job_ids:
                    if thief_job == victim_job:
                        continue
                    victim_stream = job_stream[victim_job]
                    thief_inf, thief_ret = stream_jobs[thief_stream]
                    misses = 0
                    pending = 0  # uncommitted quanta moved victim -> thief
                    while True:
                        if not allocation.steal_units(thief_job, victim_job, 1):
                            break
                        pending += 1
                        iterations += 1
                        # A steal perturbs at most these two streams; every
                        # other stream's decision — and its contribution to
                        # the window objective — is unchanged.
                        new_thief = tables[thief_stream].accuracy_at(
                            allocation.units(thief_inf), allocation.units(thief_ret)
                        )
                        new_sum = accuracy_sum - accuracy_of[thief_stream] + new_thief
                        if victim_stream != thief_stream:
                            victim_inf, victim_ret = stream_jobs[victim_stream]
                            new_victim = tables[victim_stream].accuracy_at(
                                allocation.units(victim_inf), allocation.units(victim_ret)
                            )
                            new_sum += new_victim - accuracy_of[victim_stream]
                        accuracy = new_sum / num_streams
                        if accuracy > best_accuracy + _IMPROVEMENT_EPS:
                            accuracy_of[thief_stream] = new_thief
                            if victim_stream != thief_stream:
                                accuracy_of[victim_stream] = new_victim
                            accuracy_sum = new_sum
                            best_accuracy = accuracy
                            pending = 0
                            misses = 0
                            improved_in_round = True
                        else:
                            misses += 1
                            if misses >= self._patience:
                                break
                    if pending:
                        # Abandon the non-improving tail of this trajectory:
                        # the inverse transfer restores the committed lattice
                        # point exactly.
                        allocation.steal_units(victim_job, thief_job, pending)
            if not improved_in_round:
                break

        decisions = {}
        for name in stream_names:
            inference, retraining = stream_jobs[name]
            decisions[name] = tables[name].decision(
                allocation.units(inference), allocation.units(retraining)
            )
        # Report the window objective with the same arithmetic PickConfigs
        # uses (np.mean over the streams), not the incremental running sum,
        # so the number is comparable bit-for-bit across scheduler paths.
        schedule = WindowSchedule(
            window_index=request.window_index,
            decisions=decisions,
            estimated_average_accuracy=safe_mean(
                [d.estimated_average_accuracy for d in decisions.values()]
            ),
            scheduler_runtime_seconds=watch.elapsed(),
            iterations=iterations,
            pick_configs_evaluations=sum(table.evaluations for table in tables.values()),
        )
        schedule.validate_against(request)
        return schedule
