"""The thief resource scheduler (Algorithm 1).

The thief scheduler makes the joint retraining/inference problem tractable by
decoupling resource allocation from configuration selection.  Starting from a
fair allocation, every job in turn plays the "thief": it steals GPU quanta Δ
from each other job as long as doing so improves the estimated inference
accuracy averaged over the retraining window (computed by ``PickConfigs``),
and stops as soon as the accuracy stops improving.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from ..cluster.jobs import inference_job_id, retraining_job_id
from ..cluster.resources import AllocationVector
from ..exceptions import SchedulingError
from .pick_configs import pick_configs
from .types import ScheduleRequest, Scheduler, StreamDecision, WindowSchedule


class ThiefScheduler(Scheduler):
    """Ekya's accuracy-optimising scheduler.

    Parameters
    ----------
    steal_quantum:
        The stealing increment Δ.  Defaults to the request's allocation unit
        δ; Figure 10 studies its sensitivity.
    release_retraining_gpu_to_inference:
        Whether the accuracy estimator assumes the retraining job's GPUs flow
        back to the stream's inference job after the retraining completes
        (Ekya re-invokes the scheduler at that point, so the default is True).
    max_rounds:
        Number of full thief/victim sweeps.  One sweep (the paper's algorithm)
        is almost always sufficient because later thieves see the allocations
        left by earlier ones; additional rounds are supported for ablations.
    patience:
        Number of consecutive non-improving steals tolerated before the thief
        moves on to the next victim.  The paper's Algorithm 1 stops at the
        first non-improving steal (patience = 1); a small look-ahead avoids a
        local minimum where a retraining job needs several quanta before its
        retraining can complete inside the window at all, so nothing improves
        until the allocation crosses that threshold.
    """

    name = "ekya-thief"

    def __init__(
        self,
        *,
        steal_quantum: Optional[float] = None,
        release_retraining_gpu_to_inference: bool = True,
        max_rounds: int = 1,
        patience: int = 4,
    ) -> None:
        if steal_quantum is not None and steal_quantum <= 0:
            raise SchedulingError("steal_quantum must be positive")
        if max_rounds < 1:
            raise SchedulingError("max_rounds must be >= 1")
        if patience < 1:
            raise SchedulingError("patience must be >= 1")
        self._steal_quantum = steal_quantum
        self._release = release_retraining_gpu_to_inference
        self._max_rounds = max_rounds
        self._patience = patience

    # ------------------------------------------------------------- interface
    def schedule(self, request: ScheduleRequest) -> WindowSchedule:
        started = time.perf_counter()
        quantum = self._steal_quantum if self._steal_quantum is not None else request.delta
        quantum = min(quantum, request.total_gpus)

        job_ids = []
        for name in request.streams:
            job_ids.append(inference_job_id(name))
            job_ids.append(retraining_job_id(name))

        cache: Dict[Tuple[str, float, float], StreamDecision] = {}
        best_alloc = AllocationVector.fair(job_ids, request.total_gpus, quantum=quantum)
        best_configs, best_accuracy = self._evaluate(request, best_alloc, cache)
        iterations = 1

        for _ in range(self._max_rounds):
            improved_in_round = False
            for thief_job in job_ids:
                for victim_job in job_ids:
                    if thief_job == victim_job:
                        continue
                    temp_alloc = best_alloc.copy()
                    misses = 0
                    while True:
                        stolen = temp_alloc.steal(thief_job, victim_job, quantum)
                        if not stolen:
                            break
                        temp_configs, accuracy = self._evaluate(request, temp_alloc, cache)
                        iterations += 1
                        if accuracy > best_accuracy + 1e-12:
                            best_alloc = temp_alloc.copy()
                            best_accuracy = accuracy
                            best_configs = temp_configs
                            improved_in_round = True
                            misses = 0
                        else:
                            misses += 1
                            if misses >= self._patience:
                                break
            if not improved_in_round:
                break

        schedule = WindowSchedule(
            window_index=request.window_index,
            decisions=dict(best_configs),
            estimated_average_accuracy=best_accuracy,
            scheduler_runtime_seconds=time.perf_counter() - started,
            iterations=iterations,
        )
        schedule.validate_against(request)
        return schedule

    # -------------------------------------------------------------- internal
    def _evaluate(
        self,
        request: ScheduleRequest,
        allocation: AllocationVector,
        cache: Dict[Tuple[str, float, float], StreamDecision],
    ) -> Tuple[Dict[str, StreamDecision], float]:
        return pick_configs(
            request,
            allocation.as_dict(),
            release_retraining_gpu_to_inference=self._release,
            cache=cache,
        )
