"""Window-average inference-accuracy estimation (EstimateAccuracy).

The paper's target metric is the inference accuracy *averaged over the
retraining window*: while a model is being retrained, its stream is analysed
by the stale model with whatever GPU fraction the inference job kept (possibly
forcing frame subsampling), and once retraining completes the stream enjoys
the retrained model's higher accuracy for the remainder of the window
(§3.2, Figure 4).  ``EstimateAccuracy`` in Algorithm 2 aggregates exactly
those two phases; :func:`estimate_stream_average_accuracy` implements it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..configs.inference import InferenceConfig
from ..exceptions import SchedulingError
from ..utils.math_utils import clamp, time_weighted_average


@dataclass(frozen=True)
class AccuracyEstimate:
    """Breakdown of the estimated accuracy of one stream over one window."""

    average_accuracy: float
    accuracy_during_retraining: float
    accuracy_after_retraining: float
    retraining_duration: float
    retraining_completes: bool
    minimum_instantaneous_accuracy: float

    def meets_minimum(self, a_min: float) -> bool:
        """Whether the instantaneous accuracy never drops below ``a_min``."""
        return self.minimum_instantaneous_accuracy + 1e-9 >= a_min


def estimate_stream_average_accuracy(
    *,
    start_accuracy: float,
    post_retraining_accuracy: Optional[float],
    retraining_gpu_seconds: float,
    inference_config: InferenceConfig,
    inference_gpu: float,
    retraining_gpu: float,
    window_seconds: float,
    release_retraining_gpu_to_inference: bool = True,
    external_retraining_duration: Optional[float] = None,
) -> AccuracyEstimate:
    """Estimate one stream's inference accuracy averaged over the window.

    Parameters mirror the quantities Algorithm 2 works with:

    * ``start_accuracy`` — accuracy of the currently deployed model on this
      window's content (before any retraining).
    * ``post_retraining_accuracy`` — accuracy the retrained model would reach;
      ``None`` means no retraining is scheduled.
    * ``retraining_gpu_seconds`` — the configuration's cost at 100 % GPU.
    * ``inference_gpu`` / ``retraining_gpu`` — the allocations under
      evaluation.
    * ``release_retraining_gpu_to_inference`` — after retraining completes,
      Ekya re-runs its scheduler and the freed GPUs typically flow back to the
      inference jobs; modelling that (the default) matches Figure 4, where the
      post-retraining accuracy is evaluated at the full allocation.
    * ``external_retraining_duration`` — when set, the model update arrives
      after this many wall-clock seconds irrespective of the edge GPU
      allocation (cloud-offloaded retraining over a WAN link).
    """
    if not 0.0 <= start_accuracy <= 1.0:
        raise SchedulingError("start_accuracy must be in [0, 1]")
    if post_retraining_accuracy is not None and not 0.0 <= post_retraining_accuracy <= 1.0:
        raise SchedulingError("post_retraining_accuracy must be in [0, 1]")
    if window_seconds <= 0:
        raise SchedulingError("window_seconds must be positive")
    if inference_gpu < 0 or retraining_gpu < 0:
        raise SchedulingError("allocations must be non-negative")
    if retraining_gpu_seconds < 0:
        raise SchedulingError("retraining_gpu_seconds must be non-negative")

    inference_factor_during = inference_config.effective_accuracy_factor(inference_gpu)
    accuracy_during = clamp(start_accuracy * inference_factor_during)

    external = external_retraining_duration is not None
    no_retraining = post_retraining_accuracy is None or (
        not external and (retraining_gpu <= 0 or retraining_gpu_seconds <= 0)
    )
    if no_retraining:
        # Whole window at the (possibly degraded) stale-model accuracy.
        return AccuracyEstimate(
            average_accuracy=accuracy_during,
            accuracy_during_retraining=accuracy_during,
            accuracy_after_retraining=accuracy_during,
            retraining_duration=0.0,
            retraining_completes=False,
            minimum_instantaneous_accuracy=accuracy_during,
        )

    if external:
        duration = float(external_retraining_duration)
    else:
        duration = retraining_gpu_seconds / retraining_gpu
    if duration >= window_seconds:
        # Retraining does not finish inside the window: the stream pays the
        # degraded inference accuracy the whole time and never reaps the
        # benefit.  Algorithm 2 avoids such configurations.
        return AccuracyEstimate(
            average_accuracy=accuracy_during,
            accuracy_during_retraining=accuracy_during,
            accuracy_after_retraining=accuracy_during,
            retraining_duration=duration,
            retraining_completes=False,
            minimum_instantaneous_accuracy=accuracy_during,
        )

    post_inference_gpu = (
        inference_gpu + retraining_gpu if release_retraining_gpu_to_inference else inference_gpu
    )
    inference_factor_after = inference_config.effective_accuracy_factor(post_inference_gpu)
    accuracy_after = clamp(post_retraining_accuracy * inference_factor_after)

    average = time_weighted_average(
        [
            (duration, accuracy_during),
            (window_seconds - duration, accuracy_after),
        ]
    )
    return AccuracyEstimate(
        average_accuracy=average,
        accuracy_during_retraining=accuracy_during,
        accuracy_after_retraining=accuracy_after,
        retraining_duration=duration,
        retraining_completes=True,
        minimum_instantaneous_accuracy=min(accuracy_during, accuracy_after),
    )


@dataclass(frozen=True)
class BatchAccuracyEstimate:
    """Vectorised :class:`AccuracyEstimate` over many retraining candidates.

    Every array has one entry per candidate configuration.  Candidates whose
    retraining does not finish inside the window (``completes`` False) carry
    the stale-model accuracy, exactly like the scalar estimator.
    """

    average_accuracy: np.ndarray
    completes: np.ndarray
    meets_minimum: np.ndarray
    accuracy_during: float


def estimate_batch_average_accuracy(
    *,
    accuracy_during: float,
    post_retraining_accuracies: np.ndarray,
    retraining_gpu_seconds: np.ndarray,
    inference_factor_after,
    retraining_gpu,
    window_seconds: float,
    a_min: float,
) -> BatchAccuracyEstimate:
    """EstimateAccuracy over a whole grid of retraining candidates at once.

    The arithmetic mirrors :func:`estimate_stream_average_accuracy`
    operation-for-operation (same operand order, same clamps, same epsilons)
    so that a vectorised caller is bit-for-bit equivalent to the scalar
    reference; only the validation is hoisted out of the hot loop.
    ``accuracy_during`` is a scalar because Algorithm 2 fixes the inference
    configuration before scanning retraining candidates;
    ``inference_factor_after`` and ``retraining_gpu`` may be scalars or
    arrays that broadcast against the candidate axis (e.g. a column of
    allocation levels), in which case all outputs carry the broadcast shape.
    """
    retraining_gpu = np.asarray(retraining_gpu, dtype=float)
    if np.any(retraining_gpu <= 0):
        raise SchedulingError("estimate_batch_average_accuracy needs retraining_gpu > 0")
    if window_seconds <= 0:
        raise SchedulingError("window_seconds must be positive")
    post = np.asarray(post_retraining_accuracies, dtype=float)
    gpu_seconds = np.asarray(retraining_gpu_seconds, dtype=float)
    duration = gpu_seconds / retraining_gpu
    completes = (gpu_seconds > 0) & (duration < window_seconds)
    accuracy_after = np.minimum(np.maximum(post * inference_factor_after, 0.0), 1.0)
    weighted = duration * accuracy_during + (window_seconds - duration) * accuracy_after
    total_time = duration + (window_seconds - duration)
    average = np.where(completes, weighted / total_time, accuracy_during)
    minimum = np.minimum(accuracy_during, accuracy_after)
    meets = np.where(completes, minimum + 1e-9 >= a_min, accuracy_during + 1e-9 >= a_min)
    return BatchAccuracyEstimate(
        average_accuracy=average,
        completes=completes,
        meets_minimum=meets,
        accuracy_during=accuracy_during,
    )
