"""Accuracy dynamics of edge models across retraining windows.

The scheduler and the trace-driven simulator need to answer three questions
about every stream in every window:

1. what is the accuracy of the *currently deployed* model on this window's
   live content (data drift has been eroding it since it was last trained),
2. what accuracy would retraining with configuration γ achieve, and
3. how many GPU-seconds would that retraining cost at 100 % allocation?

Two implementations are provided:

* :class:`AnalyticDynamics` — a fast, deterministic model of those quantities
  driven by each stream's drift profile.  This plays the role of the paper's
  trace-driven simulator, which replays logged accuracy/GPU-time profiles
  instead of training real DNNs (§6.1), and is what the large benchmark
  sweeps use.
* :class:`SubstrateDynamics` — actually trains the numpy edge models on the
  synthetic window data (the "testbed" mode).  Slower, used by integration
  tests, the micro-profiler evaluation and the quickstart examples.

Both share the same interface so every scheduler/baseline runs unchanged on
either substrate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..configs.retraining import RetrainingConfig
from ..datasets.stream import VideoStream
from ..exceptions import SimulationError
from ..models.continual import ExemplarReplayLearner
from ..models.edge_model import EdgeModelSpec, create_edge_model, training_gpu_seconds
from ..models.trainer import Trainer
from ..utils.math_utils import clamp
from ..utils.rng import ensure_rng, stable_seed


def config_quality(config: RetrainingConfig) -> float:
    """Relative quality of a retraining configuration in (0, 1].

    Combines diminishing returns in epochs, data fraction, unfrozen layers and
    classifier width.  The most expensive configuration of the default grid
    approaches 1.0; the cheapest lands around 0.2, giving the 10–20 point
    accuracy spread across configurations seen in Figure 3.
    """
    epoch_factor = config.epochs / (config.epochs + 3.0)
    data_factor = config.data_fraction ** 0.25
    layer_factor = 0.7 + 0.3 * np.sqrt(config.layers_trained_fraction)
    width_factor = min(1.0, 0.9 + 0.1 * (config.last_layer_neurons / 64.0))
    return float(epoch_factor * data_factor * layer_factor * width_factor)


@dataclass
class StreamState:
    """Per-stream serving-model state tracked by the dynamics."""

    trained_on_window: Optional[int]
    accuracy_when_trained: float


class StreamDynamics(abc.ABC):
    """Interface between schedulers/simulator and the accuracy substrate."""

    @abc.abstractmethod
    def start_accuracy(self, stream: VideoStream, window_index: int) -> float:
        """Accuracy of the currently deployed model on this window's content."""

    @abc.abstractmethod
    def candidate_post_accuracy(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        """Accuracy the model would reach if retrained on this window with ``config``."""

    @abc.abstractmethod
    def retraining_gpu_seconds(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        """GPU-seconds (at 100 % allocation) to run ``config`` on this window."""

    @abc.abstractmethod
    def commit_window(
        self,
        stream: VideoStream,
        window_index: int,
        config: Optional[RetrainingConfig],
    ) -> None:
        """Advance the stream's serving-model state past ``window_index``.

        ``config`` is the retraining configuration that actually completed in
        this window, or ``None`` if the model was not retrained.
        """

    def reset(self) -> None:  # pragma: no cover - overridden where stateful
        """Forget all per-stream state (used between independent experiments)."""

    def invalidate_stream(self, stream_name: str) -> None:
        """Drop one stream's serving-model state: it restarts *cold*.

        The fleet calls this when a migrated stream's checkpoint transfer
        exhausts its WAN retry budget (see
        :class:`~repro.fleet.faults.WanFaultModel`): the destination never
        received the model, so the stream re-enters as if freshly deployed
        — its accumulated retraining benefit is lost.  A stream with no
        tracked state is a no-op.
        """


class AnalyticDynamics(StreamDynamics):
    """Deterministic drift-driven accuracy model (the simulator's 'trace')."""

    def __init__(
        self,
        *,
        drift_sensitivity: float = 0.16,
        accuracy_floor: float = 0.25,
        ceiling_base: float = 0.92,
        ceiling_spread: float = 0.05,
        initial_staleness_windows: int = 3,
        seed: int = 0,
    ) -> None:
        if drift_sensitivity < 0:
            raise SimulationError("drift_sensitivity must be non-negative")
        if not 0.0 <= accuracy_floor < ceiling_base <= 1.0:
            raise SimulationError("need 0 <= accuracy_floor < ceiling_base <= 1")
        self._drift_sensitivity = drift_sensitivity
        self._accuracy_floor = accuracy_floor
        self._ceiling_base = ceiling_base
        self._ceiling_spread = ceiling_spread
        self._initial_staleness = initial_staleness_windows
        self._seed = seed
        self._states: Dict[str, StreamState] = {}

    # ------------------------------------------------------------ internals
    def _ceiling(self, stream: VideoStream, window_index: int) -> float:
        """Best accuracy any retraining can reach on this window's content."""
        rng = ensure_rng(stable_seed("ceiling", stream.name, window_index, base=self._seed))
        wobble = rng.uniform(-self._ceiling_spread, self._ceiling_spread)
        golden_noise = stream.golden_model.error_rate
        return clamp(self._ceiling_base + wobble - golden_noise, 0.3, 0.99)

    def _state(self, stream: VideoStream) -> StreamState:
        state = self._states.get(stream.name)
        if state is None:
            # The deployed model was trained before the experiment started
            # (window -initial_staleness), so it begins already somewhat stale.
            rng = ensure_rng(stable_seed("initial", stream.name, base=self._seed))
            initial_accuracy = clamp(
                self._ceiling(stream, 0) - rng.uniform(0.02, 0.10), self._accuracy_floor, 1.0
            )
            state = StreamState(
                trained_on_window=-self._initial_staleness,
                accuracy_when_trained=initial_accuracy,
            )
            self._states[stream.name] = state
        return state

    def _decay(self, stream: VideoStream, trained_on: int, current: int, accuracy: float) -> float:
        if current <= trained_on:
            return accuracy
        reference = max(trained_on, 0)
        # Models deployed before the experiment started (trained_on < 0) carry
        # a fixed extra staleness for the unobserved pre-experiment drift.
        pre_experiment_drift = 0.1 * max(0, -trained_on)
        drift = stream.drift_magnitude(reference, current) + pre_experiment_drift
        decayed = accuracy - self._drift_sensitivity * drift
        return clamp(decayed, self._accuracy_floor, 1.0)

    # ------------------------------------------------------------- interface
    def start_accuracy(self, stream: VideoStream, window_index: int) -> float:
        state = self._state(stream)
        return self._decay(
            stream, state.trained_on_window if state.trained_on_window is not None else 0,
            window_index, state.accuracy_when_trained,
        )

    def candidate_post_accuracy(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        ceiling = self._ceiling(stream, window_index)
        quality = config_quality(config)
        accuracy = ceiling * (0.70 + 0.30 * quality)
        # Retraining warm-starts from the currently deployed weights, so even a
        # cheap configuration rarely ends up much worse than the serving model
        # already is on this window's content.
        warm_start_floor = self.start_accuracy(stream, window_index) - 0.02
        accuracy = max(accuracy, warm_start_floor)
        return clamp(accuracy, self._accuracy_floor, ceiling)

    def retraining_gpu_seconds(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        return training_gpu_seconds(stream.samples_per_window, config)

    def accuracy_of_model_trained_at(
        self,
        stream: VideoStream,
        trained_window: int,
        eval_window: int,
        config: RetrainingConfig,
    ) -> float:
        """Accuracy at ``eval_window`` of a model last trained at ``trained_window``.

        Used by the cached-model-reuse baseline (§6.5): a cached model keeps
        the accuracy it reached when it was trained, eroded by the appearance
        drift between its training window and the window it is reused on.
        """
        accuracy = self.candidate_post_accuracy(stream, trained_window, config)
        return self._decay(stream, trained_window, eval_window, accuracy)

    def commit_window(
        self,
        stream: VideoStream,
        window_index: int,
        config: Optional[RetrainingConfig],
    ) -> None:
        state = self._state(stream)
        if config is not None:
            state.trained_on_window = window_index
            state.accuracy_when_trained = self.candidate_post_accuracy(stream, window_index, config)

    def reset(self) -> None:
        self._states.clear()

    def invalidate_stream(self, stream_name: str) -> None:
        # The next query re-initialises the state at pre-deployment
        # staleness (trained before the experiment started), which is
        # exactly what "the checkpoint never arrived" means here.
        self._states.pop(stream_name, None)


class SubstrateDynamics(StreamDynamics):
    """Accuracy dynamics measured by actually training the numpy edge models."""

    def __init__(
        self,
        *,
        exemplars_per_class: int = 40,
        hidden_width: int = 32,
        seed: int = 0,
    ) -> None:
        self._hidden_width = hidden_width
        self._exemplars_per_class = exemplars_per_class
        self._seed = seed
        self._learners: Dict[str, ExemplarReplayLearner] = {}
        self._trainer = Trainer(seed=seed)
        self._candidate_cache: Dict[Tuple[str, int, Tuple], Tuple[float, ExemplarReplayLearner]] = {}

    # ------------------------------------------------------------ internals
    def _learner(self, stream: VideoStream) -> ExemplarReplayLearner:
        learner = self._learners.get(stream.name)
        if learner is None:
            spec = EdgeModelSpec(
                feature_dim=stream.feature_dim,
                num_classes=stream.taxonomy.num_classes,
                hidden_width=self._hidden_width,
            )
            model_seed = stable_seed("model", stream.name, base=self._seed)
            model = create_edge_model(spec, seed=model_seed)
            learner = ExemplarReplayLearner(
                model,
                exemplars_per_class=self._exemplars_per_class,
                seed=model_seed,
            )
            # Warm-start the model on window 0 with a modest configuration so
            # it does not begin from random weights (the paper's edge models
            # were trained on representative data before deployment).
            learner.retrain(stream.window(0), RetrainingConfig(epochs=10))
            self._learners[stream.name] = learner
        return learner

    def _train_candidate(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> Tuple[float, ExemplarReplayLearner]:
        key = (stream.name, window_index, config.key())
        cached = self._candidate_cache.get(key)
        if cached is not None:
            return cached
        base = self._learner(stream)
        clone = ExemplarReplayLearner(
            base.model.clone(),
            exemplars_per_class=self._exemplars_per_class,
            replay_weight=base.replay_weight,
            seed=stable_seed("candidate", stream.name, window_index, base=self._seed),
        )
        clone.exemplars.features_by_class = {
            cls: feats.copy() for cls, feats in base.exemplars.features_by_class.items()
        }
        window = stream.window(window_index)
        clone.retrain(window, config)
        accuracy = clone.evaluate(window)
        result = (accuracy, clone)
        self._candidate_cache[key] = result
        return result

    # ------------------------------------------------------------- interface
    def start_accuracy(self, stream: VideoStream, window_index: int) -> float:
        learner = self._learner(stream)
        return learner.evaluate(stream.window(window_index))

    def candidate_post_accuracy(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        accuracy, _ = self._train_candidate(stream, window_index, config)
        return accuracy

    def retraining_gpu_seconds(
        self, stream: VideoStream, window_index: int, config: RetrainingConfig
    ) -> float:
        return training_gpu_seconds(stream.window(window_index).num_train_samples, config)

    def commit_window(
        self,
        stream: VideoStream,
        window_index: int,
        config: Optional[RetrainingConfig],
    ) -> None:
        if config is None:
            return
        _, trained = self._train_candidate(stream, window_index, config)
        self._learners[stream.name] = trained
        # Candidate clones for this window are now stale.
        self._candidate_cache = {
            key: value for key, value in self._candidate_cache.items() if key[0] != stream.name
        }

    def reset(self) -> None:
        self._learners.clear()
        self._candidate_cache.clear()

    def invalidate_stream(self, stream_name: str) -> None:
        # Dropping the learner makes the next query warm-start a fresh
        # model (the pre-deployment baseline); cached candidates trained
        # from the lost weights are stale with it.
        self._learners.pop(stream_name, None)
        self._candidate_cache = {
            key: value
            for key, value in self._candidate_cache.items()
            if key[0] != stream_name
        }
