"""The paper's Table 1 illustrative example as ready-made profiles.

Section 3.2 walks through a 3-GPU, 2-stream example with four named
retraining configurations whose post-retraining accuracies and GPU costs are
given in Table 1.  The uniform scheduler lands at 56 % average inference
accuracy while the accuracy-optimised scheduler reaches 73 %.  These profiles
let the Figure 4 benchmark and the scheduler unit tests replay that exact
scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..configs.inference import InferenceConfig
from ..configs.retraining import named_table1_configs
from .profile import RetrainingEstimate, StreamWindowProfile

#: Starting inference accuracies at the beginning of window 1 (§3.2).
TABLE1_START_ACCURACY = {"video_A": 0.65, "video_B": 0.50}

#: The minimum instantaneous inference accuracy used in the example.
TABLE1_A_MIN = 0.40

#: Window duration of the example (seconds).
TABLE1_WINDOW_SECONDS = 120.0

#: Number of GPUs in the example.
TABLE1_NUM_GPUS = 3

#: (end accuracy, GPU seconds) per configuration per retraining window.
_TABLE1_ROWS: Dict[str, Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]]] = {
    "video_A": {
        "Cfg1A": ((0.75, 85.0), (0.95, 90.0)),
        "Cfg2A": ((0.70, 65.0), (0.90, 40.0)),
    },
    "video_B": {
        "Cfg1B": ((0.90, 80.0), (0.98, 80.0)),
        "Cfg2B": ((0.85, 50.0), (0.90, 70.0)),
    },
}


@dataclass(frozen=True)
class Table1Scenario:
    """Everything needed to replay the §3.2 example for one retraining window."""

    window_index: int
    profiles: Dict[str, StreamWindowProfile]
    inference_config: InferenceConfig
    num_gpus: int = TABLE1_NUM_GPUS
    window_seconds: float = TABLE1_WINDOW_SECONDS
    a_min: float = TABLE1_A_MIN

    @property
    def stream_names(self) -> List[str]:
        return sorted(self.profiles.keys())


def table1_inference_config() -> InferenceConfig:
    """The (single) inference configuration of the example.

    The example's inference jobs need 1 GPU to analyse every frame; with less
    they subsample frames and accuracy drops proportionally (Figure 4c shows
    65 % → 49 % when the allocation halves), which the
    :class:`InferenceConfig` degradation model reproduces.
    """
    return InferenceConfig(frame_sampling_rate=1.0, resolution_scale=1.0, gpu_demand=1.0, name="table1")


def table1_start_accuracies(window_index: int, *, previous_end: Dict[str, float] | None = None) -> Dict[str, float]:
    """Starting accuracies for the given window (window 2 starts where 1 ended)."""
    if window_index == 0 or previous_end is None:
        return dict(TABLE1_START_ACCURACY)
    return dict(previous_end)


def table1_scenario(window_index: int, *, start_accuracies: Dict[str, float] | None = None) -> Table1Scenario:
    """Build the profiles for retraining window ``window_index`` (0 or 1)."""
    if window_index not in (0, 1):
        raise ValueError("the Table 1 example has exactly two retraining windows (0 and 1)")
    configs = named_table1_configs()
    starts = table1_start_accuracies(window_index, previous_end=start_accuracies)
    profiles: Dict[str, StreamWindowProfile] = {}
    for stream_name, rows in _TABLE1_ROWS.items():
        profile = StreamWindowProfile(
            stream_name=stream_name,
            window_index=window_index,
            start_accuracy=starts[stream_name],
        )
        for config_name, per_window in rows.items():
            accuracy, gpu_seconds = per_window[window_index]
            profile.add(
                RetrainingEstimate(
                    config=configs[config_name],
                    post_retraining_accuracy=accuracy,
                    gpu_seconds=gpu_seconds,
                )
            )
        profiles[stream_name] = profile
    return Table1Scenario(
        window_index=window_index,
        profiles=profiles,
        inference_config=table1_inference_config(),
    )
