"""Resource–accuracy profiles, accuracy dynamics and profile storage."""

from .dynamics import (
    AnalyticDynamics,
    StreamDynamics,
    StreamState,
    SubstrateDynamics,
    config_quality,
)
from .fleet_store import FleetProfileStore, regime_key, stream_profile_key
from .profile import RetrainingEstimate, StreamWindowProfile, merge_profiles
from .store import ProfileStore
from .table1 import (
    TABLE1_A_MIN,
    TABLE1_NUM_GPUS,
    TABLE1_START_ACCURACY,
    TABLE1_WINDOW_SECONDS,
    Table1Scenario,
    table1_inference_config,
    table1_scenario,
    table1_start_accuracies,
)

__all__ = [
    "AnalyticDynamics",
    "StreamDynamics",
    "StreamState",
    "SubstrateDynamics",
    "config_quality",
    "RetrainingEstimate",
    "StreamWindowProfile",
    "merge_profiles",
    "ProfileStore",
    "FleetProfileStore",
    "regime_key",
    "stream_profile_key",
    "TABLE1_A_MIN",
    "TABLE1_NUM_GPUS",
    "TABLE1_START_ACCURACY",
    "TABLE1_WINDOW_SECONDS",
    "Table1Scenario",
    "table1_inference_config",
    "table1_scenario",
    "table1_start_accuracies",
]
