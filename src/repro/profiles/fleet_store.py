"""Fleet-wide profile sharing across edge sites.

The paper's micro-profiler (§4.3) pays its profiling cost per (stream,
window) at every site independently, yet streams of the same dataset under
the same drift regime have near-identical resource–accuracy curves.  The
:class:`FleetProfileStore` exploits that: sites push their micro-profiled
:class:`~repro.profiles.profile.StreamWindowProfile` s — keyed by
``(dataset, drift-regime)`` — into one fleet-wide store, and new or migrated
streams warm-start from the aggregated curves instead of profiling the full
configuration grid.

The store itself is deliberately transport-agnostic: in the fleet simulation
a push rides the event calendar as a
:class:`~repro.fleet.calendar.ProfilePush` event whose arrival time pays the
source site's WAN uplink, so a WAN-degraded site contributes *stale* curves
— the store only ever reflects what has actually arrived.

Aggregation is ``history_for``-shaped on purpose: ``curves_for`` returns the
same ``config -> (mean gpu_seconds, mean accuracy)`` mapping that
:meth:`~repro.profiles.store.ProfileStore.history_for` produces locally, so
:meth:`~repro.configs.space.ConfigurationSpace.pruned` consumes either
signal unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..configs.retraining import RetrainingConfig
from ..exceptions import ProfilingError
from ..datasets.drift import DriftProfile
from ..datasets.stream import VideoStream
from ..utils.serialization import to_jsonable
from .profile import StreamWindowProfile

#: A fleet-store key: ``(dataset, drift-regime)``.
ProfileKey = Tuple[str, str]


def regime_key(profile: DriftProfile) -> str:
    """Canonical string identifying a drift regime.

    Two streams share a regime when their :class:`DriftProfile` s are equal;
    the string form keeps the key JSON-serialisable.
    """
    return (
        f"dist={profile.distribution_volatility:g}"
        f"/app={profile.appearance_volatility:g}"
        f"/period={profile.regime_period}"
        f"/drop={profile.dropout_probability:g}"
        f"/diurnal={int(profile.diurnal)}"
    )


def stream_profile_key(stream: VideoStream) -> ProfileKey:
    """The fleet-store key of one stream.

    Streams are named ``{dataset}-{index}`` by the workload generators; the
    dataset half of the key strips the per-stream index when present and
    falls back to the full name otherwise.
    """
    dataset, _, suffix = stream.name.rpartition("-")
    if not dataset or not suffix.isdigit():
        dataset = stream.name
    return (dataset, regime_key(stream.drift_profile))


class FleetProfileStore:
    """Aggregated resource–accuracy curves shared across a fleet.

    Each key accumulates, per retraining configuration, the running sum of
    observed ``(gpu_seconds, post_retraining_accuracy)`` over every pushed
    profile — the fleet-wide analogue of
    :meth:`~repro.profiles.store.ProfileStore.history_for`.

    ``decay_half_life`` (seconds) ages old pushes out: each push decays the
    key's existing weighted sums by ``0.5 ** (elapsed / half_life)`` —
    elapsed being the arrival-time gap to the key's previous push — before
    merging at weight 1.0, so curves profiled under an old drift regime stop
    dominating the mean once the regime has moved on.  The decayed *count*
    keeps ``curves_for`` an exact weighted mean.  ``None`` (the default)
    never decays: every push keeps weight 1.0 forever, which is the
    pre-decay behaviour and serialisation bit for bit.
    """

    def __init__(self, *, decay_half_life: Optional[float] = None) -> None:
        if decay_half_life is not None and decay_half_life <= 0:
            raise ProfilingError("decay_half_life must be positive (or None)")
        self._decay_half_life = decay_half_life
        self._sums: Dict[ProfileKey, Dict[RetrainingConfig, List[float]]] = {}
        self._pushes: Dict[ProfileKey, int] = {}
        #: Arrival time of each key's latest push (tracked only with decay).
        self._last_push_at: Dict[ProfileKey, float] = {}

    @property
    def decay_half_life(self) -> Optional[float]:
        return self._decay_half_life

    # ------------------------------------------------------------------ push
    def push(
        self, key: ProfileKey, profile: StreamWindowProfile, *, at_seconds: float = 0.0
    ) -> None:
        """Merge one site's profiled window into the key's aggregate curves.

        ``at_seconds`` is the push's arrival time on the fleet's simulated
        clock (the :class:`~repro.fleet.calendar.ProfilePush` event time);
        it only matters when the store was built with a ``decay_half_life``.
        Out-of-order arrivals never *inflate* old curves: elapsed time is
        clamped at zero, so a late-arriving push decays nothing.
        """
        curves = self._sums.setdefault(key, {})
        if self._decay_half_life is not None:
            last = self._last_push_at.get(key)
            if last is not None:
                elapsed = max(0.0, at_seconds - last)
                if elapsed > 0.0:
                    factor = 0.5 ** (elapsed / self._decay_half_life)
                    for bucket in curves.values():
                        bucket[0] *= factor
                        bucket[1] *= factor
                        bucket[2] *= factor
            self._last_push_at[key] = max(at_seconds, last) if last is not None else at_seconds
        for config, estimate in profile.estimates.items():
            bucket = curves.setdefault(config, [0.0, 0.0, 0.0])
            bucket[0] += estimate.gpu_seconds
            bucket[1] += estimate.post_retraining_accuracy
            bucket[2] += 1.0
        self._pushes[key] = self._pushes.get(key, 0) + 1

    # --------------------------------------------------------------- queries
    def curves_for(self, key: ProfileKey) -> Dict[RetrainingConfig, Tuple[float, float]]:
        """Mean ``(gpu_seconds, accuracy)`` per configuration for one key.

        Shaped exactly like ``ProfileStore.history_for`` so it can seed
        :meth:`~repro.configs.space.ConfigurationSpace.pruned` directly;
        empty when nothing has arrived for the key yet.
        """
        curves = self._sums.get(key)
        if not curves:
            return {}
        return {
            config: (cost / count, accuracy / count)
            for config, (cost, accuracy, count) in curves.items()
            if count > 0
        }

    def best_candidate(self, key: ProfileKey) -> Optional[Tuple[RetrainingConfig, float, float]]:
        """The key's best mean-accuracy configuration as ``(config, cost, acc)``.

        Ties break toward the cheaper configuration, then the configuration
        key, so the answer is deterministic.  ``None`` when the key is
        unknown — callers fall back to their cold-start behaviour.
        """
        curves = self.curves_for(key)
        if not curves:
            return None
        config = min(curves, key=lambda cfg: (-curves[cfg][1], curves[cfg][0], cfg.key()))
        cost, accuracy = curves[config]
        return (config, cost, accuracy)

    def pushes_for(self, key: ProfileKey) -> int:
        return self._pushes.get(key, 0)

    def last_push_at(self, key: ProfileKey) -> Optional[float]:
        """Arrival time of the key's latest push on the fleet clock.

        ``None`` before any push — and always ``None`` on stores built
        without a ``decay_half_life``, which never track arrival times.
        The predictive control policy reads this as a staleness signal:
        the older a key's curves, the less its predicted accuracy gain is
        trusted.
        """
        return self._last_push_at.get(key)

    @property
    def num_pushes(self) -> int:
        return sum(self._pushes.values())

    def keys(self) -> List[ProfileKey]:
        return sorted(self._sums)

    def __contains__(self, key: ProfileKey) -> bool:
        return key in self._sums

    def __len__(self) -> int:
        return len(self._sums)

    # --------------------------------------------------------------- export
    def as_dict(self) -> Dict:
        payload = {}
        # Decaying stores persist their half-life under a reserved key so a
        # plain round-trip keeps decaying; default stores omit it and the
        # payload stays byte-identical to the pre-decay format.
        if self._decay_half_life is not None:
            payload["_meta"] = {"decay_half_life": self._decay_half_life}
        for key in self.keys():
            dataset, regime = key
            entry = {
                "dataset": dataset,
                "regime": regime,
                "pushes": self._pushes.get(key, 0),
                "curves": [
                    {
                        "config": config.as_dict(),
                        "gpu_seconds_sum": sums[0],
                        "accuracy_sum": sums[1],
                        "count": sums[2],
                    }
                    for config, sums in self._sums[key].items()
                ],
            }
            # Only decaying stores track arrival times; omitting the field
            # otherwise keeps the pre-decay payload shape byte-identical.
            if key in self._last_push_at:
                entry["last_push_at"] = self._last_push_at[key]
            payload[f"{dataset}|{regime}"] = entry
        return to_jsonable(payload)

    @classmethod
    def from_dict(
        cls, payload: Dict, *, decay_half_life: Optional[float] = None
    ) -> "FleetProfileStore":
        """Rebuild a store from :meth:`as_dict` output.

        The half-life round-trips through the payload's ``_meta`` entry; an
        explicit ``decay_half_life`` argument overrides it (e.g. to start
        decaying a store that was recorded without decay).
        """
        meta = payload.get("_meta", {})
        if decay_half_life is None:
            decay_half_life = meta.get("decay_half_life")
        store = cls(decay_half_life=decay_half_life)
        for name, entry in payload.items():
            if name == "_meta":
                continue
            key = (entry["dataset"], entry["regime"])
            store._pushes[key] = int(entry["pushes"])
            if "last_push_at" in entry:
                store._last_push_at[key] = float(entry["last_push_at"])
            curves = store._sums.setdefault(key, {})
            for item in entry["curves"]:
                curves[RetrainingConfig.from_dict(item["config"])] = [
                    float(item["gpu_seconds_sum"]),
                    float(item["accuracy_sum"]),
                    float(item["count"]),
                ]
        return store
