"""Resource–accuracy profiles consumed by the scheduler.

For every stream and retraining window the thief scheduler needs, per
retraining configuration, (a) the estimated accuracy after retraining with it
and (b) its GPU-time cost at 100 % allocation (§4.2–4.3).  Those estimates —
whether produced by the micro-profiler, measured exhaustively, or generated
analytically for the trace-driven simulator — are carried by
:class:`RetrainingEstimate` and grouped per (stream, window) in
:class:`StreamWindowProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..configs.retraining import RetrainingConfig
from ..exceptions import ProfilingError
from ..utils.curves import SaturatingCurve
from ..utils.math_utils import pareto_frontier


@dataclass(frozen=True)
class RetrainingEstimate:
    """Estimated outcome of one retraining configuration for one window.

    Attributes
    ----------
    config:
        The retraining configuration the estimate refers to.
    post_retraining_accuracy:
        Model accuracy on the window's content once retraining completes
        (before any inference-configuration degradation is applied).
    gpu_seconds:
        GPU-time to run the configuration at 100 % GPU allocation.
    curve:
        Optional accuracy-vs-epoch curve the estimate was extrapolated from
        (kept for diagnostics and for mid-window re-estimation).
    profiling_gpu_seconds:
        GPU-time spent producing this estimate (micro-profiling overhead).
    """

    config: RetrainingConfig
    post_retraining_accuracy: float
    gpu_seconds: float
    curve: Optional[SaturatingCurve] = None
    profiling_gpu_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.post_retraining_accuracy <= 1.0:
            raise ProfilingError("post_retraining_accuracy must be in [0, 1]")
        if self.gpu_seconds < 0 or self.profiling_gpu_seconds < 0:
            raise ProfilingError("GPU-second costs must be non-negative")

    def retraining_duration(self, gpu_allocation: float) -> float:
        """Wall-clock seconds to retrain when given ``gpu_allocation`` GPUs."""
        if gpu_allocation < 0:
            raise ProfilingError("gpu_allocation must be non-negative")
        if self.gpu_seconds == 0:
            return 0.0
        if gpu_allocation == 0:
            return float("inf")
        return self.gpu_seconds / gpu_allocation


@dataclass
class StreamWindowProfile:
    """All per-configuration estimates for one stream in one window."""

    stream_name: str
    window_index: int
    start_accuracy: float
    estimates: Dict[RetrainingConfig, RetrainingEstimate] = field(default_factory=dict)
    profiling_gpu_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.window_index < 0:
            raise ProfilingError("window_index must be non-negative")
        if not 0.0 <= self.start_accuracy <= 1.0:
            raise ProfilingError("start_accuracy must be in [0, 1]")

    # ------------------------------------------------------------- accessors
    @property
    def configs(self) -> List[RetrainingConfig]:
        return list(self.estimates.keys())

    def estimate_for(self, config: RetrainingConfig) -> RetrainingEstimate:
        try:
            return self.estimates[config]
        except KeyError as exc:
            raise ProfilingError(
                f"no estimate for configuration {config!r} of stream {self.stream_name!r}"
            ) from exc

    def add(self, estimate: RetrainingEstimate) -> None:
        self.estimates[estimate.config] = estimate
        self.profiling_gpu_seconds += estimate.profiling_gpu_seconds

    # ------------------------------------------------------------- analytics
    def best_accuracy(self) -> float:
        """The highest post-retraining accuracy across configurations."""
        if not self.estimates:
            return self.start_accuracy
        return max(est.post_retraining_accuracy for est in self.estimates.values())

    def max_accuracy_gain(self) -> float:
        """How much this stream can gain from retraining in this window."""
        return max(0.0, self.best_accuracy() - self.start_accuracy)

    def resource_accuracy_points(self) -> List[Tuple[float, float]]:
        """(gpu_seconds, accuracy) pairs for all configurations (Figure 3b)."""
        return [
            (est.gpu_seconds, est.post_retraining_accuracy) for est in self.estimates.values()
        ]

    def pareto_configs(self) -> List[RetrainingConfig]:
        """Configurations on the cost/accuracy Pareto frontier."""
        configs = self.configs
        points = self.resource_accuracy_points()
        return [configs[i] for i in pareto_frontier(points)]

    def observed_cost_accuracy(self) -> Dict[RetrainingConfig, Tuple[float, float]]:
        """Mapping used by :meth:`ConfigurationSpace.pruned`."""
        return {
            config: (est.gpu_seconds, est.post_retraining_accuracy)
            for config, est in self.estimates.items()
        }

    def with_noise(self, errors: Dict[RetrainingConfig, float]) -> "StreamWindowProfile":
        """Copy of this profile with per-config additive accuracy errors.

        Used by the Figure 11b robustness experiment, which injects controlled
        Gaussian error into the micro-profiler's predictions.
        """
        noisy = StreamWindowProfile(
            stream_name=self.stream_name,
            window_index=self.window_index,
            start_accuracy=self.start_accuracy,
            profiling_gpu_seconds=self.profiling_gpu_seconds,
        )
        for config, estimate in self.estimates.items():
            error = errors.get(config, 0.0)
            accuracy = min(1.0, max(0.0, estimate.post_retraining_accuracy + error))
            noisy.estimates[config] = RetrainingEstimate(
                config=config,
                post_retraining_accuracy=accuracy,
                gpu_seconds=estimate.gpu_seconds,
                curve=estimate.curve,
                profiling_gpu_seconds=estimate.profiling_gpu_seconds,
            )
        return noisy


def merge_profiles(profiles: Iterable[StreamWindowProfile]) -> Dict[str, StreamWindowProfile]:
    """Index a collection of profiles by stream name (one window at a time)."""
    merged: Dict[str, StreamWindowProfile] = {}
    for profile in profiles:
        if profile.stream_name in merged:
            raise ProfilingError(f"duplicate profile for stream {profile.stream_name!r}")
        merged[profile.stream_name] = profile
    return merged
