"""Profile storage across streams and windows.

The micro-profiler prunes configurations "that have historically not been
useful" (§4.3), which requires remembering past windows' resource–accuracy
observations.  :class:`ProfileStore` keeps every
:class:`~repro.profiles.profile.StreamWindowProfile` produced so far, exposes
the aggregated history needed for pruning, and can be serialised so that
testbed-logged profiles can be replayed by the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..configs.retraining import RetrainingConfig
from ..exceptions import ProfilingError
from ..utils.serialization import to_jsonable
from .profile import RetrainingEstimate, StreamWindowProfile


class ProfileStore:
    """In-memory store of per-(stream, window) retraining profiles."""

    def __init__(self) -> None:
        self._profiles: Dict[Tuple[str, int], StreamWindowProfile] = {}
        #: Per-stream index over the same profiles.  ``history_for`` is
        #: called once per stream per window, so scanning the whole store
        #: there is quadratic in windows for long runs; the index makes it
        #: O(own windows) instead.
        self._by_stream: Dict[str, Dict[int, StreamWindowProfile]] = {}

    # ------------------------------------------------------------------ CRUD
    def put(self, profile: StreamWindowProfile) -> None:
        self._profiles[(profile.stream_name, profile.window_index)] = profile
        self._by_stream.setdefault(profile.stream_name, {})[profile.window_index] = profile

    def get(self, stream_name: str, window_index: int) -> StreamWindowProfile:
        try:
            return self._profiles[(stream_name, window_index)]
        except KeyError as exc:
            raise ProfilingError(
                f"no profile stored for stream {stream_name!r}, window {window_index}"
            ) from exc

    def maybe_get(self, stream_name: str, window_index: int) -> Optional[StreamWindowProfile]:
        return self._profiles.get((stream_name, window_index))

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    # --------------------------------------------------------------- history
    def windows_for(self, stream_name: str) -> List[int]:
        return sorted(self._by_stream.get(stream_name, ()))

    def history_for(
        self, stream_name: str, *, up_to_window: Optional[int] = None
    ) -> Dict[RetrainingConfig, Tuple[float, float]]:
        """Mean (gpu_seconds, accuracy) per configuration over past windows.

        This is the signal used to prune configurations far from the Pareto
        frontier before micro-profiling the next window.  Served from the
        per-stream index, so the cost is bounded by the stream's own window
        count rather than the whole store.
        """
        sums: Dict[RetrainingConfig, List[float]] = {}
        for window_index, profile in self._by_stream.get(stream_name, {}).items():
            if up_to_window is not None and window_index >= up_to_window:
                continue
            for config, estimate in profile.estimates.items():
                bucket = sums.setdefault(config, [0.0, 0.0, 0.0])
                bucket[0] += estimate.gpu_seconds
                bucket[1] += estimate.post_retraining_accuracy
                bucket[2] += 1.0
        return {
            config: (cost / count, accuracy / count)
            for config, (cost, accuracy, count) in sums.items()
            if count > 0
        }

    def class_distribution_index(self) -> Dict[Tuple[str, int], StreamWindowProfile]:
        """All stored profiles (used by the cached-model-reuse baseline)."""
        return dict(self._profiles)

    # --------------------------------------------------------------- export
    def as_dict(self) -> Dict:
        payload = {}
        for (stream_name, window_index), profile in self._profiles.items():
            payload[f"{stream_name}@{window_index}"] = {
                "stream_name": stream_name,
                "window_index": window_index,
                "start_accuracy": profile.start_accuracy,
                "estimates": [
                    {
                        "config": estimate.config.as_dict(),
                        "post_retraining_accuracy": estimate.post_retraining_accuracy,
                        "gpu_seconds": estimate.gpu_seconds,
                        "profiling_gpu_seconds": estimate.profiling_gpu_seconds,
                    }
                    for estimate in profile.estimates.values()
                ],
            }
        return to_jsonable(payload)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ProfileStore":
        store = cls()
        for entry in payload.values():
            profile = StreamWindowProfile(
                stream_name=entry["stream_name"],
                window_index=int(entry["window_index"]),
                start_accuracy=float(entry["start_accuracy"]),
            )
            for est in entry["estimates"]:
                profile.add(
                    RetrainingEstimate(
                        config=RetrainingConfig.from_dict(est["config"]),
                        post_retraining_accuracy=float(est["post_retraining_accuracy"]),
                        gpu_seconds=float(est["gpu_seconds"]),
                        profiling_gpu_seconds=float(est.get("profiling_gpu_seconds", 0.0)),
                    )
                )
            store.put(profile)
        return store
