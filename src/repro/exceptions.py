"""Exception hierarchy for the Ekya reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class when interacting with the public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A retraining or inference configuration is invalid or inconsistent."""


class AllocationError(ReproError):
    """A GPU allocation request violates capacity or granularity constraints."""


class PlacementError(ReproError):
    """Jobs could not be packed onto the available GPUs."""


class SchedulingError(ReproError):
    """The scheduler was asked to operate on an inconsistent problem instance."""


class ProfilingError(ReproError):
    """Micro-profiling failed, e.g. not enough observations to fit a curve."""


class DatasetError(ReproError):
    """A synthetic workload generator was configured inconsistently."""


class ModelError(ReproError):
    """The training substrate was used incorrectly (shape mismatch, not fitted...)."""


class SimulationError(ReproError):
    """The trace-driven simulator hit an inconsistent state."""


class CheckpointError(ReproError):
    """Saving or restoring a model checkpoint failed."""


class FleetError(ReproError):
    """The fleet orchestration layer hit an inconsistent state (e.g. a stream
    admitted to an unknown site, or no healthy site left to evacuate to)."""


class AnalysisError(ReproError):
    """The determinism analyzer could not complete a pass (unparseable
    source, a missing cross-check target such as ``docs/events.md``...)."""


class PurityViolationError(AnalysisError):
    """The plan-phase purity sanitizer observed a mutation: state that
    existed before a ``plan_window`` / control-policy scan was modified or
    deleted by it.  Plan phases must only *read* engine state (lazy
    memoisation — new cache entries — is allowed); committing belongs to the
    settle phase."""
