"""Trace-driven simulator of joint retraining and inference.

The simulator plays the role of the paper's trace-driven simulator (§6.1): it
executes a :class:`~repro.core.policy.WindowPolicy` window by window against
an accuracy-dynamics substrate, computes every stream's *realised* inference
accuracy over each window (stale model while retraining, retrained model
afterwards, degraded by the chosen inference configuration and allocation),
advances the per-stream model state, and aggregates the metric the paper
optimises — inference accuracy averaged over retraining windows and streams.

Importantly, the realised accuracy uses the dynamics' true values, not the
profiler's estimates, so estimation error shows up as mis-scheduling (exactly
how it hurts the real system), not as mis-measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..cluster.edge_server import EdgeServer
from ..cluster.placement import place_jobs
from ..core.estimator import AccuracyEstimate, estimate_stream_average_accuracy
from ..core.policy import WindowPolicy
from ..core.types import ScheduleRequest, StreamDecision, WindowSchedule
from ..datasets.stream import VideoStream
from ..exceptions import SimulationError
from ..profiles.dynamics import StreamDynamics
from ..utils.math_utils import safe_mean


@dataclass
class StreamWindowOutcome:
    """Realised result for one stream in one retraining window."""

    stream_name: str
    window_index: int
    decision: StreamDecision
    start_accuracy: float
    post_retraining_accuracy: Optional[float]
    realized_average_accuracy: float
    accuracy_during_retraining: float
    accuracy_after_retraining: float
    retraining_duration: float
    retraining_completed: bool
    minimum_instantaneous_accuracy: float
    #: Duration of the retraining window the outcome was realised over.
    #: Required at construction: a backfilled default of 0.0 used to make
    #: :attr:`timeline` silently emit zero-length segments.
    decision_window_seconds: float

    def __post_init__(self) -> None:
        if self.decision_window_seconds <= 0:
            raise SimulationError(
                "decision_window_seconds must be positive (the retraining "
                "window this outcome was realised over)"
            )

    @property
    def timeline(self) -> List[Tuple[float, float]]:
        """Piecewise-constant (duration, accuracy) segments of this window."""
        if not self.retraining_completed or self.retraining_duration <= 0:
            return [(self.decision_window_seconds, self.accuracy_during_retraining)]
        return [
            (self.retraining_duration, self.accuracy_during_retraining),
            (
                max(0.0, self.decision_window_seconds - self.retraining_duration),
                self.accuracy_after_retraining,
            ),
        ]


@dataclass
class WindowResult:
    """All streams' outcomes plus the schedule for one window."""

    window_index: int
    schedule: WindowSchedule
    outcomes: Dict[str, StreamWindowOutcome] = field(default_factory=dict)
    #: GPU fraction lost to inverse-power-of-two quantisation when the
    #: schedule was packed onto physical devices (``Placement.allocation_loss``).
    #: 0.0 when placement verification is disabled.
    allocation_loss: float = 0.0

    @property
    def mean_accuracy(self) -> float:
        return safe_mean([o.realized_average_accuracy for o in self.outcomes.values()])

    @property
    def num_retrained(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.retraining_completed)


@dataclass
class PlannedStream:
    """One stream's share of a planned-but-not-yet-settled window.

    Captures everything :meth:`Simulator.settle_stream` needs to realise the
    stream's outcome later — the scheduler's decision, the dynamics' answers
    for this window (queried once, at plan time) and the planned
    :class:`~repro.core.estimator.AccuracyEstimate`.  The live
    :class:`~repro.datasets.stream.VideoStream` is kept so the dynamics can
    be committed even after the stream has detached from the site (a
    mid-window migration must still settle the window it left behind).
    """

    stream: VideoStream
    decision: StreamDecision
    start_accuracy: float
    post_retraining_accuracy: Optional[float]
    #: Retraining cost at 100 % GPU allocation (0.0 when not retraining).
    retraining_gpu_seconds: float
    #: Planned estimate; settle reuses it verbatim unless overridden.
    estimate: AccuracyEstimate
    #: Seconds into the window before which the retraining cannot start and
    #: burns no GPU (the WAN transfer delay of a migrated-in stream; 0.0
    #: for a retraining that starts at the boundary).  Preemption accounting
    #: must not count this idle wait as reclaimable work, and an accelerated
    #: completion can never land before it.
    retraining_start_offset: float = 0.0
    #: False when the completion time is fixed externally (cloud-offloaded
    #: retraining): extra GPU allocation cannot accelerate such a job.
    allocation_driven: bool = True


@dataclass
class WindowPlan:
    """The plan phase of one retraining window, before anything is realised.

    Produced by :meth:`Simulator.plan_window`: the schedule is computed, the
    placement verified and every stream's accuracy estimate derived — but no
    outcome is realised and the dynamics are untouched, so the settle phase
    can be invoked per stream at its own (possibly early) completion time,
    or cancelled outright.  ``result`` is the incrementally filled
    :class:`WindowResult`; a stream is *settled* once its outcome is in
    ``result.outcomes``.
    """

    window_index: int
    window_seconds: float
    schedule: WindowSchedule
    result: WindowResult
    streams: Dict[str, PlannedStream] = field(default_factory=dict)

    def completion_offsets(self) -> Dict[str, float]:
        """Seconds into the window at which each retraining completes.

        Only streams whose planned retraining finishes inside the window
        appear; the offset is the planned
        :attr:`~repro.core.estimator.AccuracyEstimate.retraining_duration`
        (start delays from WAN transfers already included).
        """
        return {
            name: planned.estimate.retraining_duration
            for name, planned in self.streams.items()
            if planned.estimate.retraining_completes
        }

    def settled(self, stream_name: str) -> bool:
        return stream_name in self.result.outcomes

    def pending_streams(self) -> List[str]:
        """Planned streams not yet settled, in plan order."""
        return [name for name in self.streams if name not in self.result.outcomes]


@dataclass
class SimulationResult:
    """Aggregate outcome of a multi-window simulation run."""

    policy_name: str
    num_gpus: int
    windows: List[WindowResult] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        """The paper's headline metric: accuracy averaged over windows and streams."""
        return safe_mean([w.mean_accuracy for w in self.windows])

    @property
    def per_stream_accuracy(self) -> Dict[str, float]:
        totals: Dict[str, List[float]] = {}
        for window in self.windows:
            for name, outcome in window.outcomes.items():
                totals.setdefault(name, []).append(outcome.realized_average_accuracy)
        return {name: safe_mean(values) for name, values in totals.items()}

    @property
    def mean_scheduler_runtime(self) -> float:
        return safe_mean([w.schedule.scheduler_runtime_seconds for w in self.windows])

    @property
    def mean_allocation_loss(self) -> float:
        """Mean per-window GPU fraction lost to placement quantisation."""
        return safe_mean([w.allocation_loss for w in self.windows])

    @property
    def total_allocation_loss(self) -> float:
        """Total GPU fraction lost to placement quantisation over the run."""
        return float(sum(w.allocation_loss for w in self.windows))

    @property
    def total_retrainings(self) -> int:
        return sum(w.num_retrained for w in self.windows)

    def minimum_instantaneous_accuracy(self) -> float:
        """Lowest instantaneous accuracy observed anywhere in the run."""
        values = [
            outcome.minimum_instantaneous_accuracy
            for window in self.windows
            for outcome in window.outcomes.values()
        ]
        return min(values) if values else 0.0

    def allocation_timeline(self, stream_name: str) -> List[Dict[str, float]]:
        """Per-window inference/retraining allocations for one stream (Figure 9)."""
        timeline = []
        for window in self.windows:
            outcome = window.outcomes.get(stream_name)
            if outcome is None:
                continue
            timeline.append(
                {
                    "window_index": window.window_index,
                    "inference_gpu": outcome.decision.inference_gpu,
                    "retraining_gpu": outcome.decision.retraining_gpu,
                    "retrained": float(outcome.retraining_completed),
                    "accuracy": outcome.realized_average_accuracy,
                }
            )
        return timeline


class Simulator:
    """Executes a window policy against an accuracy-dynamics substrate."""

    def __init__(
        self,
        server: EdgeServer,
        dynamics: StreamDynamics,
        policy: WindowPolicy,
        *,
        verify_placement: bool = True,
        sanitize: bool = False,
    ) -> None:
        self._server = server
        self._dynamics = dynamics
        self._policy = policy
        self._verify_placement = verify_placement
        self._sanitizer = None
        if sanitize:
            # Local import: the analysis package is debug tooling layered on
            # top of the engine, not an engine dependency.
            from ..analysis.sanitizer import PuritySanitizer

            self._sanitizer = PuritySanitizer()

    @property
    def server(self) -> EdgeServer:
        return self._server

    @property
    def policy(self) -> WindowPolicy:
        return self._policy

    @property
    def dynamics(self) -> StreamDynamics:
        return self._dynamics

    def prepare_request(self, window_index: int) -> ScheduleRequest:
        """Build (and profile) this window's scheduling request, unsolved.

        The fleet's batched-planning path splits the policy's
        ``plan_window`` in two: the request — including every profiling
        side effect — is built per site, in boundary order, by this method;
        the pure solve then runs once for the whole same-instant cohort
        (:meth:`~repro.core.batched_planner.BatchedThiefScheduler.
        schedule_cohort`), and the resulting schedule comes back through
        ``plan_window(..., preplanned=...)``.  Requires a policy exposing
        ``prepare_request`` (e.g. :class:`~repro.core.controller.EkyaPolicy`).
        """
        prepare = getattr(self._policy, "prepare_request", None)
        if prepare is None:
            raise SimulationError(
                f"policy {self._policy.name!r} does not support prepared requests"
            )
        return prepare(self._server.streams, window_index, self._server.spec)

    # -------------------------------------------------------------- execution
    def run(self, num_windows: int, *, start_window: int = 0) -> SimulationResult:
        """Simulate ``num_windows`` consecutive retraining windows."""
        if num_windows < 1:
            raise SimulationError("num_windows must be >= 1")
        if start_window < 0:
            raise SimulationError("start_window must be non-negative")
        result = SimulationResult(
            policy_name=self._policy.name, num_gpus=self._server.spec.num_gpus
        )
        for window_index in range(start_window, start_window + num_windows):
            result.windows.append(self.run_window(window_index))
        return result

    def run_window(
        self,
        window_index: int,
        *,
        retraining_delays: Optional[Mapping[str, float]] = None,
        window_start_seconds: Optional[float] = None,
        retraining_ready_at: Optional[Mapping[str, float]] = None,
        preplanned: Optional[WindowSchedule] = None,
    ) -> WindowResult:
        """Plan and settle a single retraining window atomically.

        Equivalent to :meth:`plan_window` immediately followed by
        :meth:`settle_window` — the whole-window path every non-preemptive
        caller uses, bit-identical to the pre-split implementation.

        ``retraining_delays`` maps stream names to seconds their retraining
        cannot start into the window (the fleet layer uses this for the WAN
        transfer of a migrated stream's checkpoint + profile).  The delay
        extends the retraining's wall-clock completion, so a run that no
        longer fits the window realises no benefit *and* is not committed to
        the dynamics — realised accuracy and model state stay consistent.

        ``retraining_ready_at`` is the event-calendar form of the same
        constraint: absolute simulated times (same axis as
        ``window_start_seconds``, which it requires) before which a stream's
        retraining cannot start — e.g. a WAN :class:`~repro.fleet.calendar.
        TransferArrival` timestamp.  A ready time inside the window delays
        retraining by only the remaining ``ready - window_start`` seconds;
        one at or before the window start costs nothing.  Both forms may be
        given; a stream's delays add up.
        """
        return self.settle_window(
            self.plan_window(
                window_index,
                retraining_delays=retraining_delays,
                window_start_seconds=window_start_seconds,
                retraining_ready_at=retraining_ready_at,
                preplanned=preplanned,
            )
        )

    def plan_window(
        self,
        window_index: int,
        *,
        retraining_delays: Optional[Mapping[str, float]] = None,
        window_start_seconds: Optional[float] = None,
        retraining_ready_at: Optional[Mapping[str, float]] = None,
        preplanned: Optional[WindowSchedule] = None,
    ) -> WindowPlan:
        """Plan one window without realising any outcome.

        Runs the policy, verifies placement, queries the dynamics once per
        stream and derives each stream's planned accuracy estimate — whose
        ``retraining_duration`` is the per-stream completion time the fleet
        layer turns into :class:`~repro.fleet.calendar.RetrainingComplete`
        events.  The dynamics are *not* committed: that happens per stream
        in :meth:`settle_stream`, which may fire early (at the completion
        event), with a new completion time (reclaimed capacity accelerated
        the retraining) or as a cancellation (the stream migrated away).
        Delay parameters are shared with :meth:`run_window`.

        ``preplanned`` short-circuits the policy call with a schedule
        already solved for this exact window — the fleet's batched cohort
        planning hands per-site schedules back through it.  Placement
        verification, accuracy estimates and plan assembly run unchanged.

        With ``sanitize=True`` the plan-phase purity sanitizer digests the
        dynamics, the attached streams and the server spec before and after
        planning and raises :class:`~repro.exceptions.PurityViolationError`
        on mutation (lazy memoisation excepted — see
        :mod:`repro.analysis.sanitizer`).  The GPU fleet is deliberately
        outside the digest: placement verification re-reserves GPUs while
        planning, and those reservations are scheduler scratch, not engine
        state.
        """
        if self._sanitizer is None:
            return self._plan_window(
                window_index,
                retraining_delays=retraining_delays,
                window_start_seconds=window_start_seconds,
                retraining_ready_at=retraining_ready_at,
                preplanned=preplanned,
            )
        with self._sanitizer.guard(
            f"plan_window({window_index})",
            dynamics=self._dynamics,
            streams={stream.name: stream for stream in self._server.streams},
            server_spec=self._server.spec,
        ):
            return self._plan_window(
                window_index,
                retraining_delays=retraining_delays,
                window_start_seconds=window_start_seconds,
                retraining_ready_at=retraining_ready_at,
                preplanned=preplanned,
            )

    def _plan_window(
        self,
        window_index: int,
        *,
        retraining_delays: Optional[Mapping[str, float]] = None,
        window_start_seconds: Optional[float] = None,
        retraining_ready_at: Optional[Mapping[str, float]] = None,
        preplanned: Optional[WindowSchedule] = None,
    ) -> WindowPlan:
        spec = self._server.spec
        streams = self._server.streams
        if retraining_ready_at:
            if window_start_seconds is None:
                raise SimulationError(
                    "retraining_ready_at needs window_start_seconds to anchor "
                    "absolute ready times to this window"
                )
            combined = dict(retraining_delays or {})
            for name, ready in retraining_ready_at.items():
                remaining = ready - window_start_seconds
                if remaining > 0:
                    combined[name] = combined.get(name, 0.0) + remaining
            retraining_delays = combined
        if preplanned is not None:
            if preplanned.window_index != window_index:
                raise SimulationError(
                    f"preplanned schedule is for window {preplanned.window_index}, "
                    f"not {window_index}"
                )
            schedule = preplanned
        else:
            schedule = self._policy.plan_window(streams, window_index, spec)
        allocation_loss = 0.0
        if self._verify_placement:
            # The schedule must be physically placeable onto the GPUs after
            # quantisation; raises PlacementError otherwise.
            placement = place_jobs(schedule.allocation_map(), self._server.fleet)
            allocation_loss = placement.allocation_loss()

        plan = WindowPlan(
            window_index=window_index,
            window_seconds=spec.window_duration,
            schedule=schedule,
            result=WindowResult(
                window_index=window_index,
                schedule=schedule,
                allocation_loss=allocation_loss,
            ),
        )
        for stream in streams:
            decision = schedule.decision_for(stream.name)
            delay = retraining_delays.get(stream.name, 0.0) if retraining_delays else 0.0
            start_accuracy = self._dynamics.start_accuracy(stream, window_index)
            post_accuracy: Optional[float] = None
            gpu_seconds = 0.0
            if decision.retraining_config is not None and decision.retrains:
                post_accuracy = self._dynamics.candidate_post_accuracy(
                    stream, window_index, decision.retraining_config
                )
                gpu_seconds = self._dynamics.retraining_gpu_seconds(
                    stream, window_index, decision.retraining_config
                )
            # A start delay turns the allocation-driven duration into a fixed
            # wall-clock completion time (the estimator's external path), so
            # the retrained model lands delay + training time into the window.
            external = decision.external_completion_seconds
            if delay > 0:
                if external is not None:
                    external += delay
                elif decision.retraining_gpu > 0 and gpu_seconds > 0:
                    external = delay + gpu_seconds / decision.retraining_gpu
            estimate = estimate_stream_average_accuracy(
                start_accuracy=start_accuracy,
                post_retraining_accuracy=post_accuracy,
                retraining_gpu_seconds=gpu_seconds,
                inference_config=decision.inference_config,
                inference_gpu=decision.inference_gpu,
                retraining_gpu=decision.retraining_gpu,
                window_seconds=spec.window_duration,
                external_retraining_duration=external,
            )
            plan.streams[stream.name] = PlannedStream(
                stream=stream,
                decision=decision,
                start_accuracy=start_accuracy,
                post_retraining_accuracy=post_accuracy,
                retraining_gpu_seconds=gpu_seconds,
                estimate=estimate,
                retraining_start_offset=delay if delay > 0 else 0.0,
                allocation_driven=decision.external_completion_seconds is None,
            )
        return plan

    def settle_stream(
        self,
        plan: WindowPlan,
        stream_name: str,
        *,
        completion_offset: Optional[float] = None,
        cancelled: bool = False,
    ) -> StreamWindowOutcome:
        """Realise one planned stream's outcome and commit the dynamics.

        Three settle modes:

        * default — the planned estimate is realised verbatim (what
          :meth:`settle_window` and the whole-window :meth:`run_window` do);
        * ``completion_offset`` — the retraining's realised wall-clock
          duration changed after planning (reclaimed GPU capacity from a
          cancelled neighbour accelerated it); the estimate is recomputed
          with the new completion time;
        * ``cancelled`` — the retraining was preempted mid-flight: the
          stream keeps its stale model for the whole window, no retrained
          state is committed, and the planned retraining benefit is lost.

        Settling a stream twice is an error — the caller (the fleet's
        preemptive event loop) owns exactly-once delivery.
        """
        planned = plan.streams.get(stream_name)
        if planned is None:
            raise SimulationError(
                f"stream {stream_name!r} is not part of window {plan.window_index}'s plan"
            )
        if plan.settled(stream_name):
            raise SimulationError(
                f"stream {stream_name!r} was already settled for window {plan.window_index}"
            )
        if cancelled:
            # No retrained model arrives: stale accuracy for the whole
            # window, exactly the estimator's no-retraining branch.
            estimate = estimate_stream_average_accuracy(
                start_accuracy=planned.start_accuracy,
                post_retraining_accuracy=None,
                retraining_gpu_seconds=0.0,
                inference_config=planned.decision.inference_config,
                inference_gpu=planned.decision.inference_gpu,
                retraining_gpu=planned.decision.retraining_gpu,
                window_seconds=plan.window_seconds,
            )
        elif completion_offset is not None:
            estimate = estimate_stream_average_accuracy(
                start_accuracy=planned.start_accuracy,
                post_retraining_accuracy=planned.post_retraining_accuracy,
                retraining_gpu_seconds=planned.retraining_gpu_seconds,
                inference_config=planned.decision.inference_config,
                inference_gpu=planned.decision.inference_gpu,
                retraining_gpu=planned.decision.retraining_gpu,
                window_seconds=plan.window_seconds,
                external_retraining_duration=completion_offset,
            )
        else:
            estimate = planned.estimate
        outcome = StreamWindowOutcome(
            stream_name=stream_name,
            window_index=plan.window_index,
            decision=planned.decision,
            start_accuracy=planned.start_accuracy,
            post_retraining_accuracy=planned.post_retraining_accuracy,
            realized_average_accuracy=estimate.average_accuracy,
            accuracy_during_retraining=estimate.accuracy_during_retraining,
            accuracy_after_retraining=estimate.accuracy_after_retraining,
            retraining_duration=estimate.retraining_duration,
            retraining_completed=estimate.retraining_completes,
            minimum_instantaneous_accuracy=estimate.minimum_instantaneous_accuracy,
            decision_window_seconds=plan.window_seconds,
        )
        plan.result.outcomes[stream_name] = outcome
        completed_config = (
            planned.decision.retraining_config if outcome.retraining_completed else None
        )
        self._dynamics.commit_window(planned.stream, plan.window_index, completed_config)
        return outcome

    def settle_window(self, plan: WindowPlan) -> WindowResult:
        """Settle every stream still pending in ``plan``, in plan order."""
        for name in plan.pending_streams():
            self.settle_stream(plan, name)
        return plan.result
