"""Experiment harness: one function per evaluation axis of the paper.

The benchmark modules under ``benchmarks/`` are thin wrappers around these
functions; keeping the logic here makes the same sweeps available to library
users (and to the integration tests) through a documented API.

Every experiment builds a *fresh* accuracy-dynamics substrate and profile
source per policy so that policies never share mutable state, and every
random choice is derived from the experiment seed, so the tables are
reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..cluster.edge_server import EdgeServer, EdgeServerSpec
from ..cluster.network import CELLULAR_4G, CELLULAR_4G_X2, SATELLITE, NetworkLink
from ..configs.space import ConfigurationSpace
from ..core.baselines import (
    UNIFORM_CONFIG_2,
    NoRetrainingPolicy,
    standard_uniform_baselines,
)
from ..core.cloud import CloudRetrainingPolicy
from ..core.controller import EkyaPolicy
from ..core.microprofiler import OracleProfileSource
from ..core.policy import WindowPolicy
from ..datasets.generators import make_workload
from ..exceptions import SimulationError
from ..profiles.dynamics import AnalyticDynamics
from .metrics import DEFAULT_CAPACITY_THRESHOLD, capacity, scaling_factor
from .simulator import SimulationResult, Simulator

#: Standard deviation of the oracle profiler's injected estimation error used
#: by default so the simulated Ekya sees micro-profiler-like (≈5.8 % median
#: absolute) estimation error rather than perfect predictions.
DEFAULT_PROFILER_ERROR_STD = 0.05

#: Policy names accepted by :func:`build_policy` / :func:`run_experiment`.
POLICY_NAMES = (
    "ekya",
    "ekya_fixedres",
    "ekya_fixedconfig",
    "uniform_c1_50",
    "uniform_c2_30",
    "uniform_c2_50",
    "uniform_c2_90",
    "no_retraining",
    "cloud_cellular",
    "cloud_satellite",
    "cloud_cellular_2x",
)


@dataclass
class ExperimentSetup:
    """A ready-to-run (streams, server spec, substrate, policy) bundle."""

    dataset: str
    num_streams: int
    num_gpus: int
    policy: WindowPolicy
    server: EdgeServer
    dynamics: AnalyticDynamics
    config_space: ConfigurationSpace


def make_config_space(small: bool = True) -> ConfigurationSpace:
    """The configuration space used by the evaluation experiments.

    The "small" space (default) keeps the sweeps fast while spanning the same
    knobs; the full default grid is available for the Figure 3 profiling
    benchmark.
    """
    return ConfigurationSpace.small() if small else ConfigurationSpace.default()


def build_policy(
    name: str,
    profile_source: OracleProfileSource,
    config_space: ConfigurationSpace,
    *,
    delta: float = 0.1,
) -> WindowPolicy:
    """Instantiate a policy by its canonical experiment name."""
    if name == "ekya":
        return EkyaPolicy(profile_source, config_space, steal_quantum=delta, name="Ekya")
    if name == "ekya_fixedres":
        return EkyaPolicy(
            profile_source,
            config_space,
            fixed_resources=True,
            name="Ekya-FixedRes",
        )
    if name == "ekya_fixedconfig":
        return EkyaPolicy(
            profile_source,
            config_space,
            steal_quantum=delta,
            fixed_retraining_config=UNIFORM_CONFIG_2,
            name="Ekya-FixedConfig",
        )
    if name.startswith("uniform_"):
        baselines = standard_uniform_baselines(profile_source, config_space)
        mapping = {
            "uniform_c1_50": "uniform (Config1, 50%)",
            "uniform_c2_30": "uniform (Config2, 30%)",
            "uniform_c2_50": "uniform (Config2, 50%)",
            "uniform_c2_90": "uniform (Config2, 90%)",
        }
        try:
            return baselines[mapping[name]]
        except KeyError as exc:
            raise SimulationError(f"unknown uniform baseline {name!r}") from exc
    if name == "no_retraining":
        return NoRetrainingPolicy(profile_source, config_space)
    if name.startswith("cloud_"):
        links: Dict[str, NetworkLink] = {
            "cloud_cellular": CELLULAR_4G,
            "cloud_satellite": SATELLITE,
            "cloud_cellular_2x": CELLULAR_4G_X2,
        }
        try:
            return CloudRetrainingPolicy(profile_source, links[name], config_space)
        except KeyError as exc:
            raise SimulationError(f"unknown cloud baseline {name!r}") from exc
    raise SimulationError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")


def make_setup(
    policy_name: str,
    *,
    dataset: str = "cityscapes",
    num_streams: int = 10,
    num_gpus: int = 4,
    window_duration: float = 200.0,
    delta: float = 0.1,
    a_min: float = 0.4,
    seed: int = 0,
    profiler_error_std: float = DEFAULT_PROFILER_ERROR_STD,
    config_space: Optional[ConfigurationSpace] = None,
) -> ExperimentSetup:
    """Build streams, server, substrate and policy for one experiment run."""
    streams = make_workload(dataset, num_streams, seed=seed, window_duration=window_duration)
    spec = EdgeServerSpec(
        num_gpus=num_gpus,
        delta=delta,
        min_inference_accuracy=a_min,
        window_duration=window_duration,
    )
    server = EdgeServer(spec, streams)
    dynamics = AnalyticDynamics(seed=seed)
    space = config_space or make_config_space()
    profile_source = OracleProfileSource(
        dynamics, accuracy_error_std=profiler_error_std, seed=seed + 1
    )
    policy = build_policy(policy_name, profile_source, space, delta=delta)
    return ExperimentSetup(
        dataset=dataset,
        num_streams=num_streams,
        num_gpus=num_gpus,
        policy=policy,
        server=server,
        dynamics=dynamics,
        config_space=space,
    )


def run_experiment(
    policy_name: str,
    *,
    dataset: str = "cityscapes",
    num_streams: int = 10,
    num_gpus: int = 4,
    num_windows: int = 8,
    window_duration: float = 200.0,
    delta: float = 0.1,
    a_min: float = 0.4,
    seed: int = 0,
    profiler_error_std: float = DEFAULT_PROFILER_ERROR_STD,
    config_space: Optional[ConfigurationSpace] = None,
) -> SimulationResult:
    """Simulate one policy on one workload; the basic unit of every benchmark."""
    setup = make_setup(
        policy_name,
        dataset=dataset,
        num_streams=num_streams,
        num_gpus=num_gpus,
        window_duration=window_duration,
        delta=delta,
        a_min=a_min,
        seed=seed,
        profiler_error_std=profiler_error_std,
        config_space=config_space,
    )
    simulator = Simulator(setup.server, setup.dynamics, setup.policy)
    return simulator.run(num_windows)


def compare_policies(
    policy_names: Sequence[str],
    *,
    dataset: str = "cityscapes",
    num_streams: int = 10,
    num_gpus: int = 4,
    num_windows: int = 8,
    seed: int = 0,
    **kwargs,
) -> Dict[str, SimulationResult]:
    """Run several policies on identical workloads and return their results."""
    results: Dict[str, SimulationResult] = {}
    for name in policy_names:
        result = run_experiment(
            name,
            dataset=dataset,
            num_streams=num_streams,
            num_gpus=num_gpus,
            num_windows=num_windows,
            seed=seed,
            **kwargs,
        )
        results[result.policy_name] = result
    return results


def accuracy_vs_streams(
    policy_names: Sequence[str],
    stream_counts: Sequence[int],
    *,
    dataset: str = "cityscapes",
    num_gpus: int = 1,
    num_windows: int = 6,
    seed: int = 0,
    **kwargs,
) -> Dict[str, Dict[int, float]]:
    """Figure 6: mean accuracy as the number of concurrent streams grows."""
    table: Dict[str, Dict[int, float]] = {}
    for policy_name in policy_names:
        row: Dict[int, float] = {}
        for count in stream_counts:
            result = run_experiment(
                policy_name,
                dataset=dataset,
                num_streams=count,
                num_gpus=num_gpus,
                num_windows=num_windows,
                seed=seed,
                **kwargs,
            )
            row[count] = result.mean_accuracy
            label = result.policy_name
        table[label] = row
    return table


def accuracy_vs_gpus(
    policy_names: Sequence[str],
    gpu_counts: Sequence[int],
    *,
    dataset: str = "cityscapes",
    num_streams: int = 10,
    num_windows: int = 6,
    seed: int = 0,
    **kwargs,
) -> Dict[str, Dict[int, float]]:
    """Figure 7: mean accuracy as the number of provisioned GPUs grows."""
    table: Dict[str, Dict[int, float]] = {}
    for policy_name in policy_names:
        row: Dict[int, float] = {}
        label = policy_name
        for gpus in gpu_counts:
            result = run_experiment(
                policy_name,
                dataset=dataset,
                num_streams=num_streams,
                num_gpus=gpus,
                num_windows=num_windows,
                seed=seed,
                **kwargs,
            )
            row[gpus] = result.mean_accuracy
            label = result.policy_name
        table[label] = row
    return table


def capacity_table(
    policy_names: Sequence[str],
    *,
    gpu_counts: Sequence[int] = (1, 2),
    stream_counts: Sequence[int] = (2, 4, 6, 8),
    dataset: str = "cityscapes",
    threshold: float = DEFAULT_CAPACITY_THRESHOLD,
    num_windows: int = 6,
    seed: int = 0,
    **kwargs,
) -> Dict[str, Dict[str, object]]:
    """Table 3: per-policy capacity at each GPU count plus the scaling factor."""
    table: Dict[str, Dict[str, object]] = {}
    for policy_name in policy_names:
        capacities: Dict[int, int] = {}
        label = policy_name
        for gpus in gpu_counts:
            accuracy_by_count: Dict[int, float] = {}
            for count in stream_counts:
                result = run_experiment(
                    policy_name,
                    dataset=dataset,
                    num_streams=count,
                    num_gpus=gpus,
                    num_windows=num_windows,
                    seed=seed,
                    **kwargs,
                )
                accuracy_by_count[count] = result.mean_accuracy
                label = result.policy_name
            capacities[gpus] = capacity(accuracy_by_count, threshold=threshold)
        table[label] = {
            "capacity_by_gpus": capacities,
            "scaling_factor": scaling_factor(capacities),
        }
    return table


def delta_sensitivity(
    deltas: Sequence[float],
    *,
    dataset: str = "cityscapes",
    num_streams: int = 10,
    num_gpus: int = 4,
    num_windows: int = 4,
    seed: int = 0,
    **kwargs,
) -> Dict[float, Dict[str, float]]:
    """Figure 10: accuracy and scheduler runtime versus the stealing quantum Δ."""
    results: Dict[float, Dict[str, float]] = {}
    for delta in deltas:
        result = run_experiment(
            "ekya",
            dataset=dataset,
            num_streams=num_streams,
            num_gpus=num_gpus,
            num_windows=num_windows,
            delta=delta,
            seed=seed,
            **kwargs,
        )
        results[delta] = {
            "accuracy": result.mean_accuracy,
            "scheduler_runtime_seconds": result.mean_scheduler_runtime,
        }
    return results


def error_sensitivity(
    error_levels: Sequence[float],
    *,
    dataset: str = "cityscapes",
    num_streams: int = 10,
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    num_windows: int = 5,
    seed: int = 0,
    **kwargs,
) -> Dict[float, Dict[int, float]]:
    """Figure 11b: Ekya's accuracy under controlled profiler estimation error."""
    table: Dict[float, Dict[int, float]] = {}
    for error in error_levels:
        row: Dict[int, float] = {}
        for gpus in gpu_counts:
            result = run_experiment(
                "ekya",
                dataset=dataset,
                num_streams=num_streams,
                num_gpus=gpus,
                num_windows=num_windows,
                seed=seed,
                profiler_error_std=error,
                **kwargs,
            )
            row[gpus] = result.mean_accuracy
        table[error] = row
    return table
