"""Evaluation metrics derived from simulation results.

Implements the three axes the paper evaluates along (§6.2): inference
accuracy, resource consumption (how many GPUs a baseline needs to match a
target accuracy) and capacity (how many concurrent streams can be supported
subject to an accuracy threshold), plus the scaling factor of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SimulationError
from ..utils.math_utils import safe_mean
from .simulator import SimulationResult

#: Accuracy threshold used for capacity accounting in Table 3.
DEFAULT_CAPACITY_THRESHOLD = 0.75


def mean_accuracy(results: Sequence[SimulationResult]) -> float:
    """Mean of the headline metric across several runs."""
    return safe_mean([result.mean_accuracy for result in results])


def capacity(
    accuracy_by_stream_count: Mapping[int, float],
    *,
    threshold: float = DEFAULT_CAPACITY_THRESHOLD,
) -> int:
    """Maximum number of concurrent streams whose accuracy meets ``threshold``.

    ``accuracy_by_stream_count`` maps "number of streams analysed together" to
    the achieved mean accuracy (the curves of Figure 6).  Capacity is the
    largest stream count whose accuracy is still at or above the threshold
    (0 if even a single stream cannot meet it).
    """
    if not accuracy_by_stream_count:
        raise SimulationError("accuracy_by_stream_count must not be empty")
    supported = [
        count
        for count, accuracy in accuracy_by_stream_count.items()
        if accuracy + 1e-9 >= threshold
    ]
    return max(supported) if supported else 0


def scaling_factor(capacity_by_gpus: Mapping[int, int]) -> Optional[float]:
    """Capacity growth factor between the smallest and largest GPU count.

    Table 3 reports how capacity scales when going from 1 to 2 provisioned
    GPUs; returns ``None`` when the baseline supports no streams at the
    smallest provisioning (denoted "-" in the paper).
    """
    if len(capacity_by_gpus) < 2:
        raise SimulationError("need capacities for at least two GPU counts")
    gpu_counts = sorted(capacity_by_gpus)
    smallest, largest = gpu_counts[0], gpu_counts[-1]
    base = capacity_by_gpus[smallest]
    top = capacity_by_gpus[largest]
    if base <= 0:
        return None
    return top / base


def gpus_needed_for_accuracy(
    accuracy_by_gpus: Mapping[int, float],
    target_accuracy: float,
) -> Optional[int]:
    """Smallest GPU count whose accuracy reaches ``target_accuracy``.

    Used to derive the "baseline needs 4× more GPUs than Ekya" headline:
    find the GPUs Ekya needs for a target and the GPUs the best baseline
    needs for the same target, then divide.
    """
    if not accuracy_by_gpus:
        raise SimulationError("accuracy_by_gpus must not be empty")
    feasible = [gpus for gpus, accuracy in accuracy_by_gpus.items() if accuracy + 1e-9 >= target_accuracy]
    return min(feasible) if feasible else None


def resource_saving_factor(
    ekya_accuracy_by_gpus: Mapping[int, float],
    baseline_accuracy_by_gpus: Mapping[int, float],
    *,
    ekya_gpus: int,
) -> Optional[float]:
    """GPU multiple the baseline needs to match Ekya's accuracy at ``ekya_gpus``."""
    if ekya_gpus not in ekya_accuracy_by_gpus:
        raise SimulationError(f"no Ekya result for {ekya_gpus} GPUs")
    target = ekya_accuracy_by_gpus[ekya_gpus]
    needed = gpus_needed_for_accuracy(baseline_accuracy_by_gpus, target)
    if needed is None:
        return None
    return needed / ekya_gpus


@dataclass(frozen=True)
class AccuracyComparison:
    """Ekya-vs-best-baseline comparison at one operating point."""

    ekya_accuracy: float
    best_baseline_accuracy: float
    best_baseline_name: str

    @property
    def absolute_gain(self) -> float:
        return self.ekya_accuracy - self.best_baseline_accuracy

    @property
    def relative_gain(self) -> float:
        if self.best_baseline_accuracy <= 0:
            return float("inf")
        return self.ekya_accuracy / self.best_baseline_accuracy - 1.0


def compare_to_baselines(
    ekya_accuracy: float, baseline_accuracies: Mapping[str, float]
) -> AccuracyComparison:
    """Build the Ekya-vs-strongest-baseline comparison used in headlines."""
    if not baseline_accuracies:
        raise SimulationError("baseline_accuracies must not be empty")
    best_name = max(baseline_accuracies, key=lambda name: baseline_accuracies[name])
    return AccuracyComparison(
        ekya_accuracy=ekya_accuracy,
        best_baseline_accuracy=baseline_accuracies[best_name],
        best_baseline_name=best_name,
    )


def accuracy_violations(
    result: SimulationResult, *, a_min: float
) -> List[Tuple[str, int, float]]:
    """(stream, window, accuracy) triples where instantaneous accuracy < a_min."""
    violations = []
    for window in result.windows:
        for name, outcome in window.outcomes.items():
            if outcome.minimum_instantaneous_accuracy + 1e-9 < a_min:
                violations.append((name, window.window_index, outcome.minimum_instantaneous_accuracy))
    return violations


def retraining_fraction(result: SimulationResult) -> float:
    """Fraction of (stream, window) slots in which retraining completed."""
    total = sum(len(window.outcomes) for window in result.windows)
    if total == 0:
        return 0.0
    return result.total_retrainings / total
