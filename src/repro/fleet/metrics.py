"""Fleet-level results and metrics.

Mirrors the per-server result dataclasses in
:mod:`repro.simulation.simulator` one level up: a
:class:`FleetWindowResult` aggregates every site's
:class:`~repro.simulation.simulator.WindowResult` for one shared window plus
the migrations that happened at its boundary, and a :class:`FleetResult`
rolls the run up into the metrics the fleet evaluation cares about — fleet
mean accuracy, the p10 worst-stream accuracy (tail quality, which admission
and migration policies trade against the mean), per-site utilisation,
quantisation loss, and migration count/cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..simulation.simulator import StreamWindowOutcome, WindowResult
from ..utils.math_utils import safe_mean
from .migration import MigrationEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (telemetry imports us)
    from .telemetry import SiteStatsView


def gpu_utilization(total_gpu_allocated: float, num_gpus: int) -> float:
    """Fraction of a site's GPU capacity a schedule actually allocated.

    Guards the degenerate capacity cases in one place instead of inline
    division at every call site: a site with no GPUs (or a corrupted
    negative count) cannot be utilised, so its utilisation is 0.0 rather
    than a ``ZeroDivisionError`` or a nonsensical negative ratio.
    """
    if num_gpus <= 0:
        return 0.0
    return total_gpu_allocated / num_gpus


@dataclass(frozen=True)
class FleetStreamOutcome:
    """One stream's realised window outcome plus its migration history.

    Migration cost is realised *inside* the site's window execution: the
    fleet simulator hands each migrated-in stream's summed WAN transfer time
    to :meth:`repro.simulation.simulator.Simulator.run_window` as a
    retraining start delay, so the retrained model lands transfer + training
    time into the window — or not at all, in which case the dynamics are not
    advanced either.  ``effective_average_accuracy`` is therefore exactly
    the site's realised value; the migration events are kept here so tail
    and cost metrics can attribute the hit.  A stream bounced more than once
    at one boundary (evacuation followed by an overload rebalance) paid
    every hop's transfer.
    """

    stream_name: str
    site: str
    outcome: StreamWindowOutcome
    migrations: Tuple[MigrationEvent, ...] = ()

    @property
    def transfer_seconds(self) -> float:
        """Total WAN transfer this stream paid at this window's boundary."""
        return float(sum(event.transfer_seconds for event in self.migrations))

    @property
    def effective_average_accuracy(self) -> float:
        return self.outcome.realized_average_accuracy

    @property
    def migrated(self) -> bool:
        return bool(self.migrations)


@dataclass(frozen=True)
class SiteWindowStats:
    """Operational statistics of one site over one window."""

    site: str
    num_streams: int
    #: GPU fraction of the site's capacity the schedule actually allocated.
    utilization: float
    #: GPU fraction lost to placement quantisation this window.
    allocation_loss: float
    mean_accuracy: float
    scheduler_runtime_seconds: float
    #: GPU-seconds the site spent micro-profiling this window (0.0 unless
    #: cross-site profile sharing models the profiling cost).
    profiling_gpu_seconds: float = 0.0
    #: GPU-seconds of micro-profiling the fleet profile store saved this
    #: window by warm-starting streams from neighbours' curves.
    profiling_gpu_seconds_saved: float = 0.0
    #: In-flight retrainings cancelled mid-window because their stream
    #: migrated or was evacuated away (preemptive sites only; 0 otherwise).
    retrainings_cancelled: int = 0
    #: GPU-seconds of cancelled retrainings' remaining work reclaimed for
    #: the site's other in-flight retrainings (preemptive sites only).
    reclaimed_gpu_seconds: float = 0.0
    #: GPU-seconds burned on retrainings that never paid: work sunk into
    #: cancelled jobs before their cancellation plus the whole-window burn
    #: of jobs that never completed inside their window (preemptive sites
    #: only; 0 otherwise).  The control-plane A/B harness's waste metric.
    wasted_gpu_seconds: float = 0.0
    #: WAN transfer attempts into/out of this site lost in flight — failed
    #: checkpoint-transfer attempts (charged to the destination) and lost
    #: profile pushes (charged to the source).  0 unless the fleet was
    #: built with ``make_fleet(wan_faults=...)``.
    transfers_failed: int = 0
    #: Failed checkpoint attempts that were retried (a give-up after the
    #: retry budget, and a lost profile push, fail without a retry).
    transfer_retries: int = 0
    #: Wall-clock seconds lost to failed attempts: the wasted transfers
    #: plus the exponential backoff before each retry.
    retry_seconds: float = 0.0


@dataclass
class FleetWindowResult:
    """Everything that happened across the fleet in one simulation cycle.

    On a homogeneous-window fleet a cycle is one shared window.  On a
    heterogeneous fleet (per-site ``window_duration``) a cycle covers the
    sites whose window boundaries share the start instant ``start_seconds``,
    and ``window_index`` is the cycle's ordinal on the calendar rather than
    a fleet-wide window count.
    """

    window_index: int
    #: Absolute simulated time at which this cycle's windows started.
    start_seconds: float = 0.0
    site_results: Dict[str, WindowResult] = field(default_factory=dict)
    stream_outcomes: Dict[str, FleetStreamOutcome] = field(default_factory=dict)
    migrations: List[MigrationEvent] = field(default_factory=list)
    failed_sites: List[str] = field(default_factory=list)
    admitted_streams: List[str] = field(default_factory=list)
    #: Backing view into the telemetry plane's packed stats table.  The
    #: simulator links one row per (site, window) via
    #: :meth:`repro.fleet.telemetry.TelemetryPlane.record_site_stats`; the
    #: :attr:`site_stats` property materialises (and caches) the dataclass
    #: mapping on demand, so the cycle itself holds no per-site objects.
    stats_view: Optional["SiteStatsView"] = field(default=None, repr=False)

    @property
    def site_stats(self) -> Dict[str, SiteWindowStats]:
        """Per-site operational stats of this cycle, keyed by site name."""
        if self.stats_view is None:
            return {}
        return self.stats_view.as_dict()

    @property
    def mean_accuracy(self) -> float:
        """Migration-cost-adjusted mean accuracy over every served stream."""
        return safe_mean(
            [o.effective_average_accuracy for o in self.stream_outcomes.values()]
        )

    @property
    def num_streams(self) -> int:
        return len(self.stream_outcomes)

    @property
    def migration_seconds(self) -> float:
        return float(sum(event.transfer_seconds for event in self.migrations))

    @property
    def allocation_loss(self) -> float:
        """Fleet-wide GPU fraction lost to placement quantisation this window."""
        return float(sum(stats.allocation_loss for stats in self.site_stats.values()))

    @property
    def profiling_gpu_seconds(self) -> float:
        """Fleet-wide GPU-seconds spent micro-profiling this window."""
        return float(
            sum(stats.profiling_gpu_seconds for stats in self.site_stats.values())
        )

    @property
    def profiling_gpu_seconds_saved(self) -> float:
        """Fleet-wide profiling GPU-seconds saved by warm starts this window."""
        return float(
            sum(stats.profiling_gpu_seconds_saved for stats in self.site_stats.values())
        )

    @property
    def retrainings_cancelled(self) -> int:
        """In-flight retrainings cancelled mid-window across the fleet."""
        return sum(stats.retrainings_cancelled for stats in self.site_stats.values())

    @property
    def reclaimed_gpu_seconds(self) -> float:
        """GPU-seconds reclaimed from cancelled retrainings this window."""
        return float(
            sum(stats.reclaimed_gpu_seconds for stats in self.site_stats.values())
        )

    @property
    def wasted_gpu_seconds(self) -> float:
        """GPU-seconds burned on never-paying retrainings this window."""
        return float(
            sum(stats.wasted_gpu_seconds for stats in self.site_stats.values())
        )

    @property
    def transfers_failed(self) -> int:
        """WAN transfer attempts lost in flight across the fleet this window."""
        return sum(stats.transfers_failed for stats in self.site_stats.values())

    @property
    def transfer_retries(self) -> int:
        """Failed checkpoint-transfer attempts retried this window."""
        return sum(stats.transfer_retries for stats in self.site_stats.values())

    @property
    def retry_seconds(self) -> float:
        """Wall-clock seconds lost to failed transfer attempts this window."""
        return float(sum(stats.retry_seconds for stats in self.site_stats.values()))


@dataclass
class FleetResult:
    """Aggregate outcome of a multi-window fleet simulation."""

    admission_policy: str
    num_sites: int
    windows: List[FleetWindowResult] = field(default_factory=list)
    #: Wall-clock the fleet layer spent (scheduling + simulation, all sites).
    wall_clock_seconds: float = 0.0
    #: Events evicted from the telemetry plane's fixed-size event ring to
    #: stay within its capacity (exact; 0 unless the ring overflowed).
    telemetry_events_dropped: int = 0
    #: Streams whose accuracy series received a dense (top-k mover) sample
    #: in the latest simulated window.
    telemetry_sampled_streams: int = 0
    #: Live event envelopes held in the telemetry ring when the run ended.
    telemetry_ring_occupancy: int = 0
    #: Name of the control policy that ran the fleet's control ticks.
    control_policy: str = "greedy"
    #: Greedy scans skipped because the load vector was provably unchanged
    #: since an idle scan (cumulative over the controller's lifetime).
    control_scans_skipped: int = 0
    #: Control rounds in which candidate migrations existed but none
    #: cleared the policy's predicted-profit bar (predictive policy only).
    migrations_rejected: int = 0
    #: In-flight retrainings the control plane proactively cancelled
    #: because they no longer paid (predictive policy on preemptive sites).
    proactive_cancellations: int = 0

    # ----------------------------------------------------------- accuracy
    @property
    def mean_accuracy(self) -> float:
        """Fleet headline metric: accuracy over cycles and served streams.

        Cycles that served nothing are excluded rather than counted as 0.0:
        on a heterogeneous-window fleet a cycle can cover only sites that
        are failed or idle (e.g. every 150 s boundary of a failed site), and
        averaging zeros for windows in which no stream existed would let
        calendar granularity, not serving quality, drive the headline
        number.
        """
        return safe_mean(
            [w.mean_accuracy for w in self.windows if w.stream_outcomes]
        )

    @property
    def per_stream_accuracy(self) -> Dict[str, float]:
        totals: Dict[str, List[float]] = {}
        for window in self.windows:
            for name, outcome in window.stream_outcomes.items():
                totals.setdefault(name, []).append(outcome.effective_average_accuracy)
        return {name: safe_mean(values) for name, values in totals.items()}

    def worst_stream_accuracy(self, percentile: float = 10.0) -> float:
        """Tail quality: the given percentile of per-stream mean accuracies."""
        values = list(self.per_stream_accuracy.values())
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values, dtype=float), percentile))

    # ---------------------------------------------------------- migrations
    @property
    def migration_count(self) -> int:
        return sum(len(w.migrations) for w in self.windows)

    @property
    def total_migration_seconds(self) -> float:
        return float(sum(w.migration_seconds for w in self.windows))

    def migrations_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for window in self.windows:
            for event in window.migrations:
                counts[event.reason] = counts.get(event.reason, 0) + 1
        return counts

    # --------------------------------------------------------- utilisation
    @property
    def mean_utilization_by_site(self) -> Dict[str, float]:
        """Mean allocated-GPU fraction per site over the windows it served."""
        totals: Dict[str, List[float]] = {}
        for window in self.windows:
            for name, stats in window.site_stats.items():
                totals.setdefault(name, []).append(stats.utilization)
        return {name: safe_mean(values) for name, values in totals.items()}

    @property
    def mean_allocation_loss(self) -> float:
        """Mean fleet-wide per-window GPU fraction lost to quantisation."""
        return safe_mean([w.allocation_loss for w in self.windows])

    # ----------------------------------------------------------- profiling
    @property
    def total_profiling_gpu_seconds(self) -> float:
        """GPU-seconds spent micro-profiling over the whole run."""
        return float(sum(w.profiling_gpu_seconds for w in self.windows))

    @property
    def profiling_gpu_seconds_saved(self) -> float:
        """GPU-seconds of profiling the fleet store's warm starts saved."""
        return float(sum(w.profiling_gpu_seconds_saved for w in self.windows))

    # ----------------------------------------------------------- preemption
    @property
    def retrainings_cancelled(self) -> int:
        """In-flight retrainings cancelled mid-window over the whole run."""
        return sum(w.retrainings_cancelled for w in self.windows)

    @property
    def reclaimed_gpu_seconds(self) -> float:
        """GPU-seconds reclaimed from cancelled retrainings over the run."""
        return float(sum(w.reclaimed_gpu_seconds for w in self.windows))

    @property
    def wasted_gpu_seconds(self) -> float:
        """GPU-seconds burned on never-paying retrainings over the run."""
        return float(sum(w.wasted_gpu_seconds for w in self.windows))

    # --------------------------------------------------------------- faults
    @property
    def transfers_failed(self) -> int:
        """WAN transfer attempts lost in flight over the whole run."""
        return sum(w.transfers_failed for w in self.windows)

    @property
    def transfer_retries(self) -> int:
        """Failed checkpoint-transfer attempts that were retried."""
        return sum(w.transfer_retries for w in self.windows)

    @property
    def retry_seconds(self) -> float:
        """Wall-clock seconds lost to failed transfer attempts over the run."""
        return float(sum(w.retry_seconds for w in self.windows))

    # -------------------------------------------------------------- export
    def summary(self) -> Dict[str, object]:
        """Flat JSON-friendly summary (benchmark trajectories, examples).

        Every key is documented in the metrics appendix of
        ``docs/events.md``; ``tests/unit/test_fleet.py`` asserts the exact
        key set so documentation and code cannot drift apart.
        """
        utilization = self.mean_utilization_by_site
        return {
            "admission_policy": self.admission_policy,
            "num_sites": self.num_sites,
            "num_windows": len(self.windows),
            "num_streams": max((w.num_streams for w in self.windows), default=0),
            "mean_accuracy": self.mean_accuracy,
            "p10_worst_stream_accuracy": self.worst_stream_accuracy(10.0),
            "migration_count": self.migration_count,
            "total_migration_seconds": self.total_migration_seconds,
            "migrations_by_reason": self.migrations_by_reason(),
            "mean_utilization": safe_mean(list(utilization.values())),
            "mean_allocation_loss": self.mean_allocation_loss,
            "profiling_gpu_seconds": self.total_profiling_gpu_seconds,
            "profiling_gpu_seconds_saved": self.profiling_gpu_seconds_saved,
            "retrainings_cancelled": self.retrainings_cancelled,
            "reclaimed_gpu_seconds": self.reclaimed_gpu_seconds,
            "wasted_gpu_seconds": self.wasted_gpu_seconds,
            "control_policy": self.control_policy,
            "control_scans_skipped": self.control_scans_skipped,
            "migrations_rejected": self.migrations_rejected,
            "proactive_cancellations": self.proactive_cancellations,
            "transfers_failed": self.transfers_failed,
            "transfer_retries": self.transfer_retries,
            "retry_seconds": self.retry_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "telemetry_events_dropped": self.telemetry_events_dropped,
            "telemetry_sampled_streams": self.telemetry_sampled_streams,
            "telemetry_ring_occupancy": self.telemetry_ring_occupancy,
        }
