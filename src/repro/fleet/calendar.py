"""The discrete-event spine of the fleet simulation.

PR 2 keyed every cross-site mechanism (scenario triggers, migrations,
rebalancing, recovery expiries) to one shared integer window index, which
forced all sites onto the same ``window_duration`` and all control decisions
onto window boundaries.  This module replaces that with the classic
discrete-event design (NS-2's scheduler/handler decomposition): an
:class:`EventCalendar` owns simulated time as a heap of
``(time, priority, seq)``-ordered :class:`SimEvent` s, and the
:class:`~repro.fleet.simulator.FleetSimulator` is a loop that pops the next
event and dispatches it to a handler.

Event hierarchy (all timestamped in absolute simulated seconds):

* :class:`SiteRecovery` / :class:`WanRestore` — expiry of a scenario effect;
  fires only if the scheduling scenario event still *owns* the site's state
  (a later failure/degradation supersedes an earlier one's expiry).
  :class:`GpuRecovered` shares the slot: ``k`` of a site's GPUs return to
  service.  GPU losses *stack* (two failures of one GPU each leave the site
  two short), so recoveries restore counts rather than ownership and are
  never stale.
* :class:`ScenarioTrigger` — an injected
  :class:`~repro.fleet.scenarios.Scenario` event fires (flash crowd, site
  failure, WAN degradation).  Scenarios are time-indexed; the old
  window-indexed constructors are resolved to absolute seconds up front.
* :class:`TransferArrival` — a migrating stream's checkpoint + profile
  finishes its WAN transfer.  Replaces PR 2's carryover-delay dict: the
  arrival is an absolute timestamp, so it can land mid-window and a window
  execution only pays the *remaining* transfer time.
* :class:`TransferFailed` — one attempt of a WAN transfer was lost in
  flight (fleets built with ``make_fleet(wan_faults=...)`` only).  Shares
  the arrival slot: at one instant a transfer either lands or fails, never
  both, and both outcomes must be observed before same-instant pushes and
  control.  A ``final`` checkpoint failure is the give-up after the retry
  budget — the stream restarts cold at its destination; a ``final``
  profile-push failure just drops the batch (no retry).
* :class:`RetrainingComplete` — one stream's in-flight retraining reaches
  its absolute finish time (preemptive sites only: fleets built with
  ``make_fleet(preemptive_sites=True)`` plan each window at its boundary
  and settle every stream's retraining at its own completion event, so the
  control plane can cancel a retraining mid-window).  After transfer
  arrivals (a checkpoint landing at the same instant is observed first) and
  before profile pushes and control ticks — a same-instant rebalance
  already sees the completed model.
* :class:`InferenceReconfigured` — a stream's inference serving path
  changed allocation mid-window: the GPUs freed by a completed retraining
  flowed back to its inference job, or a cancellation handed the freed
  capacity to the site's surviving in-flight retrainings.  Scheduled at the
  instant of the change, directly after the :class:`RetrainingComplete`
  slot, so the trace reads completion → reconfiguration.
* :class:`ProfilePush` — a site's micro-profiled curves land in the
  fleet-wide :class:`~repro.profiles.fleet_store.FleetProfileStore` after
  crossing the site's WAN uplink (cross-site profile sharing; scheduled
  only when sharing is enabled).  Ordered after transfer arrivals — a
  checkpoint landing at the same instant is observed first — and before
  control ticks, so admission at the same instant already sees the pushed
  curves.
* :class:`ControlTick` — the fleet controller runs admission/rebalancing.
  By default ticks coincide with window boundaries (PR-2 behaviour); an
  explicit ``control_interval`` decouples them entirely (the async fleet
  control plane).
* :class:`WindowBoundary` — one site starts its next retraining window.
  Per-site, so every :class:`~repro.fleet.site.SiteSpec` can have its own
  ``window_duration``.

At equal timestamps the class priority above (smaller fires first) fixes the
semantic order — restore, trigger, arrivals, completions, reconfigurations,
pushes, control, windows — and the monotonically increasing sequence number
makes ties within a priority fire in scheduling order, so event processing
is deterministic across runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Tuple

from ..exceptions import FleetError
from .migration import MigrationEvent
from .scenarios import ScenarioEvent


@dataclass(frozen=True)
class SimEvent:
    """Base class of everything the calendar can schedule.

    ``priority`` orders events that share a timestamp (smaller fires first);
    it is a class attribute, not per-instance state, because the ordering is
    semantic — e.g. a transfer arriving exactly at a window boundary must be
    observed *before* that window plans its retraining.
    """

    time: float
    priority: ClassVar[int] = 99

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FleetError("event time must be non-negative")

    def describe(self) -> str:
        """One-line human-readable form (used by the example's event trace)."""
        return f"t={self.time:8.1f}s  {type(self).__name__}"


@dataclass(frozen=True)
class SiteRecovery(SimEvent):
    """A failed site comes back, if ``owner`` still owns its failure state."""

    priority: ClassVar[int] = 0
    site: str = ""
    #: The scenario event that scheduled this expiry.  A later failure of the
    #: same site takes ownership and this expiry becomes a no-op.
    owner: object = None

    def describe(self) -> str:
        return f"{super().describe()}  site={self.site}"


@dataclass(frozen=True)
class WanRestore(SimEvent):
    """A degraded WAN link returns to provisioned bandwidth (same ownership)."""

    priority: ClassVar[int] = 0
    site: str = ""
    owner: object = None

    def describe(self) -> str:
        return f"{super().describe()}  site={self.site}"


@dataclass(frozen=True)
class GpuRecovered(SimEvent):
    """``num_gpus`` of a site's failed GPUs return to service.

    Scheduled by a :class:`~repro.fleet.scenarios.GpuFailure` with a
    recovery time, carrying the GPU count that failure actually took away.
    Unlike :class:`SiteRecovery` there is no ownership guard: losses stack
    (each failure removes up to ``num_gpus`` more from whatever capacity is
    left), so each recovery restores its own count and can never be stale —
    restoration is clamped to the GPUs currently lost.
    """

    priority: ClassVar[int] = 0
    site: str = ""
    num_gpus: int = 1

    def describe(self) -> str:
        return f"{super().describe()}  site={self.site} gpus={self.num_gpus}"


@dataclass(frozen=True)
class ScenarioTrigger(SimEvent):
    """An injected scenario event fires at its resolved absolute time."""

    priority: ClassVar[int] = 1
    event: Optional[ScenarioEvent] = None

    def describe(self) -> str:
        return f"{super().describe()}  {type(self.event).__name__}"


@dataclass(frozen=True)
class TransferArrival(SimEvent):
    """A migrating stream's checkpoint + profile finishes its WAN transfer."""

    priority: ClassVar[int] = 2
    stream: str = ""

    def describe(self) -> str:
        return f"{super().describe()}  stream={self.stream}"


@dataclass(frozen=True)
class TransferFailed(SimEvent):
    """One attempt of a WAN transfer was lost in flight.

    Scheduled only by fleets built with ``make_fleet(wan_faults=...)``.
    ``kind`` distinguishes the two payloads: ``"checkpoint"`` failures
    belong to a migrating stream's retry chain (``site`` is the
    destination; a ``final`` failure is the give-up that restarts the
    stream cold there), while ``"profile_push"`` failures drop a site's
    whole pushed curve batch with no retry (``site`` is the source and the
    event is always ``final``).  Shares the :class:`TransferArrival`
    priority: at one instant a transfer either lands or fails, never both.
    """

    priority: ClassVar[int] = 2
    stream: str = ""
    site: str = ""
    kind: str = "checkpoint"
    attempt: int = 1
    wasted_seconds: float = 0.0
    final: bool = False

    def describe(self) -> str:
        label = self.stream if self.kind == "checkpoint" else self.kind
        tail = " GIVE-UP" if self.final and self.kind == "checkpoint" else ""
        return (
            f"{super().describe()}  {label} site={self.site} "
            f"attempt={self.attempt}{tail}"
        )


@dataclass(frozen=True)
class RetrainingComplete(SimEvent):
    """One stream's in-flight retraining reaches its absolute finish time.

    Scheduled by preemptive sites when a window is planned at its boundary:
    each stream whose retraining fits the window gets one completion event
    at ``boundary + retraining_duration``.  The handler settles the stream —
    realises its window outcome and commits the retrained model to the
    dynamics — at that instant instead of at the next boundary.  The event
    is *stale* (a silent no-op) when the retraining was cancelled by a
    migration or evacuation, or rescheduled earlier after a cancellation
    reclaimed GPU capacity for it; the current expected completion time is
    the one that fires.
    """

    priority: ClassVar[int] = 3
    site: str = ""
    stream: str = ""
    window_index: int = 0

    def describe(self) -> str:
        return f"{super().describe()}  site={self.site} stream={self.stream}"


@dataclass(frozen=True)
class InferenceReconfigured(SimEvent):
    """A stream's inference serving path changed allocation mid-window.

    Two reasons, mirroring how Ekya re-runs its scheduler when a retraining
    job leaves the GPU:

    * ``"retraining_complete"`` — the stream's retraining finished and its
      freed GPUs flowed back to the inference job (``inference_gpu`` is the
      new post-retraining allocation, the Figure-4 model).
    * ``"retraining_cancelled"`` — the stream migrated away mid-window and
      its in-flight retraining was cancelled; the reclaimed capacity went to
      the site's surviving in-flight retrainings (``inference_gpu`` is 0.0 —
      the departed stream no longer serves at this site).
    """

    priority: ClassVar[int] = 4
    site: str = ""
    stream: str = ""
    inference_gpu: float = 0.0
    reason: str = "retraining_complete"

    def describe(self) -> str:
        return (
            f"{super().describe()}  site={self.site} stream={self.stream} "
            f"gpu={self.inference_gpu:.2f} ({self.reason})"
        )


@dataclass(frozen=True)
class ProfilePush(SimEvent):
    """One site's profiled curves arrive at the fleet-wide profile store.

    ``profiles`` carries ``(key, profile)`` pairs — the
    ``(dataset, drift-regime)`` fleet-store key and the pushed
    :class:`~repro.profiles.profile.StreamWindowProfile` — batched per site
    and window.  The event's time is the push's *arrival*: departure (the
    site's window boundary) plus the upload time of the profile payload over
    the site's current uplink, so a WAN-degraded site contributes stale
    curves.
    """

    priority: ClassVar[int] = 5
    site: str = ""
    profiles: Tuple = ()

    def describe(self) -> str:
        return f"{super().describe()}  site={self.site} profiles={len(self.profiles)}"


@dataclass(frozen=True)
class ControlTick(SimEvent):
    """The fleet controller makes its admission/rebalancing decisions."""

    priority: ClassVar[int] = 6


@dataclass(frozen=True)
class WindowBoundary(SimEvent):
    """One site starts retraining window ``window_index`` at ``time``."""

    priority: ClassVar[int] = 7
    site: str = ""
    window_index: int = 0

    def describe(self) -> str:
        return f"{super().describe()}  site={self.site} window={self.window_index}"


@dataclass(frozen=True)
class MigrationStarted(SimEvent):
    """Trace-only marker: a stream hand-off began (never scheduled)."""

    priority: ClassVar[int] = 1
    migration: Optional[MigrationEvent] = None

    def describe(self) -> str:
        m = self.migration
        return (
            f"{super().describe()}  {m.stream_name} {m.source}->{m.destination} "
            f"({m.reason}, {m.transfer_seconds:.1f}s transfer)"
        )


@dataclass
class EventCalendar:
    """A heap of timestamped events owning the fleet's simulated clock.

    Events pop in ``(time, priority, seq)`` order: earliest first, semantic
    priority breaking timestamp ties, scheduling order breaking the rest —
    fully deterministic for a given schedule sequence.  Scheduling into the
    past is an error: popped time is the simulation's ``now`` and never moves
    backwards.
    """

    start_time: float = 0.0
    _heap: List[Tuple[float, int, int, SimEvent]] = field(default_factory=list)
    _seq: int = 0
    _now: float = field(init=False)

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise FleetError("start_time must be non-negative")
        self._now = float(self.start_time)

    @property
    def now(self) -> float:
        """Current simulated time: the timestamp of the last popped event."""
        return self._now

    def schedule(self, event: SimEvent) -> SimEvent:
        """Add ``event`` to the calendar; returns it for chaining."""
        if event.time < self._now:
            raise FleetError(
                f"cannot schedule {type(event).__name__} at t={event.time:g}s: "
                f"simulated time is already {self._now:g}s"
            )
        heapq.heappush(self._heap, (event.time, event.priority, self._seq, event))
        self._seq += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when the calendar is empty."""
        return self._heap[0][0] if self._heap else None

    def peek(self) -> Optional[SimEvent]:
        """The next event without popping it, or ``None`` when empty.

        Lets the fleet's batched-planning loop collect a whole cohort of
        same-instant :class:`WindowBoundary` events (they are contiguous at
        the head: nothing else shares their priority) before dispatching.
        """
        return self._heap[0][3] if self._heap else None

    def pop(self) -> SimEvent:
        """Remove and return the next event, advancing simulated time to it."""
        if not self._heap:
            raise FleetError("cannot pop from an empty event calendar")
        time, _, _, event = heapq.heappop(self._heap)
        self._now = time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
