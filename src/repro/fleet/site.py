"""One edge site of a multi-site fleet.

An :class:`EdgeSite` wraps the single-server stack the paper evaluates — an
:class:`~repro.cluster.edge_server.EdgeServer`, a window policy (Ekya's thief
scheduler by default) and the trace-driven
:class:`~repro.simulation.simulator.Simulator` — behind a mutable-membership
facade: streams are attached by the fleet controller at admission time and
move between sites through migration or evacuation.  The per-site scheduling
hot path runs completely unchanged; the fleet layer only decides *which*
streams each site owns in each window.

Sites also carry operational state the fleet scenarios manipulate: a health
flag (site failure/recovery), a WAN link whose bandwidth can be degraded —
which is what migrations into and out of the site pay for checkpoint and
profile transfer — and a partial-degradation GPU count: a
:class:`~repro.fleet.scenarios.GpuFailure` removes k of N GPUs and the site
keeps running on the remainder (its server spec and GPU fleet are rebuilt
at the reduced capacity), skipping windows entirely only when every GPU is
gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..cluster.edge_server import EdgeServer, EdgeServerSpec
from ..cluster.gpu import GPUFleet
from ..cluster.network import CELLULAR_4G_X2, NetworkLink
from ..core.policy import WindowPolicy
from ..datasets.stream import VideoStream
from ..exceptions import FleetError
from ..profiles.dynamics import StreamDynamics
from ..core.types import ScheduleRequest, WindowSchedule
from ..simulation.simulator import Simulator, StreamWindowOutcome, WindowPlan, WindowResult


@dataclass(frozen=True)
class SiteSpec:
    """Static description of one fleet site.

    Attributes
    ----------
    name:
        Unique site identifier (used in migration events and metrics).
    num_gpus / delta / min_inference_accuracy / window_duration:
        Forwarded to :class:`~repro.cluster.edge_server.EdgeServerSpec`.
        ``window_duration`` is per-site: the fleet's event calendar gives
        every site its own window-boundary events, so a metro site can run
        200 s windows next to a neighbourhood site on 150 s ones.
    link:
        WAN link connecting the site to the backbone.  Migrations upload the
        stream's model checkpoint and profile over the source site's uplink
        and download them over the destination's downlink.
    """

    name: str
    num_gpus: int = 4
    delta: float = 0.1
    min_inference_accuracy: float = 0.4
    window_duration: float = 200.0
    link: NetworkLink = CELLULAR_4G_X2

    def __post_init__(self) -> None:
        """Validate the spec up front, so a bad site fails at construction.

        Without these checks a ``num_gpus=0`` site is accepted and the error
        surfaces later — as a bare ``ZeroDivisionError`` from
        :attr:`EdgeSite.load` or, confusingly, from ``EdgeServerSpec``
        validation deep inside the first window — instead of as a
        :class:`FleetError` naming the site.
        """
        if not self.name:
            raise FleetError("site name must be non-empty")
        if self.num_gpus < 1:
            raise FleetError(f"site {self.name!r} needs num_gpus >= 1, got {self.num_gpus}")
        if not 0 < self.delta <= self.num_gpus:
            raise FleetError(
                f"site {self.name!r} needs delta in (0, num_gpus], got {self.delta}"
            )
        if not 0.0 <= self.min_inference_accuracy < 1.0:
            raise FleetError(
                f"site {self.name!r} needs min_inference_accuracy in [0, 1), "
                f"got {self.min_inference_accuracy}"
            )
        if self.window_duration <= 0:
            raise FleetError(
                f"site {self.name!r} needs a positive window_duration, "
                f"got {self.window_duration}"
            )

    def server_spec(self) -> EdgeServerSpec:
        return EdgeServerSpec(
            num_gpus=self.num_gpus,
            delta=self.delta,
            min_inference_accuracy=self.min_inference_accuracy,
            window_duration=self.window_duration,
        )


class EdgeSite:
    """A single edge server plus the fleet-facing state around it."""

    def __init__(
        self,
        spec: SiteSpec,
        *,
        dynamics: StreamDynamics,
        policy: WindowPolicy,
        verify_placement: bool = True,
        sanitize: bool = False,
    ) -> None:
        self.spec = spec
        self._server = EdgeServer(spec.server_spec(), [], allow_empty=True)
        self._simulator = Simulator(
            self._server,
            dynamics,
            policy,
            verify_placement=verify_placement,
            sanitize=sanitize,
        )
        self.healthy = True
        self.link = spec.link
        #: Provisioned GPUs currently failed (partial degradation).
        self.gpus_lost = 0

    # ------------------------------------------------------------- accessors
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def server(self) -> EdgeServer:
        return self._server

    @property
    def policy(self) -> WindowPolicy:
        """The window policy planning this site's windows."""
        return self._simulator.policy

    @property
    def streams(self) -> List[VideoStream]:
        return self._server.streams

    @property
    def stream_names(self) -> List[str]:
        return self._server.stream_names

    @property
    def num_streams(self) -> int:
        return self._server.num_streams

    @property
    def effective_gpus(self) -> int:
        """GPUs currently in service: provisioned minus failed."""
        return self.spec.num_gpus - self.gpus_lost

    @property
    def load(self) -> float:
        """Streams per GPU — the overload signal the controller rebalances on.

        Computed against the *effective* capacity, so a partially degraded
        site looks proportionally more loaded and rebalancing drains it.  A
        site with every GPU failed gets a large finite load (``inf`` would
        defeat the controller's overload comparisons) so it is always the
        first rebalancing source.  With no GPUs lost this is exactly the
        provisioned streams-per-GPU ratio.
        """
        effective = self.effective_gpus
        if effective <= 0:
            return 1e6 * max(1, self._server.num_streams)
        return self._server.num_streams / effective

    # ------------------------------------------------------------ membership
    def attach(self, stream: VideoStream) -> None:
        if not self.healthy:
            raise FleetError(f"cannot attach a stream to failed site {self.name!r}")
        self._server.attach_stream(stream)

    def detach(self, stream_name: str) -> VideoStream:
        return self._server.detach_stream(stream_name)

    # ------------------------------------------------------------- execution
    def prepare_window_request(self, window_index: int) -> Optional[ScheduleRequest]:
        """Build (and profile) one window's scheduling request, unsolved.

        The same idle/failure guards as :meth:`run_window` apply — a site
        that would skip the window returns ``None`` here too, so the fleet's
        batched cohort planning and the scalar per-site path skip exactly
        the same sites.  The solved cohort schedule comes back through the
        ``preplanned`` parameter of :meth:`run_window` / :meth:`plan_window`.
        """
        if not self.healthy or self._server.num_streams == 0 or self.effective_gpus < 1:
            return None
        return self._simulator.prepare_request(window_index)

    def run_window(
        self,
        window_index: int,
        *,
        retraining_delays: Optional[Mapping[str, float]] = None,
        window_start_seconds: Optional[float] = None,
        retraining_ready_at: Optional[Mapping[str, float]] = None,
        preplanned: Optional[WindowSchedule] = None,
    ) -> Optional[WindowResult]:
        """Plan and execute one retraining window; ``None`` if idle or failed.

        ``retraining_delays`` carries the WAN transfer time of streams that
        migrated in at this window's boundary — their retraining cannot start
        until checkpoint + profile have arrived.  ``retraining_ready_at``
        expresses the same constraint as absolute simulated times (requires
        ``window_start_seconds``); see
        :meth:`repro.simulation.simulator.Simulator.run_window`.
        ``preplanned`` replaces the policy solve with a cohort-batched
        schedule (see :meth:`prepare_window_request`).
        """
        if not self.healthy or self._server.num_streams == 0 or self.effective_gpus < 1:
            return None
        return self._simulator.run_window(
            window_index,
            retraining_delays=retraining_delays,
            window_start_seconds=window_start_seconds,
            retraining_ready_at=retraining_ready_at,
            preplanned=preplanned,
        )

    def plan_window(
        self,
        window_index: int,
        *,
        retraining_delays: Optional[Mapping[str, float]] = None,
        window_start_seconds: Optional[float] = None,
        retraining_ready_at: Optional[Mapping[str, float]] = None,
        preplanned: Optional[WindowSchedule] = None,
    ) -> Optional[WindowPlan]:
        """Plan one window without settling it; ``None`` if idle or failed.

        The preemptive half of :meth:`run_window`: the fleet's event loop
        turns the returned plan's per-stream completion offsets into
        :class:`~repro.fleet.calendar.RetrainingComplete` events and settles
        each stream — possibly early, rescheduled, or cancelled — through
        :meth:`settle_stream` / :meth:`settle_window`.
        """
        if not self.healthy or self._server.num_streams == 0 or self.effective_gpus < 1:
            return None
        return self._simulator.plan_window(
            window_index,
            retraining_delays=retraining_delays,
            window_start_seconds=window_start_seconds,
            retraining_ready_at=retraining_ready_at,
            preplanned=preplanned,
        )

    def settle_stream(
        self,
        plan: WindowPlan,
        stream_name: str,
        *,
        completion_offset: Optional[float] = None,
        cancelled: bool = False,
    ) -> StreamWindowOutcome:
        """Settle one planned stream (see :meth:`Simulator.settle_stream`).

        The fleet's preemptive event loop settles stream by stream — at
        completion events, at cancellations, and for the remainder when the
        window ends — so this per-stream form is the only settle surface a
        site exposes; whole-window settling stays on the single-server
        :meth:`~repro.simulation.simulator.Simulator.settle_window`.
        """
        return self._simulator.settle_stream(
            plan,
            stream_name,
            completion_offset=completion_offset,
            cancelled=cancelled,
        )

    # --------------------------------------------------------------- health
    def fail(self) -> None:
        self.healthy = False

    def recover(self) -> None:
        self.healthy = True

    # ----------------------------------------------------- GPU degradation
    def degrade_gpus(self, num_gpus: int = 1) -> int:
        """Take up to ``num_gpus`` GPUs out of service; returns the count taken.

        Losses stack: each call removes from whatever capacity is left, and
        the clamped return value is what the matching
        :class:`~repro.fleet.calendar.GpuRecovered` must restore.  The
        server's spec and GPU fleet are rebuilt at the reduced capacity, so
        the thief scheduler's next plan sees the smaller machine; at zero
        effective GPUs the site simply skips windows until a recovery.
        """
        if num_gpus < 1:
            raise FleetError("degrade_gpus needs num_gpus >= 1")
        taken = min(num_gpus, self.effective_gpus)
        if taken:
            self.gpus_lost += taken
            self._apply_capacity()
        return taken

    def restore_gpus(self, num_gpus: int = 1) -> int:
        """Return up to ``num_gpus`` failed GPUs to service; returns the count."""
        if num_gpus < 1:
            raise FleetError("restore_gpus needs num_gpus >= 1")
        restored = min(num_gpus, self.gpus_lost)
        if restored:
            self.gpus_lost -= restored
            self._apply_capacity()
        return restored

    def _apply_capacity(self) -> None:
        """Rebuild the server's spec + GPU fleet at the effective capacity.

        ``delta`` (and with it the default steal quantum) is clamped into
        the shrunken spec's valid range; the provisioned :class:`SiteSpec`
        is never touched, so restoring every GPU reproduces the original
        server spec exactly.
        """
        effective = self.effective_gpus
        if effective < 1:
            # Nothing to rebuild: plan/run guards keep the site idle, and
            # the stale server spec is never consulted while idle.
            return
        base = self.spec
        self._server.spec = EdgeServerSpec(
            num_gpus=effective,
            delta=min(base.delta, float(effective)),
            min_inference_accuracy=base.min_inference_accuracy,
            window_duration=base.window_duration,
        )
        self._server.fleet = GPUFleet(effective)

    # ------------------------------------------------------------------ WAN
    def degrade_wan(self, uplink_factor: float = 1.0, downlink_factor: float = 1.0) -> None:
        """Scale the site's WAN bandwidth (factors < 1 degrade the link)."""
        self.link = self.spec.link.scaled(uplink_factor, downlink_factor)

    def restore_wan(self) -> None:
        self.link = self.spec.link

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else "FAILED"
        return (
            f"EdgeSite(name={self.name!r}, gpus={self.spec.num_gpus}, "
            f"streams={self.num_streams}, {state})"
        )
