"""Stream admission: which site should own a newly arriving stream.

The fleet controller delegates the placement decision for every admitted
stream (initial rollout, flash-crowd arrivals and evacuation targets) to a
pluggable :class:`AdmissionPolicy`.  Three policies are provided:

* :class:`LeastLoadedAdmission` — pick the healthy site with the fewest
  streams per GPU (the classic horizontal-autoscaling heuristic).
* :class:`AccuracyGreedyAdmission` — estimate, with the same
  ``EstimateAccuracy`` primitive the thief scheduler optimises
  (:func:`~repro.core.estimator.estimate_stream_average_accuracy`), the
  window-average accuracy the stream would get at each site if admitted, and
  pick the best.  The estimate assumes the site splits its GPUs evenly over
  the post-admission stream count and serves with a reference inference
  configuration — a deliberately cheap stand-in for running the full thief
  at every candidate site.
* :class:`RandomAdmission` — seeded uniform choice, the baseline every
  placement experiment compares against.

All policies receive only *healthy* sites and must be deterministic given
their construction arguments (ties break on site name), so fleet simulations
are reproducible run to run.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from ..configs.inference import InferenceConfig
from ..core.estimator import estimate_stream_average_accuracy
from ..datasets.stream import VideoStream
from ..exceptions import FleetError
from ..profiles.dynamics import StreamDynamics
from ..profiles.fleet_store import FleetProfileStore, stream_profile_key
from ..utils.math_utils import clamp
from ..utils.rng import SeedLike, ensure_rng
from .site import EdgeSite

#: Reference inference configuration used by the accuracy-greedy estimate:
#: every frame at full resolution, the most demanding (and most accurate)
#: pipeline, so the estimate is sensitive to how much GPU the site can spare.
_REFERENCE_INFERENCE = InferenceConfig(frame_sampling_rate=1.0, resolution_scale=1.0)


class AdmissionPolicy(abc.ABC):
    """Chooses the owning site for one stream among the healthy candidates."""

    #: Label used in fleet benchmark tables.
    name: str = "admission"

    @abc.abstractmethod
    def choose_site(
        self, stream: VideoStream, sites: Sequence[EdgeSite], window_index: int
    ) -> EdgeSite:
        """Return the site that should own ``stream`` from ``window_index`` on."""

    def _require_sites(self, sites: Sequence[EdgeSite]) -> None:
        if not sites:
            raise FleetError("no healthy site available for admission")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class LeastLoadedAdmission(AdmissionPolicy):
    """Admit to the healthy site with the fewest streams per GPU."""

    name = "least-loaded"

    def choose_site(
        self, stream: VideoStream, sites: Sequence[EdgeSite], window_index: int
    ) -> EdgeSite:
        self._require_sites(sites)
        return min(sites, key=lambda site: (site.load, site.name))


class RandomAdmission(AdmissionPolicy):
    """Seeded uniform-random site choice (the placement baseline)."""

    name = "random"

    def __init__(self, seed: SeedLike = 0) -> None:
        self._rng = ensure_rng(seed)

    def choose_site(
        self, stream: VideoStream, sites: Sequence[EdgeSite], window_index: int
    ) -> EdgeSite:
        self._require_sites(sites)
        ordered = sorted(sites, key=lambda site: site.name)
        return ordered[int(self._rng.integers(0, len(ordered)))]


class AccuracyGreedyAdmission(AdmissionPolicy):
    """Admit where the estimated window-average accuracy is highest.

    For every candidate site the policy assumes the stream joins and the
    site's GPUs are split evenly across the enlarged stream set (the thief
    scheduler's fair starting point), then scores the stream's window with
    ``EstimateAccuracy`` at that inference share and no retraining — the
    stale-model serving accuracy the stream is guaranteed while the site's
    scheduler works out a better plan.

    With ``shared_profiles`` (a fleet-wide
    :class:`~repro.profiles.fleet_store.FleetProfileStore`), a stream whose
    ``(dataset, drift-regime)`` key has aggregated curves is scored with the
    store's best *post-retraining* point instead: half the fair share
    retrains with the neighbours' best-known configuration while the other
    half serves, which ranks sites by what the stream will actually achieve
    once its first retraining lands — a materially better signal for
    flash-crowd placement than the stale no-retraining estimate.
    """

    name = "accuracy-greedy"

    def __init__(
        self,
        dynamics: StreamDynamics,
        *,
        shared_profiles: Optional[FleetProfileStore] = None,
    ) -> None:
        self._dynamics = dynamics
        self._shared_profiles = shared_profiles

    def _best_shared_candidate(self, stream: VideoStream):
        """The fleet store's best curve point for ``stream`` (site-independent)."""
        if self._shared_profiles is None:
            return None
        return self._shared_profiles.best_candidate(stream_profile_key(stream))

    def score(
        self,
        stream: VideoStream,
        site: EdgeSite,
        window_index: int,
        *,
        already_placed: bool = False,
    ) -> float:
        """Estimated window-average accuracy of ``stream`` if admitted to ``site``.

        With ``already_placed`` the stream is assumed to be one of the
        site's *current* occupants (no ``+1`` headcount handicap) — the
        predictive control policy uses this to score a migration candidate's
        status quo at its source site with the same yardstick as the
        destination estimate.
        """
        return self._score(
            stream,
            site,
            window_index,
            self._best_shared_candidate(stream),
            already_placed=already_placed,
        )

    def _score(
        self,
        stream: VideoStream,
        site: EdgeSite,
        window_index: int,
        candidate,
        *,
        already_placed: bool = False,
    ) -> float:
        occupants = site.num_streams if already_placed else site.num_streams + 1
        share = site.spec.num_gpus / max(occupants, 1)
        start = clamp(self._dynamics.start_accuracy(stream, window_index))
        if candidate is not None:
            _, gpu_seconds, post_accuracy = candidate
            estimate = estimate_stream_average_accuracy(
                start_accuracy=start,
                post_retraining_accuracy=clamp(post_accuracy),
                retraining_gpu_seconds=gpu_seconds,
                inference_config=_REFERENCE_INFERENCE,
                inference_gpu=share / 2.0,
                retraining_gpu=share / 2.0,
                window_seconds=site.spec.window_duration,
            )
        else:
            estimate = estimate_stream_average_accuracy(
                start_accuracy=start,
                post_retraining_accuracy=None,
                retraining_gpu_seconds=0.0,
                inference_config=_REFERENCE_INFERENCE,
                inference_gpu=share,
                retraining_gpu=0.0,
                window_seconds=site.spec.window_duration,
            )
        return estimate.average_accuracy

    def choose_site(
        self, stream: VideoStream, sites: Sequence[EdgeSite], window_index: int
    ) -> EdgeSite:
        self._require_sites(sites)
        # The fleet store's best curve point is per stream, not per site —
        # look it up once for the whole candidate scan.
        candidate = self._best_shared_candidate(stream)
        # Once a site has GPU to spare the estimate saturates (the reference
        # pipeline cannot get more accurate than the model), so ties are
        # common early on; break them toward the less-loaded site, then the
        # smallest site name (min over the negated score keeps the name leg
        # ascending — a max() over (score, -load, name) would resolve full
        # ties to the lexicographically largest name, violating the module's
        # tie-break convention).
        return min(
            sites,
            key=lambda site: (
                -self._score(stream, site, window_index, candidate),
                site.load,
                site.name,
            ),
        )
