"""Fleet orchestration: many edge sites, one shared window timeline.

The paper's system schedules retraining + inference on a single edge server;
this package is the layer above it for production-scale deployments — a
:class:`FleetController` that owns N :class:`EdgeSite` s, admits streams via
pluggable :class:`AdmissionPolicy` s, migrates streams between sites at
window boundaries (paying real WAN transfer cost for model checkpoint +
profile), and a :class:`FleetSimulator` that advances all sites window by
window while applying injected scenario events (flash crowds, site failures
with forced evacuation, WAN degradation).  Each site's thief-scheduler hot
path runs completely unchanged.
"""

from .admission import (
    AccuracyGreedyAdmission,
    AdmissionPolicy,
    LeastLoadedAdmission,
    RandomAdmission,
)
from .controller import FleetController
from .factory import ADMISSION_NAMES, build_admission, make_fleet
from .metrics import (
    FleetResult,
    FleetStreamOutcome,
    FleetWindowResult,
    SiteWindowStats,
)
from .migration import PROFILE_SIZE_MBITS, MigrationCostModel, MigrationEvent
from .scenarios import (
    FlashCrowd,
    Scenario,
    ScenarioEvent,
    SiteFailure,
    WanDegradation,
)
from .simulator import FleetSimulator
from .site import EdgeSite, SiteSpec

__all__ = [
    "AccuracyGreedyAdmission",
    "AdmissionPolicy",
    "LeastLoadedAdmission",
    "RandomAdmission",
    "FleetController",
    "ADMISSION_NAMES",
    "build_admission",
    "make_fleet",
    "FleetResult",
    "FleetStreamOutcome",
    "FleetWindowResult",
    "SiteWindowStats",
    "PROFILE_SIZE_MBITS",
    "MigrationCostModel",
    "MigrationEvent",
    "FlashCrowd",
    "Scenario",
    "ScenarioEvent",
    "SiteFailure",
    "WanDegradation",
    "FleetSimulator",
    "EdgeSite",
    "SiteSpec",
]
