"""Fleet orchestration: many edge sites on one event calendar.

The paper's system schedules retraining + inference on a single edge server;
this package is the layer above it for production-scale deployments — a
:class:`FleetController` that owns N :class:`EdgeSite` s, admits streams via
pluggable :class:`AdmissionPolicy` s and migrates them between sites (paying
real WAN transfer cost for model checkpoint + profile), and a
:class:`FleetSimulator` that advances everything as a discrete-event
simulation on an :class:`EventCalendar`: per-site window boundaries,
time-indexed scenario triggers, WAN transfer arrivals and control ticks are
heap-ordered :class:`SimEvent` s.  Each site's thief-scheduler hot path runs
completely unchanged.

Migrating from the shared-window-index API (PR 2)
-------------------------------------------------

The old fleet advanced on one shared integer window index; the calendar
makes the timeline the spine instead.  Existing code keeps working:

* ``FleetSimulator(controller, scenario).run(num_windows)`` is unchanged for
  fleets whose sites share one ``window_duration``, and reproduces the old
  engine's :class:`FleetResult` bit for bit under a
  :class:`~repro.utils.clock.ManualClock`.
* Window-indexed scenario events — ``FlashCrowd(window=2, ...)``,
  ``SiteFailure(window=3, recovery_window=5, ...)``,
  ``WanDegradation(window=1, until_window=4, ...)`` — still work on
  homogeneous fleets; they are resolved to absolute seconds up front.

New capabilities, opted into explicitly:

* **Time-indexed scenarios**: ``FlashCrowd(at_seconds=450.0, ...)`` fires
  mid-window; expiries use ``recovery_at`` / ``until_at``.  Scenarios are
  validated at :class:`FleetSimulator` construction (unknown sites, expiry
  before trigger), not at fire time.
* **Per-site windows**: give each :class:`SiteSpec` its own
  ``window_duration`` (or pass a sequence to :func:`make_fleet`), then
  drive the fleet with ``run_until(t_end)`` / ``run_for(seconds)`` — each
  returned :class:`FleetWindowResult` covers one cycle of sites whose
  windows start at the same ``start_seconds``.  Window-indexed scenario
  events are rejected on such fleets; use ``at_seconds``.
* **Async control plane**: ``FleetSimulator(..., control_interval=50.0)``
  runs admission/rebalancing on its own cadence, so migrations start
  mid-window and the destination's next window pays only the WAN transfer
  time still remaining (a ``TransferArrival`` landing mid-window costs the
  following window nothing).
"""

from .admission import (
    AccuracyGreedyAdmission,
    AdmissionPolicy,
    LeastLoadedAdmission,
    RandomAdmission,
)
from .calendar import (
    ControlTick,
    EventCalendar,
    MigrationStarted,
    ScenarioTrigger,
    SimEvent,
    SiteRecovery,
    TransferArrival,
    WanRestore,
    WindowBoundary,
)
from .controller import FleetController
from .factory import ADMISSION_NAMES, build_admission, make_fleet
from .metrics import (
    FleetResult,
    FleetStreamOutcome,
    FleetWindowResult,
    SiteWindowStats,
    gpu_utilization,
)
from .migration import PROFILE_SIZE_MBITS, MigrationCostModel, MigrationEvent
from .scenarios import (
    FlashCrowd,
    Scenario,
    ScenarioEvent,
    SiteFailure,
    WanDegradation,
)
from .simulator import FleetSimulator
from .site import EdgeSite, SiteSpec

__all__ = [
    "AccuracyGreedyAdmission",
    "AdmissionPolicy",
    "LeastLoadedAdmission",
    "RandomAdmission",
    "ControlTick",
    "EventCalendar",
    "MigrationStarted",
    "ScenarioTrigger",
    "SimEvent",
    "SiteRecovery",
    "TransferArrival",
    "WanRestore",
    "WindowBoundary",
    "FleetController",
    "ADMISSION_NAMES",
    "build_admission",
    "make_fleet",
    "FleetResult",
    "FleetStreamOutcome",
    "FleetWindowResult",
    "SiteWindowStats",
    "gpu_utilization",
    "PROFILE_SIZE_MBITS",
    "MigrationCostModel",
    "MigrationEvent",
    "FlashCrowd",
    "Scenario",
    "ScenarioEvent",
    "SiteFailure",
    "WanDegradation",
    "FleetSimulator",
    "EdgeSite",
    "SiteSpec",
]
