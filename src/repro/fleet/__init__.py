"""Fleet orchestration: many edge sites on one event calendar.

The paper's system schedules retraining + inference on a single edge server;
this package is the layer above it for production-scale deployments — a
:class:`FleetController` that owns N :class:`EdgeSite` s, admits streams via
pluggable :class:`AdmissionPolicy` s and migrates them between sites (paying
real WAN transfer cost for model checkpoint + profile), and a
:class:`FleetSimulator` that advances everything as a discrete-event
simulation on an :class:`EventCalendar`: per-site window boundaries,
time-indexed scenario triggers, WAN transfer arrivals, fleet profile pushes
and control ticks are heap-ordered :class:`SimEvent` s.  Each site's
thief-scheduler hot path runs completely unchanged.

Event hierarchy (priority order at equal timestamps, smaller fires first):

1. :class:`SiteRecovery` / :class:`WanRestore` / :class:`GpuRecovered` —
   scenario-effect expiries; site/WAN expiries are no-ops unless their
   scheduling event still owns the site's state, GPU recoveries are
   count-based (losses stack, each recovery returns what its failure took).
2. :class:`ScenarioTrigger` — injected scenario events (flash crowd, site
   failure, WAN degradation, partial GPU failure).
3. :class:`TransferArrival` / :class:`TransferFailed` — a migrating
   checkpoint + profile lands, or one WAN transfer attempt is lost (fleets
   built with ``make_fleet(wan_faults=...)``); at one instant a transfer
   either lands or fails, never both.
4. :class:`RetrainingComplete` — one stream's in-flight retraining reaches
   its absolute finish time (only scheduled by fleets built with
   ``make_fleet(preemptive_sites=True)``).  After arrivals; before pushes
   and control, so a same-instant rebalance sees the completed model.
5. :class:`InferenceReconfigured` — a mid-window allocation change: GPUs
   freed by a completed retraining flowed back to inference, or a
   cancellation handed reclaimed capacity to surviving retrainings.
6. :class:`ProfilePush` — a site's micro-profiled curves land in the
   fleet-wide :class:`~repro.profiles.fleet_store.FleetProfileStore` after
   crossing the site's WAN uplink (cross-site profile sharing; only
   scheduled by fleets built with ``make_fleet(profile_sharing=True)``).
   After arrivals so a same-instant checkpoint is observed first; before
   control ticks so same-instant admission already sees the pushed curves.
7. :class:`ControlTick` — admission/rebalancing.
8. :class:`WindowBoundary` — one site plans (and, for non-preemptive
   fleets, atomically settles) its next window.

Migrating from the shared-window-index API (PR 2)
-------------------------------------------------

The old fleet advanced on one shared integer window index; the calendar
makes the timeline the spine instead.  Existing code keeps working:

* ``FleetSimulator(controller, scenario).run(num_windows)`` is unchanged for
  fleets whose sites share one ``window_duration``, and reproduces the old
  engine's :class:`FleetResult` bit for bit under a
  :class:`~repro.utils.clock.ManualClock`.
* Window-indexed scenario events — ``FlashCrowd(window=2, ...)``,
  ``SiteFailure(window=3, recovery_window=5, ...)``,
  ``WanDegradation(window=1, until_window=4, ...)`` — still work on
  homogeneous fleets; they are resolved to absolute seconds up front.

New capabilities, opted into explicitly:

* **Time-indexed scenarios**: ``FlashCrowd(at_seconds=450.0, ...)`` fires
  mid-window; expiries use ``recovery_at`` / ``until_at``.  Scenarios are
  validated at :class:`FleetSimulator` construction (unknown sites, expiry
  before trigger), not at fire time.
* **Per-site windows**: give each :class:`SiteSpec` its own
  ``window_duration`` (or pass a sequence to :func:`make_fleet`), then
  drive the fleet with ``run_until(t_end)`` / ``run_for(seconds)`` — each
  returned :class:`FleetWindowResult` covers one cycle of sites whose
  windows start at the same ``start_seconds``.  Window-indexed scenario
  events are rejected on such fleets; use ``at_seconds``.
* **Async control plane**: ``FleetSimulator(..., control_interval=50.0)``
  runs admission/rebalancing on its own cadence, so migrations start
  mid-window and the destination's next window pays only the WAN transfer
  time still remaining (a ``TransferArrival`` landing mid-window costs the
  following window nothing).
* **Cross-site profile sharing**: ``make_fleet(..., profile_sharing=True)``
  lets sites push their micro-profiled resource–accuracy curves into one
  fleet-wide store (as ``ProfilePush`` events paying real WAN uplink time)
  and warm-starts new/migrated streams from neighbours' curves — the
  first window profiles a ``max_configs``-pruned candidate set instead of
  the full grid, surfaced as ``profiling_gpu_seconds_saved`` in
  :meth:`FleetResult.summary`.  ``make_fleet(...,
  profile_decay_half_life=3600.0)`` additionally ages old pushes out of the
  store so warm starts track the current drift regime.
* **Event-driven site internals**: ``make_fleet(..., preemptive_sites=True)``
  plans each window at its boundary and settles every stream's retraining
  at its own :class:`RetrainingComplete` event, so a mid-window migration
  or evacuation *cancels* the departing stream's in-flight retraining and
  reclaims its remaining GPU-seconds for the site's other in-flight
  retrainings (which finish earlier, marked by
  :class:`InferenceReconfigured` events).  Surfaced as
  ``retrainings_cancelled`` / ``reclaimed_gpu_seconds`` in
  :meth:`FleetResult.summary`.
* **Partial-failure fault model**: ``make_fleet(..., wan_faults=
  WanFaultModel(loss_rate=0.1, seed=7))`` makes checkpoint transfers and
  profile pushes fail in flight (:class:`TransferFailed` events) —
  checkpoints retry with exponential backoff and restart cold at the
  destination when the retry budget runs out; lost pushes silently fall
  back to local curves.  :class:`GpuFailure` scenario events shrink a
  site's capacity by k of N GPUs until the matching :class:`GpuRecovered`.
  Surfaced as ``transfers_failed`` / ``transfer_retries`` /
  ``retry_seconds`` in :meth:`FleetResult.summary`.  The seeded chaos
  harness in :mod:`repro.fleet.chaos` composes both into replayable fault
  schedules and checks fleet-wide invariants across seed sweeps.
* **Pluggable control policies**: ``make_fleet(...,
  control_policy="predictive")`` swaps what runs at every
  :class:`ControlTick`.  The default :class:`~repro.fleet.policy.
  GreedyRebalancePolicy` reproduces the pre-policy load rebalancer bit for
  bit (and skips provably no-op scans); the :class:`~repro.fleet.policy.
  PredictiveProfitPolicy` migrates on predicted net accuracy profit —
  expected gain net of WAN transfer cost under the current link and of the
  GPU-seconds a mid-window cancellation would waste — avoids
  transfer-congested destinations, and proactively cancels retrainings
  that no longer pay on preemptive sites.  Surfaced as ``control_policy``
  / ``control_scans_skipped`` / ``migrations_rejected`` /
  ``proactive_cancellations`` / ``wasted_gpu_seconds`` in
  :meth:`FleetResult.summary`; ``scripts/run_policy_ab.py`` replays
  identical seeded calendars under both policies (see
  ``docs/control_plane.md``).
* **Bounded-memory telemetry**: every simulator writes into a
  :class:`TelemetryPlane` — a fixed-size numpy ring of event envelopes
  (``event_trace`` is decoded from it on demand and served cached),
  adaptively sampled per-stream accuracy series with exact count/mean/p10
  sketches, and one packed structured array holding every (site, window)
  counter row.  ``make_fleet(..., telemetry=TelemetryConfig(...))`` sizes
  it; :meth:`TelemetryPlane.export_text` renders a run's summary as a
  Prometheus-style text exposition (``scripts/export_metrics.py``).
  Surfaced as ``telemetry_events_dropped`` / ``telemetry_sampled_streams``
  / ``telemetry_ring_occupancy`` in :meth:`FleetResult.summary`.
"""

from .admission import (
    AccuracyGreedyAdmission,
    AdmissionPolicy,
    LeastLoadedAdmission,
    RandomAdmission,
)
from .calendar import (
    ControlTick,
    EventCalendar,
    GpuRecovered,
    InferenceReconfigured,
    MigrationStarted,
    ProfilePush,
    RetrainingComplete,
    ScenarioTrigger,
    SimEvent,
    SiteRecovery,
    TransferArrival,
    TransferFailed,
    WanRestore,
    WindowBoundary,
)
from .chaos import ChaosInjector, ChaosReport, check_invariants, run_chaos_trial
from .controller import FleetController
from .factory import (
    ADMISSION_NAMES,
    DEFAULT_SHARED_MAX_CONFIGS,
    POLICY_NAMES,
    ProfileSharing,
    build_admission,
    build_policy,
    make_fleet,
)
from .faults import WanFaultModel, combined_loss
from .metrics import (
    FleetResult,
    FleetStreamOutcome,
    FleetWindowResult,
    SiteWindowStats,
    gpu_utilization,
)
from .migration import PROFILE_SIZE_MBITS, MigrationCostModel, MigrationEvent
from .scenarios import (
    FlashCrowd,
    GpuFailure,
    Scenario,
    ScenarioEvent,
    SiteFailure,
    WanDegradation,
)
from .export import (
    ACCURACY_HISTOGRAM_BUCKETS,
    METRIC_PREFIX,
    render_accuracy_histogram,
    render_prometheus,
)
from .policy import (
    ControlPolicy,
    ControlSignals,
    GreedyRebalancePolicy,
    InflightRetraining,
    PredictiveProfitPolicy,
)
from .simulator import FleetSimulator
from .site import EdgeSite, SiteSpec
from .telemetry import (
    AdaptiveStreamSampler,
    EventRing,
    P2Quantile,
    SiteStatsTable,
    TelemetryConfig,
    TelemetryPlane,
)

__all__ = [
    "AccuracyGreedyAdmission",
    "AdmissionPolicy",
    "LeastLoadedAdmission",
    "RandomAdmission",
    "ControlTick",
    "EventCalendar",
    "GpuRecovered",
    "InferenceReconfigured",
    "MigrationStarted",
    "ProfilePush",
    "RetrainingComplete",
    "ScenarioTrigger",
    "SimEvent",
    "SiteRecovery",
    "TransferArrival",
    "TransferFailed",
    "WanRestore",
    "WindowBoundary",
    "ChaosInjector",
    "ChaosReport",
    "check_invariants",
    "run_chaos_trial",
    "FleetController",
    "ADMISSION_NAMES",
    "DEFAULT_SHARED_MAX_CONFIGS",
    "POLICY_NAMES",
    "ProfileSharing",
    "build_admission",
    "build_policy",
    "make_fleet",
    "ControlPolicy",
    "ControlSignals",
    "GreedyRebalancePolicy",
    "InflightRetraining",
    "PredictiveProfitPolicy",
    "FleetResult",
    "FleetStreamOutcome",
    "FleetWindowResult",
    "SiteWindowStats",
    "gpu_utilization",
    "ACCURACY_HISTOGRAM_BUCKETS",
    "METRIC_PREFIX",
    "render_accuracy_histogram",
    "render_prometheus",
    "AdaptiveStreamSampler",
    "EventRing",
    "P2Quantile",
    "SiteStatsTable",
    "TelemetryConfig",
    "TelemetryPlane",
    "WanFaultModel",
    "combined_loss",
    "PROFILE_SIZE_MBITS",
    "MigrationCostModel",
    "MigrationEvent",
    "FlashCrowd",
    "GpuFailure",
    "Scenario",
    "ScenarioEvent",
    "SiteFailure",
    "WanDegradation",
    "FleetSimulator",
    "EdgeSite",
    "SiteSpec",
]
