"""Convenience constructors for fleet simulations.

Mirrors :func:`repro.simulation.experiments.make_setup` one level up: build a
whole fleet — N sites running Ekya's thief scheduler against one shared
analytic accuracy substrate, an admission policy, and the initial workload
already admitted — from scalar knobs.  Benchmarks, examples and tests all go
through this, so fleet experiments are reproducible from (shape, seed) alone.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..cluster.network import NetworkLink
from ..core.controller import EkyaPolicy
from ..core.microprofiler import OracleProfileSource
from ..datasets.generators import make_workload
from ..exceptions import FleetError
from ..profiles.dynamics import AnalyticDynamics, StreamDynamics
from ..simulation.experiments import DEFAULT_PROFILER_ERROR_STD, make_config_space
from ..utils.clock import Clock
from ..utils.rng import SeedLike
from .admission import (
    AccuracyGreedyAdmission,
    AdmissionPolicy,
    LeastLoadedAdmission,
    RandomAdmission,
)
from .controller import FleetController
from .migration import MigrationCostModel
from .site import EdgeSite, SiteSpec

#: Admission-policy names accepted by :func:`build_admission` / :func:`make_fleet`.
ADMISSION_NAMES = ("least_loaded", "accuracy_greedy", "random")


def build_admission(
    name: str, dynamics: StreamDynamics, *, seed: SeedLike = 0
) -> AdmissionPolicy:
    """Instantiate an admission policy by its canonical name."""
    if name == "least_loaded":
        return LeastLoadedAdmission()
    if name == "accuracy_greedy":
        return AccuracyGreedyAdmission(dynamics)
    if name == "random":
        return RandomAdmission(seed=seed)
    raise FleetError(f"unknown admission policy {name!r}; expected one of {ADMISSION_NAMES}")


def make_fleet(
    num_sites: int,
    streams_per_site: int,
    *,
    dataset: str = "cityscapes",
    gpus_per_site: int = 4,
    delta: float = 0.1,
    a_min: float = 0.4,
    window_duration: Union[float, Sequence[float]] = 200.0,
    admission: Union[str, AdmissionPolicy] = "least_loaded",
    migration_cost: MigrationCostModel = MigrationCostModel(),
    overload_factor: float = 1.5,
    max_migrations_per_window: int = 4,
    links: Optional[Sequence[NetworkLink]] = None,
    seed: int = 0,
    profiler_error_std: float = DEFAULT_PROFILER_ERROR_STD,
    verify_placement: bool = True,
    clock: Optional[Clock] = None,
) -> FleetController:
    """Build a fleet of Ekya sites with the initial workload already admitted.

    Every site runs the full Ekya policy (oracle-profiled thief scheduler)
    over one shared :class:`~repro.profiles.dynamics.AnalyticDynamics`
    substrate — sharing the substrate is what makes migration meaningful: a
    stream's serving-model state follows it across sites, paid for by the
    checkpoint + profile WAN transfer.

    ``links`` optionally assigns one WAN link per site (cycled if shorter);
    the default leaves every site on the :class:`SiteSpec` default link.
    ``window_duration`` likewise accepts either one shared duration or a
    sequence assigning per-site durations (cycled if shorter) — a
    heterogeneous-window fleet, which the event-calendar simulator advances
    through :meth:`~repro.fleet.simulator.FleetSimulator.run_until`.
    ``clock`` is threaded through to every site's scheduler, so injecting a
    :class:`~repro.utils.clock.ManualClock` (and passing the same clock to
    :class:`~repro.fleet.simulator.FleetSimulator`) makes fleet results —
    including every ``scheduler_runtime_seconds`` — bit-identical across runs.
    """
    if num_sites < 1:
        raise FleetError("num_sites must be >= 1")
    if streams_per_site < 0:
        raise FleetError("streams_per_site must be non-negative")
    durations = (
        [float(window_duration)]
        if isinstance(window_duration, (int, float))
        else [float(duration) for duration in window_duration]
    )
    if not durations or any(duration <= 0 for duration in durations):
        raise FleetError("window_duration entries must be positive")
    dynamics = AnalyticDynamics(seed=seed)
    profile_source = OracleProfileSource(
        dynamics, accuracy_error_std=profiler_error_std, seed=seed + 1
    )
    policy = EkyaPolicy(
        profile_source, make_config_space(), steal_quantum=delta, name="Ekya", clock=clock
    )
    sites = []
    for index in range(num_sites):
        spec_kwargs = dict(
            name=f"site-{index}",
            num_gpus=gpus_per_site,
            delta=delta,
            min_inference_accuracy=a_min,
            window_duration=durations[index % len(durations)],
        )
        if links:
            spec_kwargs["link"] = links[index % len(links)]
        sites.append(
            EdgeSite(
                SiteSpec(**spec_kwargs),
                dynamics=dynamics,
                policy=policy,
                verify_placement=verify_placement,
            )
        )
    if isinstance(admission, str):
        admission = build_admission(admission, dynamics, seed=seed + 2)
    controller = FleetController(
        sites,
        dynamics=dynamics,
        admission=admission,
        migration_cost=migration_cost,
        overload_factor=overload_factor,
        max_migrations_per_window=max_migrations_per_window,
        seed=seed,
    )
    total_streams = num_sites * streams_per_site
    if total_streams:
        # Streams are built before their site is known, so they are sized to
        # the reference duration; admission re-sizes each to its owning
        # site's window (FleetController._resync_stream_window), as it does
        # for flash crowds and migrations.
        controller.admit_all(
            make_workload(
                dataset,
                total_streams,
                seed=seed,
                window_duration=controller.reference_window_duration,
            )
        )
    return controller
