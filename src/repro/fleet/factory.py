"""Convenience constructors for fleet simulations.

Mirrors :func:`repro.simulation.experiments.make_setup` one level up: build a
whole fleet — N sites running Ekya's thief scheduler against one shared
analytic accuracy substrate, an admission policy, and the initial workload
already admitted — from scalar knobs.  Benchmarks, examples and tests all go
through this, so fleet experiments are reproducible from (shape, seed) alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..cluster.network import NetworkLink
from ..core.controller import EkyaPolicy
from ..core.microprofiler import (
    MicroProfilerSettings,
    OracleProfileSource,
    SharedProfileOracle,
)
from ..datasets.generators import make_workload
from ..exceptions import FleetError
from ..profiles.dynamics import AnalyticDynamics, StreamDynamics
from ..profiles.fleet_store import FleetProfileStore
from ..simulation.experiments import DEFAULT_PROFILER_ERROR_STD, make_config_space
from ..utils.clock import Clock
from ..utils.rng import SeedLike
from .admission import (
    AccuracyGreedyAdmission,
    AdmissionPolicy,
    LeastLoadedAdmission,
    RandomAdmission,
)
from .controller import FleetController
from .faults import WanFaultModel
from .migration import PROFILE_SIZE_MBITS, MigrationCostModel
from .policy import ControlPolicy, GreedyRebalancePolicy, PredictiveProfitPolicy
from .site import EdgeSite, SiteSpec
from .telemetry import TelemetryConfig

#: Admission-policy names accepted by :func:`build_admission` / :func:`make_fleet`.
ADMISSION_NAMES = ("least_loaded", "accuracy_greedy", "random")

#: Control-policy names accepted by :func:`build_policy` / :func:`make_fleet`.
POLICY_NAMES = ("greedy", "predictive")

#: Warm-started streams profile at most this many candidate configurations
#: (half of :func:`make_config_space`'s 12-config retraining grid).
DEFAULT_SHARED_MAX_CONFIGS = 6


@dataclass(frozen=True)
class ProfileSharing:
    """Cross-site profile-sharing wiring attached to a fleet controller.

    ``store`` is the fleet-wide curve aggregate, ``source`` the
    warm-started oracle every site profiles through, and
    ``payload_mbits_per_stream`` the WAN payload one pushed stream profile
    costs — the simulator batches a site's window into one
    :class:`~repro.fleet.calendar.ProfilePush` whose arrival pays the
    site's uplink for the summed payload.
    """

    store: FleetProfileStore
    source: SharedProfileOracle
    payload_mbits_per_stream: float = PROFILE_SIZE_MBITS


def build_admission(
    name: str,
    dynamics: StreamDynamics,
    *,
    seed: SeedLike = 0,
    shared_profiles: Optional[FleetProfileStore] = None,
) -> AdmissionPolicy:
    """Instantiate an admission policy by its canonical name.

    ``shared_profiles`` hands the accuracy-greedy policy the fleet profile
    store, switching its score to the store's post-retraining curve (see
    :class:`~repro.fleet.admission.AccuracyGreedyAdmission`); the other
    policies ignore it.
    """
    if name == "least_loaded":
        return LeastLoadedAdmission()
    if name == "accuracy_greedy":
        return AccuracyGreedyAdmission(dynamics, shared_profiles=shared_profiles)
    if name == "random":
        return RandomAdmission(seed=seed)
    raise FleetError(f"unknown admission policy {name!r}; expected one of {ADMISSION_NAMES}")


def build_policy(name: str) -> ControlPolicy:
    """Instantiate a control policy by its canonical name.

    ``"greedy"`` is the bit-identical default load rebalancer;
    ``"predictive"`` the profit-driven plane (``docs/control_plane.md``).
    Pass a :class:`~repro.fleet.policy.ControlPolicy` instance to
    :func:`make_fleet` instead when non-default knobs are needed.
    """
    if name == "greedy":
        return GreedyRebalancePolicy()
    if name == "predictive":
        return PredictiveProfitPolicy()
    raise FleetError(f"unknown control policy {name!r}; expected one of {POLICY_NAMES}")


def make_fleet(
    num_sites: int,
    streams_per_site: int,
    *,
    dataset: str = "cityscapes",
    gpus_per_site: int = 4,
    delta: float = 0.1,
    a_min: float = 0.4,
    window_duration: Union[float, Sequence[float]] = 200.0,
    admission: Union[str, AdmissionPolicy] = "least_loaded",
    migration_cost: MigrationCostModel = MigrationCostModel(),
    overload_factor: float = 1.5,
    max_migrations_per_window: int = 4,
    links: Optional[Sequence[NetworkLink]] = None,
    seed: int = 0,
    profiler_error_std: float = DEFAULT_PROFILER_ERROR_STD,
    verify_placement: bool = True,
    clock: Optional[Clock] = None,
    profile_sharing: bool = False,
    profiling_settings: Optional[MicroProfilerSettings] = None,
    profile_decay_half_life: Optional[float] = None,
    preemptive_sites: bool = False,
    wan_faults: Optional[WanFaultModel] = None,
    telemetry: Optional[TelemetryConfig] = None,
    control_policy: Union[str, ControlPolicy] = "greedy",
    sanitize: bool = False,
    batched_planning: bool = False,
) -> FleetController:
    """Build a fleet of Ekya sites with the initial workload already admitted.

    Every site runs the full Ekya policy (oracle-profiled thief scheduler)
    over one shared :class:`~repro.profiles.dynamics.AnalyticDynamics`
    substrate — sharing the substrate is what makes migration meaningful: a
    stream's serving-model state follows it across sites, paid for by the
    checkpoint + profile WAN transfer.

    ``links`` optionally assigns one WAN link per site (cycled if shorter);
    the default leaves every site on the :class:`SiteSpec` default link.
    ``window_duration`` likewise accepts either one shared duration or a
    sequence assigning per-site durations (cycled if shorter) — a
    heterogeneous-window fleet, which the event-calendar simulator advances
    through :meth:`~repro.fleet.simulator.FleetSimulator.run_until`.
    ``clock`` is threaded through to every site's scheduler, so injecting a
    :class:`~repro.utils.clock.ManualClock` (and passing the same clock to
    :class:`~repro.fleet.simulator.FleetSimulator`) makes fleet results —
    including every ``scheduler_runtime_seconds`` — bit-identical across runs.

    ``profile_sharing`` (off by default — the sharing-off fleet reproduces
    the pre-sharing engine bit for bit) wires the cross-site profile-sharing
    subsystem: every site profiles through one
    :class:`~repro.core.microprofiler.SharedProfileOracle` whose estimates
    carry modelled micro-profiling cost, sites push their curves into a
    fleet-wide :class:`~repro.profiles.fleet_store.FleetProfileStore` over
    the event calendar (paying WAN uplink), new/migrated streams warm-start
    from neighbours' curves, and an ``accuracy_greedy`` admission scores
    with the store's post-retraining curve.  ``profiling_settings`` tunes
    the modelled micro-profiler; when omitted, the fleet caps warm-start
    pruning at ``max_configs=DEFAULT_SHARED_MAX_CONFIGS``.  A custom
    settings object is used verbatim — set its ``max_configs`` *below* the
    retraining-grid size (12 here), or warm starts prune nothing and the
    saved-profiling metric stays 0.

    ``profile_decay_half_life`` (seconds; requires ``profile_sharing=True``)
    ages pushed curves out of the fleet store: every push decays the key's
    existing aggregate by ``0.5 ** (elapsed / half_life)`` before merging,
    so warm starts track the *current* drift regime instead of averaging
    over every window ever profiled.  ``None`` (default) keeps every push
    at weight 1.0 forever — the pre-decay behaviour, bit for bit.

    ``preemptive_sites`` turns on event-driven site internals: each window
    is planned at its boundary and every stream's retraining completion
    becomes its own :class:`~repro.fleet.calendar.RetrainingComplete` event,
    so a mid-window migration or evacuation cancels the departing stream's
    in-flight retraining, reclaims its remaining GPU-seconds for the site's
    other in-flight retrainings, and the cancellation shows up in
    ``FleetResult.summary()`` (``retrainings_cancelled`` /
    ``reclaimed_gpu_seconds``).  Off by default — the boundary-settled
    engine is reproduced bit for bit.

    ``wan_faults`` attaches a :class:`~repro.fleet.faults.WanFaultModel`:
    checkpoint transfers fail in flight with the model's (and the endpoint
    links') loss rate and retry with exponential backoff until the retry
    budget runs out — then the stream restarts cold at its destination —
    and profile pushes are lost outright (neighbours fall back to local
    curves).  Surfaced as ``transfers_failed`` / ``transfer_retries`` /
    ``retry_seconds`` in :meth:`FleetResult.summary`.  ``None`` (default)
    never draws the fault RNG: the lossless engine is reproduced bit for
    bit.

    ``telemetry`` sizes the bounded-memory telemetry plane every
    :class:`~repro.fleet.simulator.FleetSimulator` over this fleet writes
    into (event-envelope ring capacity, per-stream series rings, adaptive
    sampling knobs — see :class:`~repro.fleet.telemetry.TelemetryConfig`).
    ``None`` (default) uses defaults sized so nothing is ever evicted at
    current benchmark scales; telemetry is always on and changes no
    observable result, only bounds memory.

    ``control_policy`` selects what runs at every ``ControlTick``: a name
    from :data:`POLICY_NAMES` or a prebuilt
    :class:`~repro.fleet.policy.ControlPolicy` instance.  The default
    ``"greedy"`` reproduces the pre-policy engine bit for bit; see
    ``docs/control_plane.md`` for the predictive plane and the A/B
    harness comparing them.

    ``sanitize`` arms the plan-phase purity sanitizer
    (:mod:`repro.analysis.sanitizer`): every site's ``plan_window`` and
    every control-policy scan digests the shared dynamics (and the site's
    streams) before and after, raising
    :class:`~repro.exceptions.PurityViolationError` if planning mutated
    pre-existing engine state.  Guarding is observational — a sanitized
    fleet's results are bit-identical to an unsanitized one (gated by the
    golden-parity suite) — but digesting is slow; debug/CI use only.

    ``batched_planning`` swaps the shared policy's scheduler for the
    :class:`~repro.core.batched_planner.BatchedThiefScheduler` and makes the
    event loop solve whole same-instant boundary cohorts in one stacked
    numpy call (profiling still runs site by site, in boundary order).
    Results are bit-identical to the scalar path — same decisions,
    accuracies and counters — the property suite
    (``tests/property/test_property_batched_planner.py``) enforces it; the
    win is planning wall-clock on wide fleets and many-stream sites.
    """
    if num_sites < 1:
        raise FleetError("num_sites must be >= 1")
    if streams_per_site < 0:
        raise FleetError("streams_per_site must be non-negative")
    durations = (
        [float(window_duration)]
        if isinstance(window_duration, (int, float))
        else [float(duration) for duration in window_duration]
    )
    if not durations or any(duration <= 0 for duration in durations):
        raise FleetError("window_duration entries must be positive")
    if profiling_settings is not None and not profile_sharing:
        raise FleetError(
            "profiling_settings only tunes the shared profile source; "
            "pass profile_sharing=True (or drop the settings)"
        )
    if profile_decay_half_life is not None and not profile_sharing:
        raise FleetError(
            "profile_decay_half_life only ages the fleet profile store; "
            "pass profile_sharing=True (or drop the half-life)"
        )
    dynamics = AnalyticDynamics(seed=seed)
    sharing: Optional[ProfileSharing] = None
    if profile_sharing:
        fleet_store = FleetProfileStore(decay_half_life=profile_decay_half_life)
        settings = profiling_settings or MicroProfilerSettings(
            max_configs=DEFAULT_SHARED_MAX_CONFIGS
        )
        profile_source: OracleProfileSource = SharedProfileOracle(
            dynamics,
            fleet_store,
            settings=settings,
            accuracy_error_std=profiler_error_std,
            seed=seed + 1,
        )
        sharing = ProfileSharing(store=fleet_store, source=profile_source)
    else:
        profile_source = OracleProfileSource(
            dynamics, accuracy_error_std=profiler_error_std, seed=seed + 1
        )
    policy = EkyaPolicy(
        profile_source,
        make_config_space(),
        steal_quantum=delta,
        name="Ekya",
        clock=clock,
        batched_planning=batched_planning,
    )
    sites = []
    for index in range(num_sites):
        spec_kwargs = dict(
            name=f"site-{index}",
            num_gpus=gpus_per_site,
            delta=delta,
            min_inference_accuracy=a_min,
            window_duration=durations[index % len(durations)],
        )
        if links:
            spec_kwargs["link"] = links[index % len(links)]
        sites.append(
            EdgeSite(
                SiteSpec(**spec_kwargs),
                dynamics=dynamics,
                policy=policy,
                verify_placement=verify_placement,
                sanitize=sanitize,
            )
        )
    if isinstance(admission, str):
        admission = build_admission(
            admission,
            dynamics,
            seed=seed + 2,
            shared_profiles=sharing.store if sharing is not None else None,
        )
    if isinstance(control_policy, str):
        control_policy = build_policy(control_policy)
    controller = FleetController(
        sites,
        dynamics=dynamics,
        admission=admission,
        migration_cost=migration_cost,
        overload_factor=overload_factor,
        max_migrations_per_window=max_migrations_per_window,
        profile_sharing=sharing,
        preemptive_sites=preemptive_sites,
        wan_faults=wan_faults,
        telemetry=telemetry,
        control_policy=control_policy,
        sanitize=sanitize,
        batched_planning=batched_planning,
        seed=seed,
    )
    total_streams = num_sites * streams_per_site
    if total_streams:
        # Streams are built before their site is known, so they are sized to
        # the reference duration; admission re-sizes each to its owning
        # site's window (FleetController._resync_stream_window), as it does
        # for flash crowds and migrations.
        controller.admit_all(
            make_workload(
                dataset,
                total_streams,
                seed=seed,
                window_duration=controller.reference_window_duration,
            )
        )
    return controller
