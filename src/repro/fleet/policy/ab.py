"""A/B harness: replay identical seeded calendars under two control policies.

The only honest way to compare control policies is to hold *everything*
else fixed: the same fleet shape, the same seeds, the same scenario events
at the same absolute instants, the same :class:`~repro.utils.clock.
ManualClock`.  :func:`run_policy_scenario` builds exactly that fleet twice
— once per policy — so every difference in the outcome is attributable to
the control decisions alone.

Three :func:`reference_scenarios` exercise the regimes where prediction
should pay (they are the fixtures of the acceptance test in
``tests/integration/test_policy_ab.py`` and of ``benchmarks/
bench_policy.py``):

* ``flash_crowd`` — a mid-run arrival burst on one site; a reactive
  rebalancer migrates blindly and cancels in-flight retrainings, a
  predictive one weighs each move's accuracy profit against the wasted
  GPU-seconds.
* ``wan_degradation`` — one site's WAN collapses mid-run; migrations
  through the degraded link cost far more than usual, which the predictive
  policy's WAN-cost term sees and the greedy policy does not.
* ``gpu_flaps`` — partial GPU failures shrink sites mid-window; retrainings
  that can no longer finish before the boundary burn GPU-seconds for
  nothing unless proactively cancelled.

``scripts/run_policy_ab.py`` is the CLI wrapper; results feed
``BENCH_fleet.json`` under the ``"policy"`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...exceptions import FleetError
from ...utils.clock import ManualClock
from ..scenarios import FlashCrowd, GpuFailure, Scenario, ScenarioEvent, WanDegradation
from .base import ControlPolicy

__all__ = [
    "AbComparison",
    "AbScenario",
    "PolicyRun",
    "reference_scenarios",
    "run_policy_ab",
    "run_policy_scenario",
]

#: Metrics every :class:`PolicyRun` carries; deltas are predictive - greedy
#: except accuracies, reported so "up is good" for the first two rows.
COMPARED_METRICS = (
    "mean_accuracy",
    "p10_worst_stream_accuracy",
    "wasted_gpu_seconds",
    "total_migration_seconds",
    "migration_count",
)


@dataclass(frozen=True)
class AbScenario:
    """One replayable fleet + scenario fixture for a policy comparison."""

    name: str
    events: Tuple[ScenarioEvent, ...] = ()
    num_sites: int = 3
    streams_per_site: int = 4
    gpus_per_site: int = 2
    num_windows: int = 5
    window_duration: float = 200.0
    control_interval: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_sites < 2:
            raise FleetError("an A/B scenario needs >= 2 sites to migrate between")
        if self.num_windows < 1:
            raise FleetError("num_windows must be >= 1")


def reference_scenarios() -> List[AbScenario]:
    """The three committed fixtures the acceptance criteria run against."""
    return [
        AbScenario(
            name="flash_crowd",
            events=(
                FlashCrowd(at_seconds=250.0, num_streams=5, site="site-0"),
            ),
        ),
        AbScenario(
            name="wan_degradation",
            events=(
                FlashCrowd(at_seconds=230.0, num_streams=5, site="site-1"),
                WanDegradation(
                    site="site-1",
                    at_seconds=210.0,
                    until_at=810.0,
                    uplink_factor=0.08,
                    downlink_factor=0.08,
                ),
            ),
            # One extra window past the WAN restore: holding migrations
            # until the link recovers only pays if the run lives to see it.
            num_windows=6,
        ),
        AbScenario(
            name="gpu_flaps",
            events=(
                GpuFailure(site="site-0", at_seconds=230.0, recovery_at=430.0),
                GpuFailure(site="site-2", at_seconds=620.0, recovery_at=820.0),
                FlashCrowd(at_seconds=430.0, num_streams=2, site="site-2"),
            ),
        ),
    ]


@dataclass(frozen=True)
class PolicyRun:
    """One policy's outcome on one scenario: the compared metric slice."""

    policy: str
    metrics: Dict[str, float] = field(hash=False)

    @classmethod
    def from_summary(cls, policy: str, summary: Dict[str, object]) -> "PolicyRun":
        return cls(
            policy=policy,
            metrics={key: float(summary[key]) for key in COMPARED_METRICS},
        )


@dataclass(frozen=True)
class AbComparison:
    """Greedy vs predictive on one scenario, plus the derived deltas."""

    scenario: str
    greedy: PolicyRun
    predictive: PolicyRun

    @property
    def deltas(self) -> Dict[str, float]:
        """Predictive minus greedy, per compared metric."""
        return {
            key: self.predictive.metrics[key] - self.greedy.metrics[key]
            for key in COMPARED_METRICS
        }

    @property
    def predictive_wins(self) -> bool:
        """The acceptance criterion: better tail accuracy AND less waste."""
        return (
            self.deltas["p10_worst_stream_accuracy"] > 0.0
            and self.deltas["wasted_gpu_seconds"] < 0.0
        )


def run_policy_scenario(
    spec: AbScenario, policy: Union[str, ControlPolicy]
) -> Dict[str, object]:
    """Run one scenario under one policy; returns the full summary mapping.

    Builds the fleet fresh (same seed, :class:`ManualClock`, preemptive
    sites, profile sharing) so repeated calls — and the two arms of an A/B
    pair — replay the identical event calendar.
    """
    # Local import: the policy package must stay importable by the factory,
    # so the harness (which needs the factory) cannot be a package-level
    # import there.
    from ..factory import make_fleet
    from ..simulator import FleetSimulator

    clock = ManualClock()
    controller = make_fleet(
        spec.num_sites,
        spec.streams_per_site,
        gpus_per_site=spec.gpus_per_site,
        window_duration=spec.window_duration,
        seed=spec.seed,
        clock=clock,
        preemptive_sites=True,
        profile_sharing=True,
        control_policy=policy,
    )
    simulator = FleetSimulator(
        controller,
        Scenario(list(spec.events)),
        clock=clock,
        control_interval=spec.control_interval,
    )
    return simulator.run(spec.num_windows).summary()


def run_policy_ab(
    scenarios: Optional[Sequence[AbScenario]] = None,
    *,
    policies: Tuple[Union[str, ControlPolicy], Union[str, ControlPolicy]] = (
        "greedy",
        "predictive",
    ),
) -> List[AbComparison]:
    """Run every scenario under both policies; one comparison per scenario."""
    specs = list(scenarios) if scenarios is not None else reference_scenarios()
    comparisons = []
    for spec in specs:
        baseline, candidate = policies
        greedy = PolicyRun.from_summary(
            _policy_label(baseline), run_policy_scenario(spec, baseline)
        )
        predictive = PolicyRun.from_summary(
            _policy_label(candidate), run_policy_scenario(spec, candidate)
        )
        comparisons.append(
            AbComparison(scenario=spec.name, greedy=greedy, predictive=predictive)
        )
    return comparisons


def _policy_label(policy: Union[str, ControlPolicy]) -> str:
    return policy if isinstance(policy, str) else policy.name
