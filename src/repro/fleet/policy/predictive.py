"""The predictive profit-driven control plane.

Where the greedy default migrates on *load*, this policy migrates on
predicted *net accuracy profit* — the paper's thesis applied to the
control plane: every control action should pay for itself in expected
window-average accuracy.

For each candidate move (victim stream, destination site) the policy
predicts:

* **Gain** — the destination estimate minus the status-quo estimate at the
  source, both from :meth:`~repro.fleet.admission.AccuracyGreedyAdmission.
  score` (which folds in the fleet profile store's post-retraining curves
  when sharing is on).  Positive gain is discounted by a *staleness
  confidence*: with profile decay enabled, curves that last aggregated a
  push ``s`` seconds ago are trusted with weight ``0.5 ** (s /
  half_life)`` — the store's own decay law used as a drift forecast.
* **WAN cost** — the checkpoint transfer time under the *current* link
  state (degraded or faulty links make migrations proportionally less
  attractive), normalised by the destination's window.  The default
  ``wan_cost_weight`` is below 1 because the transfer is paid once while
  the gain recurs every remaining window the placement persists — the
  weight amortises a one-shot cost over that short horizon.
* **Cancellation waste** — on preemptive fleets, the GPU-seconds the
  source site has already sunk into the victim's in-flight retraining,
  which a mid-window departure would write off.  Victims whose retraining
  has not started paying (still waiting on a checkpoint) or has already
  settled carry no such penalty — exactly the "prefer victims whose
  retraining hasn't started paying or has already settled" rule.

Moves whose best profit still does not clear ``min_profit`` are rejected
(counted as ``migrations_rejected`` in the fleet summary) — the policy
would rather do nothing than thrash.  Destinations with ``backlog_limit``
or more checkpoints already in flight toward them are excluded outright:
migrating into a congested site queues behind its WAN backlog.

Independently of migration, on preemptive fleets the policy proactively
cancels in-flight retrainings that no longer pay — completion at or past
the window end (e.g. after a GPU flap rescaled the job), or a remaining
pay fraction below ``cancellation_pay_threshold`` — whenever the site has
other accelerable in-flight retrainings to absorb the reclaimed
GPU-seconds via the plan/settle machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ...exceptions import FleetError
from ...profiles.fleet_store import stream_profile_key
from ..admission import AccuracyGreedyAdmission
from .base import ControlPolicy, ControlSignals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..controller import FleetController
    from ..migration import MigrationEvent
    from ..site import EdgeSite

__all__ = ["PredictiveProfitPolicy"]

#: ``(profit, victim, source, destination)`` — a fully-scored candidate move.
_Candidate = Tuple[float, str, "EdgeSite", "EdgeSite"]


class PredictiveProfitPolicy(ControlPolicy):
    """Migrate and cancel on predicted net accuracy profit (see module doc)."""

    name = "predictive"
    wants_signals = True

    def __init__(
        self,
        *,
        min_profit: float = 0.0,
        wan_cost_weight: float = 0.4,
        cancellation_cost_weight: float = 1.0,
        backlog_limit: int = 2,
        cancellation_pay_threshold: float = 0.05,
    ) -> None:
        if wan_cost_weight < 0 or cancellation_cost_weight < 0:
            raise FleetError("profit cost weights must be non-negative")
        if backlog_limit < 1:
            raise FleetError("backlog_limit must be at least 1")
        if not 0.0 <= cancellation_pay_threshold <= 1.0:
            raise FleetError("cancellation_pay_threshold must be within [0, 1]")
        self._min_profit = min_profit
        self._wan_cost_weight = wan_cost_weight
        self._cancellation_cost_weight = cancellation_cost_weight
        self._backlog_limit = backlog_limit
        self._cancellation_pay_threshold = cancellation_pay_threshold

    # ------------------------------------------------------------- main entry
    def rebalance(
        self,
        controller: "FleetController",
        window_index: int,
        signals: Optional[ControlSignals] = None,
    ) -> List["MigrationEvent"]:
        events: List["MigrationEvent"] = []
        healthy = controller.healthy_sites
        if len(healthy) >= 2 and controller.max_migrations_per_window > 0:
            events = self._migration_round(controller, healthy, window_index, signals)
        if signals is not None:
            self._cancellation_round(controller, signals)
        return events

    # -------------------------------------------------------------- migration
    def _migration_round(
        self,
        controller: "FleetController",
        healthy: List["EdgeSite"],
        window_index: int,
        signals: Optional[ControlSignals],
    ) -> List["MigrationEvent"]:
        sharing = controller.profile_sharing
        scorer = AccuracyGreedyAdmission(
            controller.dynamics,
            shared_profiles=sharing.store if sharing is not None else None,
        )
        events: List["MigrationEvent"] = []
        while len(events) < controller.max_migrations_per_window:
            best = self._best_candidate(
                controller, scorer, healthy, window_index, signals
            )
            if best is None:
                break
            profit, victim, _, destination = best
            if profit <= self._min_profit:
                # Candidates existed but none pays: doing nothing beats
                # thrashing.  One rejection per scan — the remaining
                # candidates are by construction no better.
                controller.control_counters["migrations_rejected"] += 1
                break
            events.append(
                controller._migrate(victim, destination, window_index, "predictive")
            )
        return events

    def _best_candidate(
        self,
        controller: "FleetController",
        scorer: AccuracyGreedyAdmission,
        healthy: List["EdgeSite"],
        window_index: int,
        signals: Optional[ControlSignals],
    ) -> Optional[_Candidate]:
        now = signals.now if signals is not None else 0.0
        backlog = self._backlog_by_site(controller, signals)
        best: Optional[_Candidate] = None
        best_key: Optional[Tuple[float, str, str]] = None
        for source in healthy:
            if source.num_streams < 2:
                continue  # never empty a site — same floor as greedy
            for victim in sorted(source.stream_names):
                if (
                    signals is not None
                    and signals.transfer_arrivals.get(victim, now) > now
                ):
                    continue  # checkpoint still in flight — not movable yet
                stream = source.server.stream(victim)
                status_quo = scorer.score(
                    stream, source, window_index, already_placed=True
                )
                confidence = self._confidence(controller, stream, now)
                waste_penalty = self._cancellation_penalty(source, victim, signals)
                for destination in healthy:
                    if destination.name == source.name:
                        continue
                    if backlog.get(destination.name, 0) >= self._backlog_limit:
                        continue  # congested: WAN backlog already queued there
                    profit = self._profit(
                        controller,
                        scorer,
                        stream,
                        source,
                        destination,
                        window_index,
                        status_quo,
                        confidence,
                        waste_penalty,
                    )
                    key = (-profit, victim, destination.name)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = (profit, victim, source, destination)
        return best

    def _profit(
        self,
        controller: "FleetController",
        scorer: AccuracyGreedyAdmission,
        stream,
        source: "EdgeSite",
        destination: "EdgeSite",
        window_index: int,
        status_quo: float,
        confidence: float,
        waste_penalty: float,
    ) -> float:
        gain = scorer.score(stream, destination, window_index) - status_quo
        if gain > 0.0:
            # Stale curves → less trust in the predicted upside.  Downside
            # estimates stay undiscounted: uncertainty never makes a losing
            # move look safer.
            gain *= confidence
        transfer = controller.migration_cost.transfer_seconds(
            source.link, destination.link
        )
        wan_cost = transfer / destination.spec.window_duration
        return (
            gain
            - self._wan_cost_weight * wan_cost
            - self._cancellation_cost_weight * waste_penalty
        )

    def _cancellation_penalty(
        self, source: "EdgeSite", victim: str, signals: Optional[ControlSignals]
    ) -> float:
        """Sunk GPU-seconds a mid-window departure would write off, as a
        fraction of the source window's total GPU-seconds."""
        if signals is None:
            return 0.0
        info = signals.inflight_at(source.name, victim)
        if info is None:
            return 0.0  # nothing in flight: already settled, or never planned
        burned = info.burned_gpu_seconds(signals.now)
        capacity = source.spec.window_duration * max(source.spec.num_gpus, 1)
        return burned / capacity

    def _confidence(self, controller: "FleetController", stream, now: float) -> float:
        """Drift/staleness trust in the store's curves for this stream."""
        sharing = controller.profile_sharing
        if sharing is None:
            return 1.0
        store = sharing.store
        half_life = store.decay_half_life
        if half_life is None:
            return 1.0
        last = store.last_push_at(stream_profile_key(stream))
        if last is None:
            return 1.0  # no curve history: the score already fell back cold
        staleness = max(0.0, now - last)
        return 0.5 ** (staleness / half_life)

    @staticmethod
    def _backlog_by_site(
        controller: "FleetController", signals: Optional[ControlSignals]
    ) -> Dict[str, int]:
        """In-flight WAN checkpoints per owning site — the congestion signal."""
        counts: Dict[str, int] = {}
        if signals is None:
            return counts
        for stream_name, arrival in signals.transfer_arrivals.items():
            if arrival <= signals.now:
                continue
            try:
                owner = controller.site_of(stream_name)
            except FleetError:
                continue  # transfer outlived the stream (e.g. evacuated away)
            counts[owner.name] = counts.get(owner.name, 0) + 1
        return counts

    # ----------------------------------------------------- proactive cancels
    def _cancellation_round(
        self, controller: "FleetController", signals: ControlSignals
    ) -> None:
        for site_name in sorted(signals.inflight):
            active = [
                info
                for info in signals.inflight[site_name].values()
                if info.expected_completion > signals.now
            ]
            for info in sorted(active, key=lambda item: item.stream):
                if signals.now >= info.window_end:
                    continue  # window about to settle — nothing left to reclaim
                pay = info.pay_fraction(signals.now)
                if pay >= self._cancellation_pay_threshold:
                    continue  # still pays: let it land
                if pay > 0.0:
                    # Marginal: the job still lands in-window, so killing it
                    # only makes sense if the reclaimed GPU-seconds actually
                    # accelerate a surviving retraining.
                    survivors = [
                        other
                        for other in active
                        if other.stream != info.stream and other.accelerable
                    ]
                    if not survivors:
                        continue
                # pay <= 0 is unconditional: the job finishes at or past the
                # window end (flap-rescaled, or planned past it outright) —
                # every further GPU-second it burns is pure waste.
                controller.request_cancellation(site_name, info.stream)
