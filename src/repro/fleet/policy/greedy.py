"""The default control policy: greedy load rebalancing.

This is the pre-policy ``FleetController.rebalance`` loop extracted
verbatim — same float arithmetic, same iteration order, same name-based
tie-breaks — so a fleet built with the default policy is bit-identical to
every engine before the policy layer existed (the golden-parity and
``run_benchmarks.py --quick`` gates pin this).

The only addition is a pure optimisation: the greedy scan's outcome is a
function of the healthy sites' load vector alone (stream counts and
effective GPUs; accuracy dynamics only pick the *victim* once a migration
is already decided), so when a scan found nothing to do and the load
vector has not changed since, the next scan provably finds nothing too
and is skipped.  Skips are counted in the fleet summary as
``control_scans_skipped``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .base import ControlPolicy, ControlSignals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..controller import FleetController
    from ..migration import MigrationEvent
    from ..site import EdgeSite

__all__ = ["GreedyRebalancePolicy"]

#: One healthy site's contribution to the idle-scan cache key.  ``load`` and
#: every break condition in the scan derive from exactly these integers (plus
#: the fixed ``spec.num_gpus``), so an unchanged key means an unchanged scan.
_LoadKey = Tuple[Tuple[str, int, int], ...]


class GreedyRebalancePolicy(ControlPolicy):
    """Migrate the worst-served stream off any overloaded site.

    A site is overloaded when its streams-per-GPU exceeds the controller's
    ``overload_factor`` × the healthy-fleet mean load.  Each migration moves
    the overloaded site's currently worst-served stream (lowest stale-model
    accuracy this window — it has the least to lose from the transfer and
    the most to gain from a less contended site) to the least-loaded
    healthy site.  At most ``max_migrations_per_window`` streams move per
    scan so the fleet never thrashes.

    ``skip_no_op_scans`` (on by default — it is output-identical) early-outs
    a scan when the previous scan returned no migrations and the healthy
    load vector is unchanged since.
    """

    name = "greedy"
    wants_signals = False

    def __init__(self, *, skip_no_op_scans: bool = True) -> None:
        self._skip_no_op_scans = skip_no_op_scans
        self._idle_key: Optional[_LoadKey] = None

    @staticmethod
    def _load_key(healthy) -> _LoadKey:
        return tuple(
            (site.name, site.num_streams, site.effective_gpus) for site in healthy
        )

    @staticmethod
    def _worst_served_stream(
        controller: "FleetController", source: "EdgeSite", window_index: int
    ) -> str:
        """The source site's lowest stale-model-accuracy stream, name tie-break.

        ``source`` is rebound on every pass of the rebalance loop, so the
        selection closes over it here — inside a scope where it is fixed —
        rather than in a loop-level lambda.
        """

        def stale_accuracy(name: str) -> Tuple[float, str]:
            return (
                controller.dynamics.start_accuracy(source.server.stream(name), window_index),
                name,
            )

        return min(source.stream_names, key=stale_accuracy)

    def rebalance(
        self,
        controller: "FleetController",
        window_index: int,
        signals: Optional[ControlSignals] = None,
    ) -> List["MigrationEvent"]:
        events: List["MigrationEvent"] = []
        healthy = controller.healthy_sites
        if len(healthy) < 2:
            return events
        load_key: Optional[_LoadKey] = None
        if self._skip_no_op_scans:
            load_key = self._load_key(healthy)
            if load_key == self._idle_key:
                controller.control_counters["control_scans_skipped"] += 1
                return events
        while len(events) < controller.max_migrations_per_window:
            loads = [site.load for site in healthy]
            mean_load = sum(loads) / len(loads)
            source = max(healthy, key=lambda site: (site.load, site.name))
            destination = min(healthy, key=lambda site: (site.load, site.name))
            if source.num_streams < 2 or mean_load <= 0:
                break
            if source.load <= controller.overload_factor * mean_load:
                break
            # Moving one stream must actually close the gap, else the same
            # stream would bounce between the two sites forever.
            gap_after = (source.load - 1.0 / source.spec.num_gpus) - (
                destination.load + 1.0 / destination.spec.num_gpus
            )
            if gap_after < 0:
                break
            victim = self._worst_served_stream(controller, source, window_index)
            events.append(
                controller._migrate(victim, destination, window_index, "overload")
            )
        # Only a provably-idle scan is cacheable: migrations change loads,
        # and any other mutation (admission, failure, flap) changes the key.
        self._idle_key = load_key if not events else None
        return events
