"""Control-policy interface: what runs at every fleet ``ControlTick``.

The :class:`~repro.fleet.controller.FleetController` owns the *mechanism* of
moving streams between sites (detach/attach, WAN cost, departure hooks); a
:class:`ControlPolicy` owns the *decision* of which streams move where, and
whether an in-flight retraining should be proactively cancelled.  The
controller delegates every :meth:`~repro.fleet.controller.FleetController.
rebalance` call to its installed policy, so swapping the control plane is a
``make_fleet(control_policy=...)`` knob rather than a fork of the engine.

Policies that set :attr:`ControlPolicy.wants_signals` receive a
:class:`ControlSignals` snapshot from the fleet simulator at every tick —
the simulated instant, the in-flight WAN transfer backlog and every
preemptive site's in-flight retrainings.  The default greedy policy wants
none of it (``wants_signals = False``), so the default engine builds no
snapshot and stays bit-identical to the pre-policy controller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..controller import FleetController
    from ..migration import MigrationEvent

__all__ = ["ControlPolicy", "ControlSignals", "InflightRetraining"]


@dataclass(frozen=True)
class InflightRetraining:
    """One stream's in-flight retraining at a preemptive site, at tick time.

    A snapshot of the fleet simulator's open-window bookkeeping: enough for
    a policy to predict what cancelling (or migrating) the stream would
    cost and what completing it would still pay.
    """

    stream: str
    site: str
    #: Absolute simulated time the retraining currently completes at.
    expected_completion: float
    #: Current retraining GPU allocation (grows when reclaimed capacity
    #: from a cancelled neighbour accelerated the job).
    alloc: float
    #: Absolute time before which the job burns no GPU (a migrated-in
    #: stream idles until its WAN checkpoint arrives).
    ready: float
    #: Whether extra GPU allocation can accelerate the completion (False
    #: for fixed external completions, e.g. cloud-offloaded retraining).
    accelerable: bool
    #: The open window this retraining belongs to.
    window_start: float
    window_end: float

    def burned_gpu_seconds(self, now: float) -> float:
        """GPU-seconds already spent on this job by ``now`` — the work a
        cancellation at this instant would write off."""
        return max(0.0, min(now, self.expected_completion) - self.ready) * self.alloc

    def pay_fraction(self, now: float) -> float:
        """Fraction of the window the retrained model would still serve.

        The retraining only *pays* between its completion and the window
        end; at or below 0 the job finishes too late to benefit this
        window at all (its GPU burn is pure waste).
        """
        duration = self.window_end - self.window_start
        if duration <= 0:
            return 0.0
        return (self.window_end - max(now, self.expected_completion)) / duration


@dataclass(frozen=True)
class ControlSignals:
    """What the fleet simulator knows at a ``ControlTick``, for policies.

    Built only when the installed policy sets
    :attr:`ControlPolicy.wants_signals` — the default greedy plane never
    pays for the snapshot.  All maps are plain copies: a policy may iterate
    them freely while its own decisions (migrations, cancellations) mutate
    the live simulator state underneath.
    """

    #: Current simulated time.
    now: float = 0.0
    #: Absolute landing time of every in-flight WAN checkpoint transfer,
    #: keyed by stream name — the congestion/backlog signal.
    transfer_arrivals: Mapping[str, float] = field(default_factory=dict)
    #: ``site -> stream -> InflightRetraining`` for every preemptive site
    #: with an open (planned, not fully settled) window.
    inflight: Mapping[str, Mapping[str, InflightRetraining]] = field(
        default_factory=dict
    )

    def inflight_at(self, site: str, stream: str) -> Optional[InflightRetraining]:
        return self.inflight.get(site, {}).get(stream)


class ControlPolicy(abc.ABC):
    """Decides the fleet's control actions at every ``ControlTick``.

    Implementations must be deterministic given their construction
    arguments and the fleet state (ties break on names), so fleet
    simulations stay reproducible run to run.  A policy executes its
    migrations through ``controller._migrate`` (the controller remains the
    mechanism owner: WAN cost, ownership registry and departure hooks all
    live there) and its proactive cancellations through
    :meth:`~repro.fleet.controller.FleetController.request_cancellation`.
    """

    #: Label used in summaries, benchmark tables and the A/B harness.
    name: str = "policy"

    #: Whether the fleet simulator should build a :class:`ControlSignals`
    #: snapshot for this policy's ticks.  Keep ``False`` unless the policy
    #: reads it — the default engine skips the snapshot entirely.
    wants_signals: bool = False

    @abc.abstractmethod
    def rebalance(
        self,
        controller: "FleetController",
        window_index: int,
        signals: Optional[ControlSignals] = None,
    ) -> List["MigrationEvent"]:
        """Run one control decision round; return the executed migrations.

        ``signals`` is ``None`` unless :attr:`wants_signals` is set *and*
        the call came from a fleet simulator tick (direct controller calls
        pass nothing) — policies must degrade gracefully without it.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
