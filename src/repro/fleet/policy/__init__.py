"""Pluggable fleet control policies.

``base`` defines the :class:`ControlPolicy` interface and the
:class:`ControlSignals` snapshot the simulator hands signal-hungry
policies; ``greedy`` is the bit-identical default; ``predictive`` is the
profit-driven plane; ``ab`` (imported explicitly, not re-exported — it
pulls in the fleet factory) is the seeded A/B scenario harness comparing
policies on identical calendars.  See ``docs/control_plane.md``.
"""

from .base import ControlPolicy, ControlSignals, InflightRetraining
from .greedy import GreedyRebalancePolicy
from .predictive import PredictiveProfitPolicy

__all__ = [
    "ControlPolicy",
    "ControlSignals",
    "GreedyRebalancePolicy",
    "InflightRetraining",
    "PredictiveProfitPolicy",
]
