"""The fleet controller: stream ownership across many edge sites.

The paper schedules one edge server; the fleet controller is the layer above
it, deciding *which site owns which stream* while every site's thief
scheduler keeps optimising its own window locally.  Responsibilities:

* **Admission** — every new stream (initial rollout, flash crowds) is placed
  on a healthy site by the pluggable
  :class:`~repro.fleet.admission.AdmissionPolicy`.
* **Rebalancing** — at the simulator's control ticks (window boundaries by
  default, or an independent cadence mid-window), streams migrate from
  overloaded sites (streams-per-GPU above ``overload_factor`` × the fleet
  mean) to the least-loaded healthy site, paying the WAN transfer cost of
  their model checkpoint + profile.
* **Failure handling** — a failed site's streams are force-evacuated to the
  survivors; a recovered site re-enters admission and rebalancing.
* **Mid-window preemption** (``preemptive_sites=True``) — every migration
  and evacuation notifies a *departure hook* the fleet simulator installs:
  if the departing stream has an in-flight retraining at the source site,
  it is cancelled at the current simulated instant and its remaining
  GPU-seconds are reclaimed for the site's other in-flight retrainings.
  With the flag off (the default) sites settle whole windows at their
  boundary exactly as before, bit for bit.

The controller shares one accuracy-dynamics substrate across all sites, so a
migrated stream keeps its serving-model state — that is precisely what the
checkpoint + profile transfer pays for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..datasets.generators import make_stream
from ..datasets.stream import VideoStream
from ..exceptions import FleetError
from ..profiles.dynamics import StreamDynamics
from .admission import AdmissionPolicy
from .faults import WanFaultModel
from .migration import MigrationCostModel, MigrationEvent
from .site import EdgeSite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .factory import ProfileSharing
    from .telemetry import TelemetryConfig


class FleetController:
    """Owns N edge sites and the stream → site assignment between windows."""

    def __init__(
        self,
        sites: Sequence[EdgeSite],
        *,
        dynamics: StreamDynamics,
        admission: AdmissionPolicy,
        migration_cost: MigrationCostModel = MigrationCostModel(),
        overload_factor: float = 1.5,
        max_migrations_per_window: int = 4,
        stream_factory: Callable[..., VideoStream] = make_stream,
        profile_sharing: Optional["ProfileSharing"] = None,
        preemptive_sites: bool = False,
        wan_faults: Optional[WanFaultModel] = None,
        telemetry: Optional["TelemetryConfig"] = None,
        seed: int = 0,
    ) -> None:
        if not sites:
            raise FleetError("a fleet needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise FleetError("site names must be unique")
        if overload_factor < 1.0:
            raise FleetError("overload_factor must be >= 1")
        if max_migrations_per_window < 0:
            raise FleetError("max_migrations_per_window must be non-negative")
        self._sites: Dict[str, EdgeSite] = {site.name: site for site in sites}
        self._dynamics = dynamics
        self._admission = admission
        self._migration_cost = migration_cost
        self._overload_factor = overload_factor
        self._max_migrations = max_migrations_per_window
        self._stream_factory = stream_factory
        self._profile_sharing = profile_sharing
        self._preemptive_sites = preemptive_sites
        self._wan_faults = wan_faults
        self._telemetry = telemetry
        self._departure_hook: Optional[Callable[[str, str, str], None]] = None
        self._seed = seed
        self._stream_site: Dict[str, str] = {}
        self._next_index: Dict[str, int] = {}

    # ------------------------------------------------------------- accessors
    @property
    def sites(self) -> List[EdgeSite]:
        return list(self._sites.values())

    @property
    def healthy_sites(self) -> List[EdgeSite]:
        return [site for site in self._sites.values() if site.healthy]

    @property
    def dynamics(self) -> StreamDynamics:
        return self._dynamics

    @property
    def admission_policy(self) -> AdmissionPolicy:
        return self._admission

    @property
    def migration_cost(self) -> MigrationCostModel:
        return self._migration_cost

    @property
    def profile_sharing(self) -> Optional["ProfileSharing"]:
        """Cross-site profile-sharing wiring, or ``None`` (the default).

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``profile_sharing=True``; the simulator schedules
        :class:`~repro.fleet.calendar.ProfilePush` events only when this is
        present, so sharing is strictly opt-in.
        """
        return self._profile_sharing

    @property
    def preemptive_sites(self) -> bool:
        """Whether sites run event-driven internals with mid-window preemption.

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``preemptive_sites=True``.  The :class:`~repro.fleet.simulator.
        FleetSimulator` reads this flag: preemptive fleets plan each window
        at its boundary, settle retrainings at per-stream
        :class:`~repro.fleet.calendar.RetrainingComplete` events and cancel
        in-flight retrainings when their stream departs mid-window.  Off by
        default — the boundary-settled engine is reproduced bit for bit.
        """
        return self._preemptive_sites

    @property
    def wan_faults(self) -> Optional[WanFaultModel]:
        """The fleet's WAN loss model, or ``None`` (lossless, the default).

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``wan_faults=...``.  The :class:`~repro.fleet.simulator.
        FleetSimulator` reads this to sample checkpoint-transfer retry
        chains and profile-push losses; with ``None`` no fault RNG is ever
        drawn and the lossless engine is reproduced bit for bit.
        """
        return self._wan_faults

    @property
    def telemetry(self) -> Optional["TelemetryConfig"]:
        """Telemetry-plane sizing for simulators built over this fleet.

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``telemetry=...``; ``None`` means the
        :class:`~repro.fleet.simulator.FleetSimulator` uses the default
        :class:`~repro.fleet.telemetry.TelemetryConfig` (sized so nothing
        evicts at current benchmark scales).
        """
        return self._telemetry

    def set_departure_hook(
        self, hook: Optional[Callable[[str, str, str], None]]
    ) -> None:
        """Install the mid-window departure observer (the fleet simulator).

        ``hook(stream_name, source_site, reason)`` is invoked for every
        migration and evacuation, *after* the stream has moved, at the
        instant the controlling event fires — which is what lets a
        preemptive simulator cancel the departing stream's in-flight
        retraining at the source site and reclaim its remaining
        GPU-seconds.  Pass ``None`` to detach.
        """
        self._departure_hook = hook

    @property
    def homogeneous_windows(self) -> bool:
        """Whether every site shares one ``window_duration``."""
        return len({site.spec.window_duration for site in self._sites.values()}) == 1

    @property
    def window_duration(self) -> float:
        """The shared window duration; heterogeneous fleets have none."""
        if not self.homogeneous_windows:
            raise FleetError(
                "sites have different window_durations — there is no shared "
                "window duration; use each site's spec.window_duration"
            )
        return next(iter(self._sites.values())).spec.window_duration

    @property
    def reference_window_duration(self) -> float:
        """Longest site window — the duration new streams are sized against
        when no target site is known yet (the shared duration when the fleet
        is homogeneous)."""
        return max(site.spec.window_duration for site in self._sites.values())

    @property
    def num_streams(self) -> int:
        return len(self._stream_site)

    def site(self, name: str) -> EdgeSite:
        try:
            return self._sites[name]
        except KeyError as exc:
            raise FleetError(f"no site named {name!r} in this fleet") from exc

    def site_of(self, stream_name: str) -> EdgeSite:
        try:
            return self._sites[self._stream_site[stream_name]]
        except KeyError as exc:
            raise FleetError(f"stream {stream_name!r} is not admitted to this fleet") from exc

    # -------------------------------------------------------------- admission
    def admit(
        self,
        stream: VideoStream,
        window_index: int,
        *,
        site: Optional[str] = None,
    ) -> EdgeSite:
        """Place one new stream on a healthy site and attach it there."""
        if stream.name in self._stream_site:
            raise FleetError(f"stream {stream.name!r} is already admitted")
        if site is not None:
            target = self.site(site)
            if not target.healthy:
                raise FleetError(f"cannot admit to failed site {site!r}")
        else:
            target = self._admission.choose_site(stream, self.healthy_sites, window_index)
        target.attach(stream)
        self._resync_stream_window(stream, target)
        self._stream_site[stream.name] = target.name
        return target

    @staticmethod
    def _resync_stream_window(stream: VideoStream, site: EdgeSite) -> None:
        """Size the stream's windows to the site it now runs on.

        A stream's content is generated per window lazily, so whenever it
        lands on a site (admission, flash crowd, migration) its
        ``window_duration`` follows that site's cadence — on a
        heterogeneous-window fleet a stream built for 200 s windows must not
        keep producing 200 s of frames on a 150 s site.  Windows already
        realised are unaffected; on homogeneous fleets this is a no-op.
        """
        if stream.window_duration != site.spec.window_duration:
            stream.window_duration = site.spec.window_duration

    def admit_all(self, streams: Sequence[VideoStream], window_index: int = 0) -> None:
        for stream in streams:
            self.admit(stream, window_index)

    def spawn_streams(
        self,
        dataset: str,
        count: int,
        window_index: int,
        *,
        site: Optional[str] = None,
    ) -> List[VideoStream]:
        """Create and admit ``count`` fresh streams (flash-crowd arrivals)."""
        admitted: List[VideoStream] = []
        duration = (
            self.site(site).spec.window_duration
            if site is not None
            else self.reference_window_duration
        )
        for _ in range(count):
            index = self._next_index.get(dataset, 0)
            while f"{dataset}-{index}" in self._stream_site:
                index += 1
            self._next_index[dataset] = index + 1
            stream = self._stream_factory(
                dataset,
                index,
                seed=self._seed,
                window_duration=duration,
            )
            self.admit(stream, window_index, site=site)
            admitted.append(stream)
        return admitted

    # -------------------------------------------------------------- migration
    def _migrate(
        self,
        stream_name: str,
        destination: EdgeSite,
        window_index: int,
        reason: str,
    ) -> MigrationEvent:
        source = self.site_of(stream_name)
        if source.name == destination.name:
            raise FleetError(f"stream {stream_name!r} is already on {destination.name!r}")
        stream = source.detach(stream_name)
        destination.attach(stream)
        self._resync_stream_window(stream, destination)
        self._stream_site[stream_name] = destination.name
        event = MigrationEvent(
            stream_name=stream_name,
            source=source.name,
            destination=destination.name,
            window_index=window_index,
            transfer_seconds=self._migration_cost.transfer_seconds(
                source.link, destination.link
            ),
            reason=reason,
        )
        if self._departure_hook is not None:
            self._departure_hook(stream_name, source.name, reason)
        return event

    def rebalance(self, window_index: int) -> List[MigrationEvent]:
        """Migrate streams off overloaded sites at a window boundary.

        A site is overloaded when its streams-per-GPU exceeds
        ``overload_factor`` × the healthy-fleet mean load.  Each migration
        moves the overloaded site's currently worst-served stream (lowest
        stale-model accuracy this window — it has the least to lose from the
        transfer and the most to gain from a less contended site) to the
        least-loaded healthy site.  At most ``max_migrations_per_window``
        streams move per boundary so the fleet never thrashes.
        """
        events: List[MigrationEvent] = []
        healthy = self.healthy_sites
        if len(healthy) < 2:
            return events
        while len(events) < self._max_migrations:
            loads = [site.load for site in healthy]
            mean_load = sum(loads) / len(loads)
            source = max(healthy, key=lambda site: (site.load, site.name))
            destination = min(healthy, key=lambda site: (site.load, site.name))
            if source.num_streams < 2 or mean_load <= 0:
                break
            if source.load <= self._overload_factor * mean_load:
                break
            # Moving one stream must actually close the gap, else the same
            # stream would bounce between the two sites forever.
            gap_after = (source.load - 1.0 / source.spec.num_gpus) - (
                destination.load + 1.0 / destination.spec.num_gpus
            )
            if gap_after < 0:
                break
            victim = min(
                source.stream_names,
                key=lambda name: (
                    self._dynamics.start_accuracy(source.server.stream(name), window_index),
                    name,
                ),
            )
            events.append(self._migrate(victim, destination, window_index, "overload"))
        return events

    # ---------------------------------------------------------------- failure
    def fail_site(self, name: str, window_index: int) -> List[MigrationEvent]:
        """Mark a site failed and force-evacuate every stream it owned."""
        site = self.site(name)
        if not site.healthy:
            return []
        site.fail()
        events: List[MigrationEvent] = []
        for stream_name in sorted(site.stream_names):
            survivors = self.healthy_sites
            if not survivors:
                raise FleetError(
                    f"site {name!r} failed and no healthy site is left to "
                    f"evacuate {stream_name!r} to"
                )
            stream = site.server.stream(stream_name)
            destination = self._admission.choose_site(stream, survivors, window_index)
            events.append(self._migrate(stream_name, destination, window_index, "evacuation"))
        return events

    def recover_site(self, name: str) -> EdgeSite:
        """Bring a failed site back; rebalancing will repopulate it."""
        site = self.site(name)
        site.recover()
        return site

    def __repr__(self) -> str:
        healthy = sum(1 for site in self._sites.values() if site.healthy)
        return (
            f"FleetController(sites={len(self._sites)}, healthy={healthy}, "
            f"streams={self.num_streams}, admission={self._admission.name!r})"
        )
