"""The fleet controller: stream ownership across many edge sites.

The paper schedules one edge server; the fleet controller is the layer above
it, deciding *which site owns which stream* while every site's thief
scheduler keeps optimising its own window locally.  Responsibilities:

* **Admission** — every new stream (initial rollout, flash crowds) is placed
  on a healthy site by the pluggable
  :class:`~repro.fleet.admission.AdmissionPolicy`.
* **Rebalancing** — at the simulator's control ticks (window boundaries by
  default, or an independent cadence mid-window), the controller delegates
  to its pluggable :class:`~repro.fleet.policy.ControlPolicy`.  The default
  :class:`~repro.fleet.policy.GreedyRebalancePolicy` migrates streams from
  overloaded sites (streams-per-GPU above ``overload_factor`` × the fleet
  mean) to the least-loaded healthy site, paying the WAN transfer cost of
  their model checkpoint + profile; the
  :class:`~repro.fleet.policy.PredictiveProfitPolicy` instead acts on
  predicted net accuracy profit (see ``docs/control_plane.md``).
* **Failure handling** — a failed site's streams are force-evacuated to the
  survivors; a recovered site re-enters admission and rebalancing.
* **Mid-window preemption** (``preemptive_sites=True``) — every migration
  and evacuation notifies a *departure hook* the fleet simulator installs:
  if the departing stream has an in-flight retraining at the source site,
  it is cancelled at the current simulated instant and its remaining
  GPU-seconds are reclaimed for the site's other in-flight retrainings.
  With the flag off (the default) sites settle whole windows at their
  boundary exactly as before, bit for bit.

The controller shares one accuracy-dynamics substrate across all sites, so a
migrated stream keeps its serving-model state — that is precisely what the
checkpoint + profile transfer pays for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..datasets.generators import make_stream
from ..datasets.stream import VideoStream
from ..exceptions import FleetError
from ..profiles.dynamics import StreamDynamics
from .admission import AdmissionPolicy
from .faults import WanFaultModel
from .migration import MigrationCostModel, MigrationEvent
from .policy.base import ControlPolicy, ControlSignals
from .policy.greedy import GreedyRebalancePolicy
from .site import EdgeSite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .factory import ProfileSharing
    from .telemetry import TelemetryConfig


class FleetController:
    """Owns N edge sites and the stream → site assignment between windows."""

    def __init__(
        self,
        sites: Sequence[EdgeSite],
        *,
        dynamics: StreamDynamics,
        admission: AdmissionPolicy,
        migration_cost: MigrationCostModel = MigrationCostModel(),
        overload_factor: float = 1.5,
        max_migrations_per_window: int = 4,
        stream_factory: Callable[..., VideoStream] = make_stream,
        profile_sharing: Optional["ProfileSharing"] = None,
        preemptive_sites: bool = False,
        wan_faults: Optional[WanFaultModel] = None,
        telemetry: Optional["TelemetryConfig"] = None,
        control_policy: Optional[ControlPolicy] = None,
        sanitize: bool = False,
        batched_planning: bool = False,
        seed: int = 0,
    ) -> None:
        if not sites:
            raise FleetError("a fleet needs at least one site")
        if batched_planning:
            # The event loop batches whole same-instant boundary cohorts into
            # one solve, so every site's policy must expose the split
            # prepare/solve surface and a cohort-capable scheduler.
            for site in sites:
                policy = site.policy
                scheduler = getattr(policy, "scheduler", None)
                if not hasattr(policy, "prepare_request") or not hasattr(
                    scheduler, "schedule_cohort"
                ):
                    raise FleetError(
                        f"batched_planning needs a cohort-capable policy on every "
                        f"site; {site.name!r} has {policy.name!r} "
                        f"(build it with EkyaPolicy(batched_planning=True))"
                    )
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise FleetError("site names must be unique")
        if overload_factor < 1.0:
            raise FleetError("overload_factor must be >= 1")
        if max_migrations_per_window < 0:
            raise FleetError("max_migrations_per_window must be non-negative")
        self._sites: Dict[str, EdgeSite] = {site.name: site for site in sites}
        self._dynamics = dynamics
        self._admission = admission
        self._migration_cost = migration_cost
        self._overload_factor = overload_factor
        self._max_migrations = max_migrations_per_window
        self._stream_factory = stream_factory
        self._profile_sharing = profile_sharing
        self._preemptive_sites = preemptive_sites
        self._batched_planning = batched_planning
        self._wan_faults = wan_faults
        self._telemetry = telemetry
        self._control_policy = (
            control_policy if control_policy is not None else GreedyRebalancePolicy()
        )
        self._sanitizer = None
        if sanitize:
            # Local import: debug tooling layered on the engine, not a
            # package-level engine dependency.
            from ..analysis.sanitizer import PuritySanitizer

            self._sanitizer = PuritySanitizer()
        self._departure_hook: Optional[Callable[[str, str, str], None]] = None
        self._cancellation_hook: Optional[Callable[[str, str, str], bool]] = None
        self._seed = seed
        self._stream_site: Dict[str, str] = {}
        self._next_index: Dict[str, int] = {}
        #: Control-plane counters surfaced in ``FleetResult.summary()``.
        #: Policies mutate these directly (in-package trusted).
        self.control_counters: Dict[str, int] = {
            "control_scans_skipped": 0,
            "migrations_rejected": 0,
            "proactive_cancellations": 0,
        }

    # ------------------------------------------------------------- accessors
    @property
    def sites(self) -> List[EdgeSite]:
        return list(self._sites.values())

    @property
    def healthy_sites(self) -> List[EdgeSite]:
        return [site for site in self._sites.values() if site.healthy]

    @property
    def dynamics(self) -> StreamDynamics:
        return self._dynamics

    @property
    def admission_policy(self) -> AdmissionPolicy:
        return self._admission

    @property
    def migration_cost(self) -> MigrationCostModel:
        return self._migration_cost

    @property
    def control_policy(self) -> ControlPolicy:
        """The policy :meth:`rebalance` delegates to (default: greedy)."""
        return self._control_policy

    @property
    def overload_factor(self) -> float:
        return self._overload_factor

    @property
    def max_migrations_per_window(self) -> int:
        return self._max_migrations

    @property
    def profile_sharing(self) -> Optional["ProfileSharing"]:
        """Cross-site profile-sharing wiring, or ``None`` (the default).

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``profile_sharing=True``; the simulator schedules
        :class:`~repro.fleet.calendar.ProfilePush` events only when this is
        present, so sharing is strictly opt-in.
        """
        return self._profile_sharing

    @property
    def preemptive_sites(self) -> bool:
        """Whether sites run event-driven internals with mid-window preemption.

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``preemptive_sites=True``.  The :class:`~repro.fleet.simulator.
        FleetSimulator` reads this flag: preemptive fleets plan each window
        at its boundary, settle retrainings at per-stream
        :class:`~repro.fleet.calendar.RetrainingComplete` events and cancel
        in-flight retrainings when their stream departs mid-window.  Off by
        default — the boundary-settled engine is reproduced bit for bit.
        """
        return self._preemptive_sites

    @property
    def batched_planning(self) -> bool:
        """Whether the event loop plans same-instant boundary cohorts batched.

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``batched_planning=True``.  The :class:`~repro.fleet.simulator.
        FleetSimulator` reads this flag: all sites whose ``WindowBoundary``
        fires at one instant have their requests profiled site by site, then
        solved in a single stacked
        :meth:`~repro.core.batched_planner.BatchedThiefScheduler.
        schedule_cohort` call — bit-identical to the scalar per-site path.
        """
        return self._batched_planning

    @property
    def wan_faults(self) -> Optional[WanFaultModel]:
        """The fleet's WAN loss model, or ``None`` (lossless, the default).

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``wan_faults=...``.  The :class:`~repro.fleet.simulator.
        FleetSimulator` reads this to sample checkpoint-transfer retry
        chains and profile-push losses; with ``None`` no fault RNG is ever
        drawn and the lossless engine is reproduced bit for bit.
        """
        return self._wan_faults

    @property
    def telemetry(self) -> Optional["TelemetryConfig"]:
        """Telemetry-plane sizing for simulators built over this fleet.

        Set by :func:`~repro.fleet.factory.make_fleet` when built with
        ``telemetry=...``; ``None`` means the
        :class:`~repro.fleet.simulator.FleetSimulator` uses the default
        :class:`~repro.fleet.telemetry.TelemetryConfig` (sized so nothing
        evicts at current benchmark scales).
        """
        return self._telemetry

    def set_departure_hook(
        self, hook: Optional[Callable[[str, str, str], None]]
    ) -> None:
        """Install the mid-window departure observer (the fleet simulator).

        ``hook(stream_name, source_site, reason)`` is invoked for every
        migration and evacuation, *after* the stream has moved, at the
        instant the controlling event fires — which is what lets a
        preemptive simulator cancel the departing stream's in-flight
        retraining at the source site and reclaim its remaining
        GPU-seconds.  Pass ``None`` to detach.
        """
        self._departure_hook = hook

    def set_cancellation_hook(
        self, hook: Optional[Callable[[str, str, str], bool]]
    ) -> None:
        """Install the proactive-cancellation channel (the fleet simulator).

        ``hook(site_name, stream_name, reason) -> bool`` cancels the named
        stream's in-flight retraining at the site, reclaiming its remaining
        GPU-seconds for the site's other in-flight retrainings, and returns
        whether anything was actually cancelled.  Installed only by
        preemptive simulators; without it
        :meth:`request_cancellation` is a no-op.  Pass ``None`` to detach.
        """
        self._cancellation_hook = hook

    def request_cancellation(
        self, site_name: str, stream_name: str, reason: str = "proactive_cancellation"
    ) -> bool:
        """Ask the simulator to cancel one in-flight retraining.

        The channel control policies use to reclaim GPU-seconds from
        retrainings that no longer pay.  Returns ``True`` (and counts a
        ``proactive_cancellation``) only when a retraining was actually in
        flight and got cancelled; returns ``False`` when no simulator hook
        is installed or the stream had nothing in flight.
        """
        if self._cancellation_hook is None:
            return False
        cancelled = self._cancellation_hook(site_name, stream_name, reason)
        if cancelled:
            self.control_counters["proactive_cancellations"] += 1
        return cancelled

    @property
    def homogeneous_windows(self) -> bool:
        """Whether every site shares one ``window_duration``."""
        return len({site.spec.window_duration for site in self._sites.values()}) == 1

    @property
    def window_duration(self) -> float:
        """The shared window duration; heterogeneous fleets have none."""
        if not self.homogeneous_windows:
            raise FleetError(
                "sites have different window_durations — there is no shared "
                "window duration; use each site's spec.window_duration"
            )
        return next(iter(self._sites.values())).spec.window_duration

    @property
    def reference_window_duration(self) -> float:
        """Longest site window — the duration new streams are sized against
        when no target site is known yet (the shared duration when the fleet
        is homogeneous)."""
        return max(site.spec.window_duration for site in self._sites.values())

    @property
    def num_streams(self) -> int:
        return len(self._stream_site)

    def site(self, name: str) -> EdgeSite:
        try:
            return self._sites[name]
        except KeyError as exc:
            raise FleetError(f"no site named {name!r} in this fleet") from exc

    def site_of(self, stream_name: str) -> EdgeSite:
        try:
            return self._sites[self._stream_site[stream_name]]
        except KeyError as exc:
            raise FleetError(f"stream {stream_name!r} is not admitted to this fleet") from exc

    # -------------------------------------------------------------- admission
    def admit(
        self,
        stream: VideoStream,
        window_index: int,
        *,
        site: Optional[str] = None,
    ) -> EdgeSite:
        """Place one new stream on a healthy site and attach it there."""
        if stream.name in self._stream_site:
            raise FleetError(f"stream {stream.name!r} is already admitted")
        if site is not None:
            target = self.site(site)
            if not target.healthy:
                raise FleetError(f"cannot admit to failed site {site!r}")
        else:
            target = self._admission.choose_site(stream, self.healthy_sites, window_index)
        target.attach(stream)
        self._resync_stream_window(stream, target)
        self._stream_site[stream.name] = target.name
        return target

    @staticmethod
    def _resync_stream_window(stream: VideoStream, site: EdgeSite) -> None:
        """Size the stream's windows to the site it now runs on.

        A stream's content is generated per window lazily, so whenever it
        lands on a site (admission, flash crowd, migration) its
        ``window_duration`` follows that site's cadence — on a
        heterogeneous-window fleet a stream built for 200 s windows must not
        keep producing 200 s of frames on a 150 s site.  Windows already
        realised are unaffected; on homogeneous fleets this is a no-op.
        """
        if stream.window_duration != site.spec.window_duration:
            stream.window_duration = site.spec.window_duration

    def admit_all(self, streams: Sequence[VideoStream], window_index: int = 0) -> None:
        for stream in streams:
            self.admit(stream, window_index)

    def spawn_streams(
        self,
        dataset: str,
        count: int,
        window_index: int,
        *,
        site: Optional[str] = None,
    ) -> List[VideoStream]:
        """Create and admit ``count`` fresh streams (flash-crowd arrivals)."""
        admitted: List[VideoStream] = []
        duration = (
            self.site(site).spec.window_duration
            if site is not None
            else self.reference_window_duration
        )
        for _ in range(count):
            index = self._next_index.get(dataset, 0)
            while f"{dataset}-{index}" in self._stream_site:
                index += 1
            self._next_index[dataset] = index + 1
            stream = self._stream_factory(
                dataset,
                index,
                seed=self._seed,
                window_duration=duration,
            )
            self.admit(stream, window_index, site=site)
            admitted.append(stream)
        return admitted

    # -------------------------------------------------------------- migration
    def _migrate(
        self,
        stream_name: str,
        destination: EdgeSite,
        window_index: int,
        reason: str,
    ) -> MigrationEvent:
        source = self.site_of(stream_name)
        if source.name == destination.name:
            raise FleetError(f"stream {stream_name!r} is already on {destination.name!r}")
        stream = source.detach(stream_name)
        destination.attach(stream)
        self._resync_stream_window(stream, destination)
        self._stream_site[stream_name] = destination.name
        event = MigrationEvent(
            stream_name=stream_name,
            source=source.name,
            destination=destination.name,
            window_index=window_index,
            transfer_seconds=self._migration_cost.transfer_seconds(
                source.link, destination.link
            ),
            reason=reason,
        )
        if self._departure_hook is not None:
            self._departure_hook(stream_name, source.name, reason)
        return event

    def rebalance(
        self, window_index: int, signals: Optional[ControlSignals] = None
    ) -> List[MigrationEvent]:
        """Run one control round: delegate to the installed policy.

        With the default :class:`~repro.fleet.policy.GreedyRebalancePolicy`
        this migrates streams off overloaded sites exactly as every engine
        before the policy layer did, bit for bit (see that class for the
        algorithm).  ``signals`` is the simulator-built
        :class:`~repro.fleet.policy.ControlSignals` snapshot for policies
        that declare ``wants_signals``; direct callers may omit it.

        With ``sanitize=True`` the purity sanitizer digests the shared
        dynamics around the whole scan: a control policy may *move* streams
        (and a preemptive departure settles the cancelled window, a
        dynamics no-op), but its scoring/scan phase must never commit
        accuracy state — that is the predictive plane's plan-phase purity.
        Site and stream state are legitimately mutated by executed
        migrations, so only the dynamics are guarded here.
        """
        if self._sanitizer is None:
            return self._control_policy.rebalance(self, window_index, signals)
        with self._sanitizer.guard(
            f"{self._control_policy.name} control scan (window {window_index})",
            dynamics=self._dynamics,
        ):
            return self._control_policy.rebalance(self, window_index, signals)

    # ---------------------------------------------------------------- failure
    def fail_site(self, name: str, window_index: int) -> List[MigrationEvent]:
        """Mark a site failed and force-evacuate every stream it owned."""
        site = self.site(name)
        if not site.healthy:
            return []
        site.fail()
        events: List[MigrationEvent] = []
        for stream_name in sorted(site.stream_names):
            survivors = self.healthy_sites
            if not survivors:
                raise FleetError(
                    f"site {name!r} failed and no healthy site is left to "
                    f"evacuate {stream_name!r} to"
                )
            stream = site.server.stream(stream_name)
            destination = self._admission.choose_site(stream, survivors, window_index)
            events.append(self._migrate(stream_name, destination, window_index, "evacuation"))
        return events

    def recover_site(self, name: str) -> EdgeSite:
        """Bring a failed site back; rebalancing will repopulate it."""
        site = self.site(name)
        site.recover()
        return site

    def __repr__(self) -> str:
        healthy = sum(1 for site in self._sites.values() if site.healthy)
        return (
            f"FleetController(sites={len(self._sites)}, healthy={healthy}, "
            f"streams={self.num_streams}, admission={self._admission.name!r})"
        )
