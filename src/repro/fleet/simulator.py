"""Event-driven multi-site fleet simulation on a shared window timeline.

The :class:`FleetSimulator` advances every site of a
:class:`~repro.fleet.controller.FleetController` window by window.  At each
window boundary, in order:

1. expiring effects are restored (site recoveries, WAN restorations),
2. the window's injected scenario events fire (site failures with forced
   evacuation, flash-crowd arrivals, WAN degradations),
3. the controller rebalances overloaded sites,
4. every healthy, non-idle site plans and executes its window through the
   unchanged single-server :class:`~repro.simulation.simulator.Simulator` /
   thief-scheduler path — migrated-in streams' summed WAN transfer time is
   handed to it as a retraining start delay, so the migration cost (delayed
   or forfeited retraining benefit) is realised inside the site execution
   and stays consistent with the committed model state,
5. transfer time beyond the window carries over as next window's start
   delay until the checkpoint has fully arrived.

Everything is deterministic given the construction seeds except wall-clock
measurements, which all go through the injectable clock from
:mod:`repro.utils.clock`: this simulator's ``FleetResult.wall_clock_seconds``
uses the ``clock`` passed here, and each site's
``scheduler_runtime_seconds`` uses the clock given to
:func:`~repro.fleet.factory.make_fleet`.  Pass the same
:class:`~repro.utils.clock.ManualClock` to both and fleet results are
bit-identical field for field across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..exceptions import FleetError
from ..utils.clock import Clock, Stopwatch
from ..utils.math_utils import safe_mean
from .controller import FleetController
from .metrics import FleetResult, FleetStreamOutcome, FleetWindowResult, SiteWindowStats
from .migration import MigrationEvent
from .scenarios import FlashCrowd, Scenario, SiteFailure, WanDegradation


class FleetSimulator:
    """Executes scenario events and per-site window simulation for a fleet.

    When several failure or WAN events target the same site, the *latest*
    event owns the site's state: its expiry (``recovery_window`` /
    ``until_window``) is the one that fires, and expiries scheduled by
    superseded earlier events are ignored — a re-degraded link does not snap
    back to full bandwidth when the first degradation would have ended.
    """

    def __init__(
        self,
        controller: FleetController,
        scenario: Optional[Scenario] = None,
        *,
        clock: Optional[Clock] = None,
    ) -> None:
        self._controller = controller
        self._scenario = scenario or Scenario()
        self._clock = clock
        #: window -> [(site, owning event)] expiries; an expiry only fires if
        #: its event still owns the site's state (latest event wins).
        self._pending_recoveries: Dict[int, List[tuple]] = {}
        self._pending_wan_restores: Dict[int, List[tuple]] = {}
        self._failure_owner: Dict[str, SiteFailure] = {}
        self._wan_owner: Dict[str, WanDegradation] = {}
        #: Transfer seconds still in flight past a window boundary (a WAN
        #: transfer longer than one window keeps delaying retraining until
        #: the checkpoint has fully arrived).
        self._carryover_delays: Dict[str, float] = {}

    @property
    def controller(self) -> FleetController:
        return self._controller

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    # -------------------------------------------------------------- execution
    def run(self, num_windows: int, *, start_window: int = 0) -> FleetResult:
        """Simulate ``num_windows`` consecutive shared retraining windows."""
        if num_windows < 1:
            raise FleetError("num_windows must be >= 1")
        if start_window < 0:
            raise FleetError("start_window must be non-negative")
        watch = Stopwatch(self._clock)
        result = FleetResult(
            admission_policy=self._controller.admission_policy.name,
            num_sites=len(self._controller.sites),
        )
        for window_index in range(start_window, start_window + num_windows):
            result.windows.append(self.run_window(window_index))
        result.wall_clock_seconds = watch.elapsed()
        return result

    def run_window(self, window_index: int) -> FleetWindowResult:
        """Apply events, rebalance, and execute one shared window."""
        controller = self._controller
        migrations: List[MigrationEvent] = []
        admitted: List[str] = []

        self._restore_expired(window_index)
        for event in self._scenario.events_at(window_index):
            if isinstance(event, SiteFailure):
                migrations.extend(controller.fail_site(event.site, window_index))
                self._failure_owner[event.site] = event
                if event.recovery_window is not None:
                    self._pending_recoveries.setdefault(event.recovery_window, []).append(
                        (event.site, event)
                    )
            elif isinstance(event, WanDegradation):
                controller.site(event.site).degrade_wan(
                    event.uplink_factor, event.downlink_factor
                )
                self._wan_owner[event.site] = event
                if event.until_window is not None:
                    self._pending_wan_restores.setdefault(event.until_window, []).append(
                        (event.site, event)
                    )
            elif isinstance(event, FlashCrowd):
                streams = controller.spawn_streams(
                    event.dataset, event.num_streams, window_index, site=event.site
                )
                admitted.extend(stream.name for stream in streams)
            else:  # pragma: no cover - the Scenario union is closed
                raise FleetError(f"unknown scenario event {event!r}")

        migrations.extend(controller.rebalance(window_index))

        fleet_window = FleetWindowResult(
            window_index=window_index,
            migrations=migrations,
            admitted_streams=admitted,
            failed_sites=[site.name for site in controller.sites if not site.healthy],
        )
        # A stream can move more than once at one boundary (evacuation, then
        # the survivor rebalances it away again) — it pays every hop: its
        # retraining cannot start until the summed transfer time has passed,
        # which also means a run that no longer fits the window is neither
        # realised nor committed to the dynamics.  Transfer still in flight
        # from an earlier window (over a badly degraded WAN a checkpoint can
        # take more than one window to arrive) is added on top.
        migrated_into: Dict[str, List[MigrationEvent]] = {}
        for event in migrations:
            migrated_into.setdefault(event.stream_name, []).append(event)
        delays: Dict[str, float] = dict(self._carryover_delays)
        for name, events in migrated_into.items():
            delays[name] = delays.get(name, 0.0) + sum(
                event.transfer_seconds for event in events
            )
        window_seconds = controller.window_duration
        self._carryover_delays = {
            name: delay - window_seconds
            for name, delay in delays.items()
            if delay > window_seconds
        }
        for site in controller.sites:
            window_result = site.run_window(window_index, retraining_delays=delays)
            if window_result is None:
                continue
            fleet_window.site_results[site.name] = window_result
            fleet_window.site_stats[site.name] = SiteWindowStats(
                site=site.name,
                num_streams=site.num_streams,
                utilization=window_result.schedule.total_gpu_allocated / site.spec.num_gpus,
                allocation_loss=window_result.allocation_loss,
                mean_accuracy=safe_mean(
                    [o.realized_average_accuracy for o in window_result.outcomes.values()]
                ),
                scheduler_runtime_seconds=window_result.schedule.scheduler_runtime_seconds,
            )
            for name, outcome in window_result.outcomes.items():
                fleet_window.stream_outcomes[name] = FleetStreamOutcome(
                    stream_name=name,
                    site=site.name,
                    outcome=outcome,
                    migrations=tuple(migrated_into.get(name, ())),
                )
        return fleet_window

    # --------------------------------------------------------------- internal
    def _restore_expired(self, window_index: int) -> None:
        for name, event in self._pending_recoveries.pop(window_index, []):
            if self._failure_owner.get(name) is event:
                self._controller.recover_site(name)
                del self._failure_owner[name]
        for name, event in self._pending_wan_restores.pop(window_index, []):
            if self._wan_owner.get(name) is event:
                self._controller.site(name).restore_wan()
                del self._wan_owner[name]
