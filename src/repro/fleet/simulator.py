"""Discrete-event multi-site fleet simulation on one event calendar.

The :class:`FleetSimulator` is an event loop over an
:class:`~repro.fleet.calendar.EventCalendar`: window boundaries (per-site,
so sites may have different ``window_duration`` s), scenario triggers
(time-indexed, with the window-indexed constructors resolved up front),
WAN transfer arrivals and control ticks are all first-class timestamped
events, popped in deterministic ``(time, priority, seq)`` order and
dispatched to one handler each:

* ``SiteRecovery`` / ``WanRestore`` / ``GpuRecovered`` — a scenario effect
  expires.  Site and WAN effects are ownership-guarded (latest event wins:
  a re-degraded link does not snap back when the first degradation would
  have ended); GPU recoveries are count-based instead — losses stack and
  each recovery returns exactly the clamped count its failure took.
* ``ScenarioTrigger`` — site failures force-evacuate (scheduling one
  ``TransferArrival`` per hop), flash crowds admit, WAN degradations scale
  the link and schedule their own restore, GPU failures shrink the site's
  effective capacity (a preemptive site rescales its in-flight retrainings
  mid-window; a boundary-settled one replans at its next boundary).
* ``TransferArrival`` — a migrating checkpoint + profile lands.  Arrivals
  are absolute timestamps, so a transfer can complete mid-window and the
  next window pays only the remaining time; one spanning several windows
  keeps delaying retraining until it has fully arrived.
* ``TransferFailed`` — one WAN transfer attempt was lost (fleets built
  with ``make_fleet(wan_faults=...)``).  Checkpoint transfers retry with
  exponential backoff until the retry budget runs out — the final give-up
  restarts the stream cold at its destination — and profile pushes are
  lost outright, neighbours falling back to local curves.  Every failure
  lands in the destination site's ``transfers_failed`` /
  ``transfer_retries`` / ``retry_seconds`` stats.
* ``ProfilePush`` — a site's micro-profiled curves land in the fleet-wide
  profile store (cross-site profile sharing; scheduled only for fleets
  built with ``make_fleet(profile_sharing=True)``).  The arrival paid the
  source site's uplink, so degraded sites contribute stale curves.
* ``RetrainingComplete`` / ``InferenceReconfigured`` — event-driven site
  internals (fleets built with ``make_fleet(preemptive_sites=True)``): a
  window is *planned* at its boundary, each stream's retraining completion
  becomes its own calendar event at the absolute finish time, and the
  settle phase runs per stream — at its completion, at the window end, or
  early as a cancellation when a mid-window migration/evacuation preempts
  an in-flight retraining and reclaims its remaining GPU-seconds for the
  site's other in-flight retrainings (which then finish earlier).  Off by
  default; the boundary-settled engine is reproduced bit for bit.
* ``ControlTick`` — the controller rebalances.  Ticks coincide with window
  boundaries by default (the PR-2 cadence); pass ``control_interval`` to
  run the control plane on its own cadence, decoupled from windows.
* ``WindowBoundary`` — the site plans and executes one window through the
  unchanged single-server :class:`~repro.simulation.simulator.Simulator` /
  thief-scheduler path, with migrated-in streams' unfinished WAN transfer
  handed down as a retraining start delay.

``run(num_windows)`` is a thin compatibility wrapper over the event loop
for homogeneous-window fleets and reproduces the shared-window-index
engine's :class:`~repro.fleet.metrics.FleetResult` bit-identically under a
:class:`~repro.utils.clock.ManualClock` (see
``tests/integration/test_fleet_scenarios.py::TestEngineParity``).
Heterogeneous fleets use :meth:`run_until` / :meth:`run_for`; each
:class:`~repro.fleet.metrics.FleetWindowResult` then covers one *cycle* —
all sites whose windows start at the same instant.

Everything is deterministic given the construction seeds except wall-clock
measurements, which all go through the injectable clock from
:mod:`repro.utils.clock`: pass the same
:class:`~repro.utils.clock.ManualClock` here and to
:func:`~repro.fleet.factory.make_fleet` and fleet results are bit-identical
field for field across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import FleetError
from ..profiles.fleet_store import stream_profile_key
from ..simulation.simulator import StreamWindowOutcome, WindowPlan
from ..utils.clock import Clock, Stopwatch
from ..utils.math_utils import safe_mean
from ..utils.rng import ensure_rng
from .calendar import (
    ControlTick,
    EventCalendar,
    GpuRecovered,
    InferenceReconfigured,
    MigrationStarted,
    ProfilePush,
    RetrainingComplete,
    ScenarioTrigger,
    SimEvent,
    SiteRecovery,
    TransferArrival,
    TransferFailed,
    WanRestore,
    WindowBoundary,
)
from .controller import FleetController
from .faults import combined_loss, sample_transfer
from .metrics import (
    FleetResult,
    FleetStreamOutcome,
    FleetWindowResult,
    gpu_utilization,
)
from .migration import MigrationEvent
from .policy.base import ControlSignals, InflightRetraining
from .scenarios import FlashCrowd, GpuFailure, Scenario, SiteFailure, WanDegradation
from .site import EdgeSite
from .telemetry import TelemetryConfig, TelemetryPlane


@dataclass
class _OpenSiteWindow:
    """Bookkeeping for one preemptive site window between plan and settle.

    Created at the site's :class:`~repro.fleet.calendar.WindowBoundary`
    (plan phase) and closed when the window fully settles — at its end, or
    stream by stream as :class:`~repro.fleet.calendar.RetrainingComplete`
    events fire and departures cancel in-flight retrainings.  ``expected``
    maps each in-flight stream to the absolute completion time currently on
    the calendar; a popped completion event fires only while its timestamp
    still matches, which is what makes cancelled or rescheduled events
    stale without removing them from the heap.
    """

    site: str
    window_index: int
    start: float
    end: float
    plan: WindowPlan
    cycle: FleetWindowResult
    #: ``(profiling_gpu_seconds, profiling_gpu_seconds_saved)`` accounted at
    #: the boundary (profiles are produced during planning).
    profiling: Tuple[float, float]
    #: Migration events charged to each planned stream, popped at plan time
    #: exactly like the boundary-settled engine attributes them.
    migrations_stash: Dict[str, Tuple[MigrationEvent, ...]]
    #: Absolute completion time per in-flight retraining.
    expected: Dict[str, float] = field(default_factory=dict)
    #: Current retraining GPU allocation per in-flight retraining.
    alloc: Dict[str, float] = field(default_factory=dict)
    #: Absolute time before which each in-flight retraining burns no GPU
    #: (a migrated-in stream waits for its WAN transfer first).  Reclaim
    #: and acceleration count only work past this point.
    ready: Dict[str, float] = field(default_factory=dict)
    #: In-flight streams whose completion is allocation-driven; a fixed
    #: external completion (cloud offload) cannot be accelerated.
    accelerable: set = field(default_factory=set)
    #: Realised completion offsets (seconds into the window) for streams
    #: whose retraining was accelerated by reclaimed capacity.
    overrides: Dict[str, float] = field(default_factory=dict)
    retrainings_cancelled: int = 0
    reclaimed_gpu_seconds: float = 0.0
    #: GPU-seconds burned on retrainings that never paid: work sunk into a
    #: cancelled job before its cancellation, plus the whole-window burn of
    #: a job that never completed inside its window.  The A/B harness's
    #: headline waste metric; stays 0.0 on non-preemptive fleets.
    wasted_gpu_seconds: float = 0.0


class FleetSimulator:
    """Executes a fleet scenario as a discrete-event simulation.

    Parameters
    ----------
    controller:
        The fleet to simulate.  Sites may have different
        ``window_duration`` s; each gets its own ``WindowBoundary`` events.
    scenario:
        Injected events, validated up front: unknown site names raise
        immediately, and window-indexed events are rejected on
        heterogeneous-window fleets (use ``at_seconds``).
    clock:
        Wall-clock source for ``FleetResult.wall_clock_seconds``.
    control_interval:
        Seconds between ``ControlTick`` s.  ``None`` (default) schedules a
        tick at every distinct window-boundary time — the synchronous PR-2
        control plane.  A positive value runs admission/rebalancing on its
        own cadence, so migrations can start mid-window.
    record_events:
        Keep every processed event readable via :attr:`event_trace`
        (default).  The trace is held in the telemetry plane's fixed-size
        event ring — memory is bounded regardless — so ``False`` is only
        needed when even the decode cost of reading the trace is unwanted.
    telemetry:
        Sizing of the bounded-memory telemetry plane: a
        :class:`~repro.fleet.telemetry.TelemetryConfig` (or a prebuilt
        :class:`~repro.fleet.telemetry.TelemetryPlane`, e.g. to share one
        across restarts).  ``None`` uses the fleet controller's config
        (``make_fleet(telemetry=...)``) or the defaults, which never evict
        at current benchmark scales.
    """

    def __init__(
        self,
        controller: FleetController,
        scenario: Optional[Scenario] = None,
        *,
        clock: Optional[Clock] = None,
        control_interval: Optional[float] = None,
        record_events: bool = True,
        telemetry: Optional[object] = None,
    ) -> None:
        if control_interval is not None and control_interval <= 0:
            raise FleetError("control_interval must be positive")
        self._controller = controller
        self._scenario = scenario or Scenario()
        self._clock = clock
        self._control_interval = control_interval
        self._record_events = record_events
        if telemetry is None:
            telemetry = controller.telemetry
        if isinstance(telemetry, TelemetryPlane):
            self._telemetry = telemetry
        elif telemetry is None or isinstance(telemetry, TelemetryConfig):
            self._telemetry = TelemetryPlane(telemetry)
        else:
            raise FleetError(
                "telemetry must be a TelemetryConfig or TelemetryPlane, "
                f"got {type(telemetry).__name__}"
            )
        #: Event-driven site internals: plan windows at their boundary,
        #: settle retrainings at per-stream RetrainingComplete events and
        #: cancel in-flight retrainings when their stream departs.
        self._preemptive = controller.preemptive_sites
        #: Cohort planning: same-instant boundaries solved in one stacked call.
        self._batched = controller.batched_planning
        #: Open (planned, not fully settled) window per preemptive site.
        self._open_windows: Dict[str, _OpenSiteWindow] = {}
        if self._preemptive:
            controller.set_departure_hook(self._on_stream_departure)
            controller.set_cancellation_hook(self._on_proactive_cancellation)
        self._scenario.validate(
            [site.name for site in controller.sites],
            require_time_indexed=not controller.homogeneous_windows,
        )
        #: Latest failure / degradation event owning each site's state.
        self._failure_owner: Dict[str, SiteFailure] = {}
        self._wan_owner: Dict[str, WanDegradation] = {}
        #: WAN loss model (``make_fleet(wan_faults=...)``); ``None`` keeps
        #: the lossless engine bit-identical — the fault RNG is never drawn.
        self._wan_faults = controller.wan_faults
        self._fault_rng = None
        #: Per-site ``[transfers_failed, transfer_retries, retry_seconds]``
        #: accumulated by TransferFailed events, popped into the site's next
        #: :class:`~repro.fleet.metrics.SiteWindowStats`.
        self._fault_counters: Dict[str, List] = {}
        #: In-flight WAN transfers, tracked in two mathematically equal
        #: views.  ``_transfer_arrival`` is the absolute landing time of a
        #: stream's (possibly chained) transfer: it schedules the
        #: ``TransferArrival`` events and anchors mid-window hop charges.
        #: ``_transfer_carry`` / ``_transfer_hops`` express the same
        #: remaining time relative to the stream's next window boundary,
        #: using exactly the shared-window engine's float operations
        #: (carry + sum(hops), decayed by one window duration per executed
        #: window while it exceeds it) — kept because ``delay = arrival - t``
        #: differs from that arithmetic by rounding, and ``run()`` promises
        #: bit-identical PR-2 results.  Boundaries charge delays from the
        #: ledger; the arrival map is the source of truth for event timing.
        self._transfer_arrival: Dict[str, float] = {}
        self._transfer_carry: Dict[str, float] = {}
        self._transfer_hops: Dict[str, float] = {}
        #: Migration events not yet attributed to a stream's window outcome.
        self._migrated_into: Dict[str, List[MigrationEvent]] = {}
        # Calendar state; built on the first run/run_window/run_until call.
        self._calendar: Optional[EventCalendar] = None
        self._start_window = 0
        self._start_time = 0.0
        self._boundary_times: set = set()
        self._tick_times: set = set()
        self._site_next_boundary: Dict[str, float] = {}
        self._next_cycle_ordinal = 0
        self._cycle_start = -1.0
        self._current: Optional[FleetWindowResult] = None
        self._completed: List[FleetWindowResult] = []
        #: Highest cycle ordinal already returned to a caller (run_until
        #: returns each cycle exactly once across continuation calls).
        self._last_emitted = -1
        #: Largest simulated horizon any run has covered (run_for's origin).
        self._horizon = 0.0

    # ------------------------------------------------------------- accessors
    @property
    def controller(self) -> FleetController:
        return self._controller

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    @property
    def now(self) -> float:
        """Current simulated time (0.0 before the first event fires)."""
        return self._calendar.now if self._calendar is not None else 0.0

    @property
    def telemetry(self) -> TelemetryPlane:
        """The bounded-memory telemetry plane this simulator writes into."""
        return self._telemetry

    @property
    def event_trace(self) -> Sequence[SimEvent]:
        """Every recorded event still in the telemetry ring, in firing
        order (plus :class:`~repro.fleet.calendar.MigrationStarted`
        markers).  Served as a cached immutable tuple — repeated reads
        between events are O(1), and the same object is returned until a
        new event is recorded."""
        return self._telemetry.events()

    # -------------------------------------------------------------- execution
    def run(self, num_windows: int, *, start_window: int = 0) -> FleetResult:
        """Simulate ``num_windows`` consecutive shared retraining windows.

        Compatibility wrapper for homogeneous-window fleets; heterogeneous
        fleets have no shared window count — use :meth:`run_until`.
        """
        if num_windows < 1:
            raise FleetError("num_windows must be >= 1")
        if start_window < 0:
            raise FleetError("start_window must be non-negative")
        watch = Stopwatch(self._clock)
        result = self._new_result()
        for window_index in range(start_window, start_window + num_windows):
            result.windows.append(self.run_window(window_index))
        result.wall_clock_seconds = watch.elapsed()
        self._finalize_result(result)
        return result

    def run_window(self, window_index: int) -> FleetWindowResult:
        """Advance the calendar through one shared window and return it.

        Windows must be executed in ascending order (the calendar owns
        simulated time and cannot rewind); the first call fixes the start
        window, matching ``run(..., start_window=...)``.
        """
        duration = self._controller.window_duration  # homogeneous fleets only
        if self._calendar is None:
            self._start(start_window=window_index)
        if window_index != self._next_cycle_ordinal:
            raise FleetError(
                f"windows must be executed in ascending order: expected window "
                f"{self._next_cycle_ordinal}, got {window_index}"
            )
        t_end = self._start_time + (window_index + 1 - self._start_window) * duration
        self._advance_until(t_end)
        self._horizon = max(self._horizon, t_end)
        cycle = self._current
        if cycle is None:  # pragma: no cover - a boundary always opens a cycle
            raise FleetError(f"no events fired in window {window_index}")
        # A shared window is a complete cycle: every event before the next
        # boundary has fired, so the result is final and the cycle can close.
        self._current = None
        self._completed.clear()
        self._last_emitted = cycle.window_index
        return cycle

    def run_until(self, t_end: float) -> FleetResult:
        """Run every window that *starts* before ``t_end`` simulated seconds.

        The native API for heterogeneous-window fleets: all sites advance on
        one calendar, and each returned
        :class:`~repro.fleet.metrics.FleetWindowResult` covers one cycle —
        the sites whose window boundaries share a start instant
        (``start_seconds``).  Calling again with a later ``t_end`` continues
        the same timeline.  Each cycle is returned exactly once, by the
        first call that reaches it; if ``t_end`` cuts a cycle short, that
        (already returned) result object keeps accumulating the cycle's
        remaining events — late control ticks, scenario triggers — when the
        timeline is continued.
        """
        if self._calendar is None:
            self._start(start_window=0)
        elif t_end < self._calendar.now:
            raise FleetError(
                f"cannot run until t={t_end:g}s: simulated time is already "
                f"{self._calendar.now:g}s"
            )
        watch = Stopwatch(self._clock)
        self._advance_until(t_end)
        self._horizon = max(self._horizon, t_end)
        result = self._new_result()
        result.windows.extend(self._drain_unemitted())
        result.wall_clock_seconds = watch.elapsed()
        self._finalize_result(result)
        return result

    def _finalize_result(self, result: FleetResult) -> None:
        """Stamp the telemetry gauges and control-plane counters.

        Like the telemetry gauges, the control counters are cumulative over
        the controller's lifetime — continuation runs report totals so far.
        """
        self._telemetry.annotate(result)
        controller = self._controller
        counters = controller.control_counters
        result.control_policy = controller.control_policy.name
        result.control_scans_skipped = counters["control_scans_skipped"]
        result.migrations_rejected = counters["migrations_rejected"]
        result.proactive_cancellations = counters["proactive_cancellations"]

    def _drain_unemitted(self) -> List[FleetWindowResult]:
        """Cycles not yet handed to a caller, including the in-progress one."""
        windows = [
            cycle for cycle in self._completed if cycle.window_index > self._last_emitted
        ]
        self._completed.clear()
        if self._current is not None and self._current.window_index > self._last_emitted:
            windows.append(self._current)
        if windows:
            self._last_emitted = windows[-1].window_index
        return windows

    def run_for(self, seconds: float) -> FleetResult:
        """Run the calendar ``seconds`` past the horizon already simulated.

        The origin is the largest ``t_end`` a previous run covered — not the
        last event's timestamp, which can sit well before the horizon (a
        ``run_until(399)`` on 200 s windows pops nothing after t=200, but
        the next ``run_for(10)`` must still reach t=409, not t=210).
        """
        if seconds <= 0:
            raise FleetError("seconds must be positive")
        return self.run_until(self._horizon + seconds)

    # ---------------------------------------------------------- event engine
    def _new_result(self) -> FleetResult:
        return FleetResult(
            admission_policy=self._controller.admission_policy.name,
            num_sites=len(self._controller.sites),
        )

    def _start(self, start_window: int) -> None:
        """Build the calendar: first boundaries, control ticks, triggers."""
        controller = self._controller
        homogeneous = controller.homogeneous_windows
        if not homogeneous and start_window != 0:
            raise FleetError(
                "heterogeneous-window fleets must start at window 0 "
                "(there is no shared window index to offset by)"
            )
        shared = controller.window_duration if homogeneous else None
        self._start_window = start_window
        self._start_time = start_window * shared if homogeneous else 0.0
        self._next_cycle_ordinal = start_window
        self._last_emitted = start_window - 1
        self._horizon = self._start_time
        self._calendar = EventCalendar(start_time=self._start_time)
        if self._wan_faults is not None:
            # One seeded generator, drawn strictly in event order, fixes the
            # whole fault realisation of a run (replayable chaos).
            self._fault_rng = ensure_rng(self._wan_faults.seed)
        for site in controller.sites:
            self._schedule_boundary(site, start_window)
        if self._control_interval is not None:
            self._calendar.schedule(ControlTick(time=self._start_time))
        for event in self._scenario.events:
            fire_at = event.trigger_seconds(shared)
            if fire_at < self._start_time:
                continue  # before the simulated range, like events_at() skipped
            self._calendar.schedule(ScenarioTrigger(time=fire_at, event=event))

    def _site_window_time(self, site: EdgeSite, window_index: int) -> float:
        """Absolute start time of ``site``'s window ``window_index``.

        Computed by multiplication from the simulation origin — never by
        accumulating additions — so it is the *same float* as the ``t_end``
        `run_window` derives for the shared index, and the same float for
        every site sharing a duration.  Accumulated sums drift an ulp below
        the multiplied value for non-dyadic durations (e.g. 0.1), which
        used to pop a boundary one window early.
        """
        duration = site.spec.window_duration
        return self._start_time + (window_index - self._start_window) * duration

    def _schedule_boundary(self, site: EdgeSite, window_index: int) -> None:
        time = self._site_window_time(site, window_index)
        self._calendar.schedule(
            WindowBoundary(time=time, site=site.name, window_index=window_index)
        )
        self._boundary_times.add(time)
        self._site_next_boundary[site.name] = time
        if self._control_interval is None and time not in self._tick_times:
            self._tick_times.add(time)
            self._calendar.schedule(ControlTick(time=time))

    def _advance_until(self, t_end: float) -> None:
        """Pop and dispatch every event strictly before ``t_end``.

        Preemptive fleets additionally settle every open site window whose
        end lies at or before ``t_end`` once the events are drained: the
        boundary event *at* a window's end is not popped (it belongs to the
        next advance), but the window it closes is complete — all its
        completion events fired strictly before the end — so its remaining
        streams settle now and the returned results are final.
        """
        calendar = self._calendar
        while calendar:
            time = calendar.peek_time()
            if time >= t_end:
                break
            if time in self._boundary_times and time > self._cycle_start:
                self._open_cycle(time)
            event = calendar.pop()
            if self._record_events:
                self._telemetry.record_event(event)
            if self._batched and isinstance(event, WindowBoundary):
                # Same-instant boundaries are contiguous at the heap head
                # (nothing else shares their priority), and every member is
                # strictly before t_end because the first one was.
                self._on_boundary_cohort(self._collect_cohort(event))
            else:
                self._dispatch(event)
        if self._preemptive:
            for name in sorted(self._open_windows):
                if self._open_windows[name].end <= t_end:
                    self._settle_open_window(name)

    def _open_cycle(self, time: float) -> None:
        if self._current is not None:
            self._completed.append(self._current)
        self._current = FleetWindowResult(
            window_index=self._next_cycle_ordinal, start_seconds=time
        )
        self._next_cycle_ordinal += 1
        self._cycle_start = time
        # Times before this cycle can never gate another cycle or tick; drop
        # them so the sets stay bounded by the number of pending boundaries.
        self._boundary_times = {t for t in self._boundary_times if t >= time}
        self._tick_times = {t for t in self._tick_times if t >= time}

    def _require_cycle(self) -> FleetWindowResult:
        if self._current is None:  # pragma: no cover - boundaries open cycles
            raise FleetError("no simulation cycle is open")
        return self._current

    def _dispatch(self, event: SimEvent) -> None:
        if isinstance(event, WindowBoundary):
            self._on_window_boundary(event)
        elif isinstance(event, ControlTick):
            self._on_control_tick(event)
        elif isinstance(event, ProfilePush):
            self._on_profile_push(event)
        elif isinstance(event, RetrainingComplete):
            self._on_retraining_complete(event)
        elif isinstance(event, InferenceReconfigured):
            # Pure trace marker: the allocation change it records was applied
            # when it was scheduled (completion settle / cancellation); the
            # event exists so the timeline is observable on the calendar.
            pass
        elif isinstance(event, TransferArrival):
            self._on_transfer_arrival(event)
        elif isinstance(event, TransferFailed):
            self._on_transfer_failed(event)
        elif isinstance(event, ScenarioTrigger):
            self._on_scenario_trigger(event)
        elif isinstance(event, (SiteRecovery, WanRestore, GpuRecovered)):
            self._on_expiry(event)
        else:  # pragma: no cover - the event hierarchy is closed
            raise FleetError(f"unknown simulation event {event!r}")

    # -------------------------------------------------------- event handlers
    def _on_expiry(self, event) -> None:
        if isinstance(event, SiteRecovery):
            if self._failure_owner.get(event.site) is event.owner:
                self._controller.recover_site(event.site)
                del self._failure_owner[event.site]
        elif isinstance(event, GpuRecovered):
            # Count-based, not ownership-guarded: losses stack, so each
            # recovery restores exactly what its failure took (clamped to
            # the GPUs still lost) and can never be stale.
            site = self._controller.site(event.site)
            before = site.effective_gpus
            if site.restore_gpus(event.num_gpus):
                self._rescale_site_retrainings(event.site, before, site.effective_gpus)
        else:
            if self._wan_owner.get(event.site) is event.owner:
                self._controller.site(event.site).restore_wan()
                del self._wan_owner[event.site]

    def _on_scenario_trigger(self, trigger: ScenarioTrigger) -> None:
        controller = self._controller
        event = trigger.event
        cycle = self._require_cycle()
        shared = controller.window_duration if controller.homogeneous_windows else None
        if isinstance(event, SiteFailure):
            migrations = controller.fail_site(event.site, cycle.window_index)
            self._register_migrations(migrations, trigger.time)
            self._failure_owner[event.site] = event
            recovery = event.recovery_seconds(shared)
            if recovery is not None:
                self._calendar.schedule(
                    SiteRecovery(time=recovery, site=event.site, owner=event)
                )
        elif isinstance(event, WanDegradation):
            controller.site(event.site).degrade_wan(
                event.uplink_factor, event.downlink_factor
            )
            self._wan_owner[event.site] = event
            until = event.until_seconds(shared)
            if until is not None:
                self._calendar.schedule(
                    WanRestore(time=until, site=event.site, owner=event)
                )
        elif isinstance(event, GpuFailure):
            site = controller.site(event.site)
            before = site.effective_gpus
            taken = site.degrade_gpus(event.num_gpus)
            if taken:
                recovery = event.recovery_seconds(shared)
                if recovery is not None:
                    self._calendar.schedule(
                        GpuRecovered(time=recovery, site=event.site, num_gpus=taken)
                    )
                self._rescale_site_retrainings(event.site, before, site.effective_gpus)
        elif isinstance(event, FlashCrowd):
            streams = controller.spawn_streams(
                event.dataset, event.num_streams, cycle.window_index, site=event.site
            )
            cycle.admitted_streams.extend(stream.name for stream in streams)
        else:  # pragma: no cover - the Scenario union is closed
            raise FleetError(f"unknown scenario event {event!r}")

    def _on_control_tick(self, tick: ControlTick) -> None:
        cycle = self._require_cycle()
        signals = None
        if self._controller.control_policy.wants_signals:
            signals = self._build_control_signals()
        migrations = self._controller.rebalance(cycle.window_index, signals)
        self._register_migrations(migrations, tick.time)
        if self._control_interval is not None:
            self._calendar.schedule(ControlTick(time=tick.time + self._control_interval))

    def _build_control_signals(self) -> ControlSignals:
        """Snapshot the simulator state a signal-hungry policy acts on.

        Built per tick, and only when the installed policy declares
        ``wants_signals`` — the default greedy plane never pays for it.
        """
        inflight: Dict[str, Dict[str, InflightRetraining]] = {}
        for site_name, open_window in self._open_windows.items():
            entries = {
                stream: InflightRetraining(
                    stream=stream,
                    site=site_name,
                    expected_completion=completion,
                    alloc=open_window.alloc.get(stream, 0.0),
                    ready=open_window.ready.get(stream, open_window.start),
                    accelerable=stream in open_window.accelerable,
                    window_start=open_window.start,
                    window_end=open_window.end,
                )
                for stream, completion in open_window.expected.items()
            }
            # Planned retrainings that never fit the window have no
            # completion event (and no expected entry) but burn GPU to the
            # boundary regardless — exactly the jobs a predictive policy
            # most wants to see.  Exposed with an infinite completion: they
            # never pay this window.
            for stream in open_window.plan.pending_streams():
                if stream in entries:
                    continue
                planned = open_window.plan.streams[stream]
                if planned.decision.retraining_gpu <= 0:
                    continue
                ready = open_window.start + planned.retraining_start_offset
                if ready >= open_window.end:
                    continue  # never starts burning either
                entries[stream] = InflightRetraining(
                    stream=stream,
                    site=site_name,
                    expected_completion=float("inf"),
                    alloc=planned.decision.retraining_gpu,
                    ready=ready,
                    # No completion event exists to reschedule, so reclaimed
                    # capacity cannot flow *to* this job — only from it.
                    accelerable=False,
                    window_start=open_window.start,
                    window_end=open_window.end,
                )
            if entries:
                inflight[site_name] = entries
        return ControlSignals(
            now=self._calendar.now if self._calendar is not None else 0.0,
            transfer_arrivals=dict(self._transfer_arrival),
            inflight=inflight,
        )

    def _on_transfer_arrival(self, event: TransferArrival) -> None:
        # A later hop extends the stream's transfer past this (now stale)
        # arrival; only the final arrival clears the in-flight record.
        if self._transfer_arrival.get(event.stream) == event.time:
            del self._transfer_arrival[event.stream]

    def _on_transfer_failed(self, event: TransferFailed) -> None:
        """One WAN transfer attempt was lost; account it, and on a final
        checkpoint give-up restart the stream cold at its destination."""
        counters = self._fault_counters.setdefault(event.site, [0, 0, 0.0])
        counters[0] += 1
        if event.kind == "checkpoint" and not event.final:
            counters[1] += 1
        counters[2] += event.wasted_seconds
        if event.kind != "checkpoint" or not event.final:
            return
        # The give-up ends the stream's in-flight saga — unless a later hop
        # already superseded it (the record then points past this event and
        # the newer hop's outcome decides the stream's fate).
        if self._transfer_arrival.get(event.stream) != event.time:
            return
        del self._transfer_arrival[event.stream]
        # The destination never received the checkpoint: the stream's
        # serving-model state is lost and it restarts as freshly deployed,
        # paying its accumulated retraining benefit.
        self._controller.dynamics.invalidate_stream(event.stream)

    def _on_profile_push(self, event: ProfilePush) -> None:
        """A site's profiled curves finish their uplink crossing and merge."""
        sharing = self._controller.profile_sharing
        if sharing is None:  # pragma: no cover - pushes imply sharing is wired
            return
        for key, profile in event.profiles:
            sharing.store.push(key, profile, at_seconds=event.time)

    def _on_window_boundary(self, boundary: WindowBoundary) -> None:
        prepared = self._prepare_boundary(boundary)
        if prepared is None:
            return
        site, cycle, delays = prepared
        self._finish_boundary(boundary, site, cycle, delays, None)

    def _prepare_boundary(
        self, boundary: WindowBoundary
    ) -> Optional[Tuple[EdgeSite, FleetWindowResult, Optional[Dict[str, float]]]]:
        """Everything a boundary does *before* planning: settle the previous
        open window, schedule the next boundary, skip failed sites and charge
        pending WAN transfers.  Returns ``None`` when the site skips the
        window (failed), else the finish phase's inputs."""
        controller = self._controller
        site = controller.site(boundary.site)
        cycle = self._require_cycle()
        duration = site.spec.window_duration
        if self._preemptive:
            # The previous window must be fully settled (its dynamics
            # committed) before the next one queries them.
            self._settle_open_window(site.name)
        self._schedule_boundary(site, boundary.window_index + 1)
        if not site.healthy:
            cycle.failed_sites.append(site.name)
            return None
        delays = self._charge_transfers(site, boundary.time, duration)
        return site, cycle, delays

    def _collect_cohort(self, first: WindowBoundary) -> List[WindowBoundary]:
        """Pop every further ``WindowBoundary`` sharing ``first``'s instant."""
        calendar = self._calendar
        cohort = [first]
        while True:
            ahead = calendar.peek()
            if not isinstance(ahead, WindowBoundary) or ahead.time != first.time:
                break
            event = calendar.pop()
            if self._record_events:
                self._telemetry.record_event(event)
            cohort.append(event)
        return cohort

    def _on_boundary_cohort(self, cohort: List[WindowBoundary]) -> None:
        """Plan one instant's whole boundary cohort in a single stacked solve.

        Each boundary's prepare phase (settle, reschedule, transfer charges)
        and its request build — including every profiling side effect — run
        in pop order, exactly as the scalar path interleaves them; only the
        pure solves are batched (plans commit nothing, so reordering them
        ahead of the finish phases is unobservable).  Finishes then run in
        pop order, so events, stats and results land in the scalar order.
        """
        if len(cohort) == 1:
            # The policy's scheduler is already the batched one; a lone
            # boundary goes through the ordinary path (a cohort of one).
            self._on_window_boundary(cohort[0])
            return
        prepared: List[
            Tuple[WindowBoundary, EdgeSite, FleetWindowResult, Optional[Dict[str, float]]]
        ] = []
        # Requests grouped by scheduler instance (sites normally share one
        # policy, so this is a single group); insertion order is pop order.
        groups: Dict[object, Dict[str, object]] = {}
        for boundary in cohort:
            prep = self._prepare_boundary(boundary)
            if prep is None:
                continue
            site, cycle, delays = prep
            prepared.append((boundary, site, cycle, delays))
            request = site.prepare_window_request(boundary.window_index)
            if request is None:
                continue
            scheduler = site.policy.scheduler
            groups.setdefault(scheduler, {})[site.name] = request
        schedules: Dict[str, object] = {}
        for scheduler, requests in groups.items():
            schedules.update(scheduler.schedule_cohort(requests))
        for boundary, site, cycle, delays in prepared:
            self._finish_boundary(
                boundary, site, cycle, delays, schedules.get(site.name)
            )

    def _finish_boundary(
        self,
        boundary: WindowBoundary,
        site: EdgeSite,
        cycle: FleetWindowResult,
        delays: Optional[Dict[str, float]],
        preplanned,
    ) -> None:
        if self._preemptive:
            self._plan_site_window(site, boundary, cycle, delays, preplanned=preplanned)
            return
        window_result = site.run_window(
            boundary.window_index, retraining_delays=delays, preplanned=preplanned
        )
        if window_result is None:
            return
        profiling_cost, profiling_saved = self._share_profiles(site, boundary)
        failed, retries, wasted = self._pop_fault_counters(site.name)
        cycle.site_results[site.name] = window_result
        accuracies = {
            name: outcome.realized_average_accuracy
            for name, outcome in window_result.outcomes.items()
        }
        self._telemetry.record_site_stats(
            cycle,
            site=site.name,
            num_streams=site.num_streams,
            utilization=gpu_utilization(
                window_result.schedule.total_gpu_allocated, site.spec.num_gpus
            ),
            allocation_loss=window_result.allocation_loss,
            mean_accuracy=safe_mean(list(accuracies.values())),
            scheduler_runtime_seconds=window_result.schedule.scheduler_runtime_seconds,
            profiling_gpu_seconds=profiling_cost,
            profiling_gpu_seconds_saved=profiling_saved,
            transfers_failed=failed,
            transfer_retries=retries,
            retry_seconds=wasted,
        )
        self._telemetry.observe_streams(boundary.window_index, accuracies)
        for name, outcome in window_result.outcomes.items():
            cycle.stream_outcomes[name] = FleetStreamOutcome(
                stream_name=name,
                site=site.name,
                outcome=outcome,
                migrations=tuple(self._migrated_into.pop(name, ())),
            )

    # ------------------------------------------------- preemptive internals
    def _plan_site_window(
        self,
        site: EdgeSite,
        boundary: WindowBoundary,
        cycle: FleetWindowResult,
        delays: Optional[Dict[str, float]],
        preplanned=None,
    ) -> None:
        """Plan phase of a preemptive window: schedule, then per-stream events.

        The site's scheduler runs exactly as at a boundary-settled window,
        but nothing is realised yet: each stream whose retraining fits the
        window gets a :class:`~repro.fleet.calendar.RetrainingComplete`
        event at its absolute finish time, and the settle phase runs stream
        by stream as those events fire (or early, when a departure cancels).
        Migration attribution is popped here — the same instant the
        boundary-settled engine pops it — so both engines charge WAN hops
        to the same window.
        """
        plan = site.plan_window(
            boundary.window_index, retraining_delays=delays, preplanned=preplanned
        )
        if plan is None:
            return
        profiling = self._share_profiles(site, boundary)
        open_window = _OpenSiteWindow(
            site=site.name,
            window_index=boundary.window_index,
            start=boundary.time,
            # Multiplied from the origin — the *same float* as the next
            # boundary and as run_window's t_end.  An accumulated
            # ``boundary.time + duration`` can drift one ulp above it for
            # non-dyadic durations, and the flush's ``end <= t_end`` check
            # would then skip settling the final window (the same hazard
            # _site_window_time documents for boundary times).
            end=self._site_window_time(site, boundary.window_index + 1),
            plan=plan,
            cycle=cycle,
            profiling=profiling,
            migrations_stash={
                name: tuple(self._migrated_into.pop(name, ())) for name in plan.streams
            },
        )
        for name, offset in plan.completion_offsets().items():
            completion = boundary.time + offset
            planned = plan.streams[name]
            open_window.expected[name] = completion
            open_window.alloc[name] = planned.decision.retraining_gpu
            open_window.ready[name] = boundary.time + planned.retraining_start_offset
            if planned.allocation_driven:
                open_window.accelerable.add(name)
            self._calendar.schedule(
                RetrainingComplete(
                    time=completion,
                    site=site.name,
                    stream=name,
                    window_index=boundary.window_index,
                )
            )
        self._open_windows[site.name] = open_window

    def _on_retraining_complete(self, event: RetrainingComplete) -> None:
        """One stream's retraining finished: settle it at this very instant.

        Stale events — the window already closed, the retraining was
        cancelled, or a cancellation's reclaimed capacity rescheduled the
        completion earlier — are silent no-ops: only an event whose
        timestamp matches the stream's current expected completion fires.
        """
        open_window = self._open_windows.get(event.site)
        if open_window is None or open_window.window_index != event.window_index:
            return
        if open_window.expected.get(event.stream) != event.time:
            return
        del open_window.expected[event.stream]
        open_window.ready.pop(event.stream, None)
        open_window.accelerable.discard(event.stream)
        # The allocation the retraining actually ran at — the planned one
        # plus any capacity reclaimed from cancelled neighbours.
        retraining_gpu = open_window.alloc.pop(event.stream)
        override = open_window.overrides.pop(event.stream, None)
        site = self._controller.site(event.site)
        outcome = site.settle_stream(
            open_window.plan, event.stream, completion_offset=override
        )
        self._record_settled(open_window, event.stream, outcome)
        decision = open_window.plan.streams[event.stream].decision
        # Ekya's reaction to a finished retraining job: its GPUs flow back
        # to the stream's inference job (the estimator's Figure-4 model).
        self._calendar.schedule(
            InferenceReconfigured(
                time=event.time,
                site=event.site,
                stream=event.stream,
                inference_gpu=decision.inference_gpu + retraining_gpu,
                reason="retraining_complete",
            )
        )

    def _on_stream_departure(self, stream: str, source: str, reason: str) -> None:
        """A stream migrated or was evacuated away: preempt its retraining.

        Installed as the controller's departure hook on preemptive fleets.
        Delegates to :meth:`_cancel_inflight_retraining` with the engine's
        historical ``"retraining_cancelled"`` reconfiguration reason.
        """
        self._cancel_inflight_retraining(source, stream, "retraining_cancelled")

    def _on_proactive_cancellation(
        self, source: str, stream: str, reason: str = "proactive_cancellation"
    ) -> bool:
        """The control plane asked for a cancellation (the controller's
        cancellation hook).  Unlike a departure, the proactive path may also
        kill retrainings that were planned past the window end — they have
        no completion event but burn GPU to the boundary regardless."""
        return self._cancel_inflight_retraining(
            source, stream, reason, allow_unscheduled=True
        )

    def _cancel_inflight_retraining(
        self,
        source: str,
        stream: str,
        reason: str = "proactive_cancellation",
        *,
        allow_unscheduled: bool = False,
    ) -> bool:
        """Cancel one in-flight retraining at ``source`` right now.

        The shared preemption core behind mid-window departures and the
        control plane's proactive cancellations
        (:meth:`~repro.fleet.controller.FleetController.
        request_cancellation`).  The stream settles with no retraining
        benefit, the work already burned is accounted as waste, the
        remaining GPU-seconds are reclaimed, and the freed allocation is
        split evenly across the site's surviving accelerable in-flight
        retrainings — each finishes earlier, its stale completion event
        superseded by a rescheduled one.  Idempotent: a stream with no
        in-flight retraining (none planned, already completed, or already
        cancelled by an earlier hop) is a no-op returning ``False``.
        """
        open_window = self._open_windows.get(source)
        if open_window is None:
            return False
        now = self._calendar.now
        expected = open_window.expected.pop(stream, None)
        if expected is not None:
            alloc = open_window.alloc.pop(stream)
            ready = open_window.ready.pop(stream, now)
        else:
            if not allow_unscheduled:
                return False
            planned = open_window.plan.streams.get(stream)
            if (
                planned is None
                or planned.decision.retraining_gpu <= 0
                or open_window.plan.settled(stream)
            ):
                return False
            alloc = planned.decision.retraining_gpu
            ready = open_window.start + planned.retraining_start_offset
            if ready >= open_window.end:
                return False  # never starts burning: nothing to cancel
            # Left alone, the job burns to the boundary and settles as pure
            # waste — so the boundary is its effective completion time for
            # both the burn already sunk and the reclaimable remainder.
            expected = open_window.end
        open_window.accelerable.discard(stream)
        open_window.overrides.pop(stream, None)
        # Reclaim only GPU work still to *burn*: a WAN-delayed retraining is
        # idle until its checkpoint arrives (``ready``), so the waiting
        # portion of its wall-clock time-to-completion is not work.  The
        # mirror-image burn — work already done and now written off — is the
        # cancellation's waste.
        remaining = max(0.0, expected - max(now, ready))
        reclaimed = remaining * alloc
        open_window.retrainings_cancelled += 1
        open_window.reclaimed_gpu_seconds += reclaimed
        open_window.wasted_gpu_seconds += max(0.0, min(now, expected) - ready) * alloc
        site = self._controller.site(source)
        outcome = site.settle_stream(open_window.plan, stream, cancelled=True)
        self._record_settled(open_window, stream, outcome)
        self._calendar.schedule(
            InferenceReconfigured(
                time=now,
                site=source,
                stream=stream,
                inference_gpu=0.0,
                reason=reason,
            )
        )
        # Only allocation-driven retrainings can absorb the freed capacity;
        # a fixed external completion (cloud offload) is not accelerable.
        beneficiaries = sorted(
            name
            for name, completion in open_window.expected.items()
            if completion > now and name in open_window.accelerable
        )
        if reclaimed <= 0 or not beneficiaries:
            return True
        share = alloc / len(beneficiaries)
        for name in beneficiaries:
            # The job runs only past max(now, ready): remaining work is the
            # burn from there, and the accelerated completion can never land
            # before the checkpoint the retraining is waiting on.
            effective_start = max(now, open_window.ready.get(name, now))
            remaining_work = (
                open_window.expected[name] - effective_start
            ) * open_window.alloc[name]
            new_alloc = open_window.alloc[name] + share
            new_completion = effective_start + remaining_work / new_alloc
            open_window.alloc[name] = new_alloc
            open_window.expected[name] = new_completion
            open_window.overrides[name] = new_completion - open_window.start
            self._calendar.schedule(
                RetrainingComplete(
                    time=new_completion,
                    site=source,
                    stream=name,
                    window_index=open_window.window_index,
                )
            )
        return True

    def _rescale_site_retrainings(
        self, site_name: str, old_capacity: int, new_capacity: int
    ) -> None:
        """Replan a preemptive site's in-flight retrainings after a capacity
        change (``GpuFailure`` / ``GpuRecovered`` mid-window).

        Every allocation-driven in-flight retraining keeps its share of the
        machine: its allocation scales by ``new/old`` capacity and its
        completion is rescheduled with remaining work conserved — later on a
        shrink (possibly past the window end, where it settles as not
        completed), earlier on a recovery.  Fixed external completions
        (cloud offload) are untouched.  A shrink to zero cancels everything
        in flight: with no GPUs there is nothing to finish on.  Boundary-
        settled sites need none of this — their next plan simply sees the
        rebuilt, smaller server.
        """
        if not self._preemptive:
            return
        open_window = self._open_windows.get(site_name)
        if open_window is None:
            return
        now = self._calendar.now
        if new_capacity <= 0:
            site = self._controller.site(site_name)
            for name in sorted(open_window.expected):
                expected = open_window.expected[name]
                del open_window.expected[name]
                alloc = open_window.alloc.pop(name, 0.0)
                ready = open_window.ready.pop(name, now)
                open_window.accelerable.discard(name)
                open_window.overrides.pop(name, None)
                open_window.retrainings_cancelled += 1
                # The work burned so far dies with the GPUs — pure waste.
                open_window.wasted_gpu_seconds += (
                    max(0.0, min(now, expected) - ready) * alloc
                )
                outcome = site.settle_stream(open_window.plan, name, cancelled=True)
                self._record_settled(open_window, name, outcome)
                self._calendar.schedule(
                    InferenceReconfigured(
                        time=now,
                        site=site_name,
                        stream=name,
                        inference_gpu=0.0,
                        reason="gpu_failure",
                    )
                )
            return
        if old_capacity <= 0:
            # Recovering from a total GPU loss: everything in flight was
            # cancelled when capacity hit zero, so there is nothing to
            # rescale — the site's next boundary replans at full strength.
            return
        ratio = new_capacity / old_capacity
        for name in sorted(open_window.expected):
            if name not in open_window.accelerable:
                continue
            expected = open_window.expected[name]
            if expected <= now:
                continue
            effective_start = max(now, open_window.ready.get(name, now))
            remaining_work = (expected - effective_start) * open_window.alloc[name]
            new_alloc = open_window.alloc[name] * ratio
            new_completion = effective_start + remaining_work / new_alloc
            open_window.alloc[name] = new_alloc
            open_window.expected[name] = new_completion
            open_window.overrides[name] = new_completion - open_window.start
            self._calendar.schedule(
                RetrainingComplete(
                    time=new_completion,
                    site=site_name,
                    stream=name,
                    window_index=open_window.window_index,
                )
            )

    def _pop_fault_counters(self, site_name: str):
        """Drain the site's accumulated WAN-fault counters for its stats row.

        Non-preemptive stats are built at the window's *opening* boundary,
        so faults that fire during window k are attributed to the site's
        window-(k+1) row; the preemptive engine settles at the closing
        boundary and attributes them to the window they happened in.
        """
        failed, retries, wasted = self._fault_counters.pop(site_name, (0, 0, 0.0))
        return failed, retries, wasted

    def _record_settled(
        self, open_window: _OpenSiteWindow, name: str, outcome: StreamWindowOutcome
    ) -> None:
        open_window.cycle.stream_outcomes[name] = FleetStreamOutcome(
            stream_name=name,
            site=open_window.site,
            outcome=outcome,
            migrations=open_window.migrations_stash.pop(name, ()),
        )

    def _settle_open_window(self, site_name: str) -> None:
        """Settle phase of a preemptive window: close out whatever remains.

        Streams whose retraining completed (or was cancelled) are already
        settled; everything else — no retraining planned, or one that never
        fit the window — settles with its planned estimate.  Site results
        and stats land in the cycle the window was planned in.
        """
        open_window = self._open_windows.pop(site_name, None)
        if open_window is None:
            return
        site = self._controller.site(site_name)
        plan = open_window.plan
        for name in plan.pending_streams():
            outcome = site.settle_stream(
                plan, name, completion_offset=open_window.overrides.pop(name, None)
            )
            self._record_settled(open_window, name, outcome)
            # A retraining that burned local GPU all window without landing
            # (planned past the end, or rescheduled past it by a capacity
            # shrink) paid for nothing: charge its burn as waste.
            planned = plan.streams[name]
            if planned.decision.retraining_gpu > 0 and not outcome.retraining_completed:
                ready = open_window.ready.get(
                    name, open_window.start + planned.retraining_start_offset
                )
                alloc = open_window.alloc.get(name, planned.decision.retraining_gpu)
                open_window.wasted_gpu_seconds += (
                    max(0.0, open_window.end - ready) * alloc
                )
        open_window.expected.clear()
        open_window.alloc.clear()
        open_window.ready.clear()
        open_window.accelerable.clear()
        result = plan.result
        cost, saved = open_window.profiling
        failed, retries, wasted = self._pop_fault_counters(site_name)
        open_window.cycle.site_results[site_name] = result
        accuracies = {
            name: outcome.realized_average_accuracy
            for name, outcome in result.outcomes.items()
        }
        self._telemetry.record_site_stats(
            open_window.cycle,
            site=site_name,
            num_streams=len(plan.streams),
            utilization=gpu_utilization(
                result.schedule.total_gpu_allocated, site.spec.num_gpus
            ),
            allocation_loss=result.allocation_loss,
            mean_accuracy=safe_mean(list(accuracies.values())),
            scheduler_runtime_seconds=result.schedule.scheduler_runtime_seconds,
            profiling_gpu_seconds=cost,
            profiling_gpu_seconds_saved=saved,
            retrainings_cancelled=open_window.retrainings_cancelled,
            reclaimed_gpu_seconds=open_window.reclaimed_gpu_seconds,
            wasted_gpu_seconds=open_window.wasted_gpu_seconds,
            transfers_failed=failed,
            transfer_retries=retries,
            retry_seconds=wasted,
        )
        self._telemetry.observe_streams(open_window.window_index, accuracies)

    # ------------------------------------------------------- profile sharing
    def _share_profiles(self, site: EdgeSite, boundary: WindowBoundary):
        """Account this window's profiling and push its curves fleet-wide.

        Returns the ``(profiling_gpu_seconds, profiling_gpu_seconds_saved)``
        pair for the site's :class:`~repro.fleet.metrics.SiteWindowStats`.
        With sharing enabled, the window's freshly profiled curves are
        batched into one :class:`~repro.fleet.calendar.ProfilePush` whose
        arrival time pays the site's *current* uplink for the summed
        per-stream payload — a WAN-degraded site's curves land late, so
        neighbours warm-start from whatever has actually arrived.
        """
        sharing = self._controller.profile_sharing
        if sharing is None:
            return 0.0, 0.0
        cost = saved = 0.0
        pushes = []
        for name in site.stream_names:
            profile = sharing.source.local_store.maybe_get(name, boundary.window_index)
            if profile is None:
                continue
            cost += profile.profiling_gpu_seconds
            saved += sharing.source.pop_saved(name, boundary.window_index)
            pushes.append((stream_profile_key(site.server.stream(name)), profile))
        if pushes:
            payload = sharing.payload_mbits_per_stream * len(pushes)
            arrival = boundary.time + site.link.upload_seconds(payload)
            if self._wan_faults is not None and self._fault_rng.random() < combined_loss(
                self._wan_faults.effective_push_loss_rate, site.link.loss_rate
            ):
                # The batched push is lost outright — no retry; neighbours
                # silently fall back to whatever curves already arrived.
                self._calendar.schedule(
                    TransferFailed(
                        time=arrival,
                        stream="",
                        site=site.name,
                        kind="profile_push",
                        attempt=1,
                        wasted_seconds=arrival - boundary.time,
                        final=True,
                    )
                )
            else:
                self._calendar.schedule(
                    ProfilePush(time=arrival, site=site.name, profiles=tuple(pushes))
                )
        return cost, saved

    # ------------------------------------------------------------- transfers
    def _register_migrations(self, migrations: List[MigrationEvent], time: float) -> None:
        """Record migrations and schedule their checkpoints' WAN arrivals.

        A stream can move more than once at one instant (evacuation, then the
        survivor rebalances it away again) — it pays every hop: transfers
        chain, so its checkpoint arrives after the *summed* transfer time,
        on top of anything still in flight from an earlier migration.
        """
        cycle = self._require_cycle()
        for event in migrations:
            cycle.migrations.append(event)
            self._migrated_into.setdefault(event.stream_name, []).append(event)
            if self._record_events:
                self._telemetry.record_event(
                    MigrationStarted(time=time, migration=event)
                )
            departed = max(self._transfer_arrival.get(event.stream_name, time), time)
            if self._wan_faults is None:
                arrival = departed + event.transfer_seconds
                effective_seconds = event.transfer_seconds
                self._calendar.schedule(
                    TransferArrival(time=arrival, stream=event.stream_name)
                )
            else:
                # Compose the model's base loss with both endpoints' link
                # loss; sample the whole retry saga now (draws happen in
                # event order, so a fixed seed replays bit for bit) and
                # schedule every attempt's failure plus the final arrival.
                loss = combined_loss(
                    self._wan_faults.loss_rate,
                    self._controller.site(event.source).link.loss_rate,
                    self._controller.site(event.destination).link.loss_rate,
                )
                outcome = sample_transfer(
                    self._fault_rng,
                    departed=departed,
                    transfer_seconds=event.transfer_seconds,
                    loss_rate=loss,
                    model=self._wan_faults,
                )
                for failure in outcome.failures:
                    self._calendar.schedule(
                        TransferFailed(
                            time=failure.failed_at,
                            stream=event.stream_name,
                            site=event.destination,
                            kind="checkpoint",
                            attempt=failure.attempt,
                            wasted_seconds=failure.wasted_seconds,
                            final=failure.final,
                        )
                    )
                arrival = outcome.ends_at
                effective_seconds = arrival - departed
                if outcome.delivered:
                    self._calendar.schedule(
                        TransferArrival(time=arrival, stream=event.stream_name)
                    )
            self._transfer_arrival[event.stream_name] = arrival
            # Anchor the hop to the destination's next window boundary: a hop
            # departing at (or after) that boundary charges its full transfer
            # there; one already in flight when the window starts charges only
            # the part still remaining (arrival - boundary).  ``departed``,
            # not the registration time, is what matters — a hop queued
            # behind an earlier transfer has not started yet, so no wall
            # time is credited against it.
            next_boundary = self._site_next_boundary.get(event.destination, time)
            self._transfer_hops[event.stream_name] = self._transfer_hops.get(
                event.stream_name, 0.0
            ) + (
                effective_seconds
                if next_boundary <= departed
                else max(0.0, arrival - next_boundary)
            )

    def _charge_transfers(
        self, site: EdgeSite, time: float, duration: float
    ) -> Optional[Dict[str, float]]:
        """Retraining delays this window pays for its streams' WAN transfers.

        Each delay is carried-over time from earlier windows plus the hops
        anchored to this boundary; whatever exceeds this window's duration
        carries over to the site's next boundary, so a checkpoint taking 2.5
        windows to arrive delays retraining in all three.
        """
        delays: Dict[str, float] = {}
        for name in site.stream_names:
            hops = self._transfer_hops.pop(name, None)
            carry = self._transfer_carry.get(name)
            if hops is None and carry is None:
                continue
            delay = (carry or 0.0) + (hops or 0.0)
            if delay > duration:
                self._transfer_carry[name] = delay - duration
            else:
                self._transfer_carry.pop(name, None)
            if delay > 0:
                delays[name] = delay
        return delays or None
