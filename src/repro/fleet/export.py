"""Prometheus-style text exposition of fleet run summaries.

Renders :meth:`repro.fleet.metrics.FleetResult.summary` as the Prometheus
text format (``# HELP`` / ``# TYPE`` / sample lines): every summary key
becomes a metric named ``ekya_fleet_<key>``, so a scrape of the exposition
carries the run's whole documented metric surface — the unit tests pin that
coverage, and ``docs/telemetry.md`` documents the mapping.

Three summary values are not plain gauges and get the conventional
encodings:

- Strings (``admission_policy``, ``control_policy``) become *info*-style
  gauges with the value in a label:
  ``ekya_fleet_admission_policy_info{policy="..."} 1``.
- ``migrations_by_reason`` (a dict) becomes one labelled counter sample per
  reason: ``ekya_fleet_migrations_by_reason_total{reason="..."} n``.
- Integer counters render without a decimal point; floats via ``repr`` so
  the exposition round-trips the exact double.

Beyond the summary scalars, :func:`render_accuracy_histogram` renders the
telemetry sampler's merged per-stream accuracy distribution as a
histogram-typed metric (``ekya_fleet_stream_accuracy``) with the
conventional ``_bucket{le=...}`` / ``_sum`` / ``_count`` samples;
:meth:`repro.fleet.telemetry.TelemetryPlane.export_text` appends it to the
scalar exposition.

``scripts/export_metrics.py`` is the CLI wrapper that runs a small fleet
and prints this exposition.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "ACCURACY_HISTOGRAM_BUCKETS",
    "METRIC_PREFIX",
    "render_accuracy_histogram",
    "render_prometheus",
]

#: Every exported metric name starts with this.
METRIC_PREFIX = "ekya_fleet_"

#: Upper bounds of the accuracy-distribution histogram.  Accuracies live in
#: [0, 1]; the grid is denser near the top where fleets actually operate.
ACCURACY_HISTOGRAM_BUCKETS = (0.25, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)

#: ``# HELP`` strings per summary key.  Keys absent here (a future summary
#: addition) still export, with a generated placeholder help line — the
#: exposition never silently drops a summary key.
_HELP: Dict[str, str] = {
    "admission_policy": "Admission policy the fleet ran (info-style gauge).",
    "num_sites": "Edge sites in the fleet.",
    "num_windows": "Simulation cycles covered by this run.",
    "num_streams": "Peak streams served in any one cycle.",
    "mean_accuracy": "Fleet mean accuracy over cycles and served streams.",
    "p10_worst_stream_accuracy": "10th percentile of per-stream mean accuracies.",
    "migration_count": "Cross-site stream migrations over the run.",
    "total_migration_seconds": "Summed WAN transfer seconds of all migrations.",
    "migrations_by_reason": "Migrations partitioned by trigger reason.",
    "mean_utilization": "Mean per-site allocated-GPU fraction.",
    "mean_allocation_loss": "Mean per-cycle GPU fraction lost to quantisation.",
    "profiling_gpu_seconds": "GPU-seconds spent micro-profiling.",
    "profiling_gpu_seconds_saved": "Profiling GPU-seconds saved by warm starts.",
    "retrainings_cancelled": "In-flight retrainings cancelled mid-window.",
    "reclaimed_gpu_seconds": "GPU-seconds reclaimed from cancelled retrainings.",
    "wasted_gpu_seconds": "GPU-seconds burned on retrainings that never paid.",
    "control_policy": "Control policy the fleet ran (info-style gauge).",
    "control_scans_skipped": "Control scans skipped as provably no-op.",
    "migrations_rejected": "Control rounds where no migration cleared the profit bar.",
    "proactive_cancellations": "Retrainings proactively cancelled by the control plane.",
    "transfers_failed": "WAN transfer attempts lost in flight.",
    "transfer_retries": "Failed checkpoint transfers that were retried.",
    "retry_seconds": "Wall-clock seconds lost to failed transfer attempts.",
    "wall_clock_seconds": "Wall-clock seconds the fleet layer spent.",
    "telemetry_events_dropped": "Events evicted from the telemetry event ring.",
    "telemetry_sampled_streams": "Streams densely sampled in the latest window.",
    "telemetry_ring_occupancy": "Live envelopes in the telemetry event ring.",
}

#: Summary keys that are monotone counts over the run (``counter`` type);
#: everything else is exported as a ``gauge``.
_COUNTERS = frozenset(
    {
        "migration_count",
        "migrations_by_reason",
        "retrainings_cancelled",
        "transfers_failed",
        "transfer_retries",
        "telemetry_events_dropped",
        "control_scans_skipped",
        "migrations_rejected",
        "proactive_cancellations",
    }
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - summaries carry no bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(summary: Mapping[str, object], *, prefix: str = METRIC_PREFIX) -> str:
    """Render a ``FleetResult.summary()`` mapping as Prometheus text format.

    Every key of ``summary`` produces a ``# HELP`` / ``# TYPE`` / sample
    block named ``{prefix}{key}[...]`` — string values as ``_info`` gauges,
    dict values as one labelled ``_total`` sample per entry (a ``# HELP``
    block is emitted even when the dict is empty, so coverage of the key
    set does not depend on what a particular run happened to do).
    """
    lines = []
    for key, value in summary.items():
        help_text = _HELP.get(key, f"Fleet summary key {key}.")
        kind = "counter" if key in _COUNTERS else "gauge"
        if isinstance(value, str):
            name = f"{prefix}{key}_info"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            label = key.split("_")[-1]  # admission_policy -> policy="..."
            lines.append(f'{name}{{{label}="{_escape_label(value)}"}} 1')
        elif isinstance(value, Mapping):
            name = f"{prefix}{key}_total"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for label_value in sorted(value):
                count = value[label_value]
                lines.append(
                    f'{name}{{reason="{_escape_label(str(label_value))}"}} '
                    f"{_format_number(count)}"
                )
        else:
            name = f"{prefix}{key}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {_format_number(value)}")
    return "\n".join(lines) + "\n"


def render_accuracy_histogram(
    histogram: Mapping[str, object], *, prefix: str = METRIC_PREFIX
) -> str:
    """Render a sampler histogram as a Prometheus ``histogram`` block.

    ``histogram`` is :meth:`repro.fleet.telemetry.AdaptiveStreamSampler.
    histogram` output: cumulative ``(le, count)`` buckets plus the total
    observation count and sum.  Bucket counts are clamped monotone
    non-decreasing and capped at the total, so interpolation noise from
    the streaming sketches can never produce an invalid exposition.
    """
    name = f"{prefix}stream_accuracy"
    lines = [
        f"# HELP {name} Distribution of per-stream window accuracies "
        "(merged P2 sketches).",
        f"# TYPE {name} histogram",
    ]
    total = int(histogram["count"])
    running = 0.0
    for bound, count in histogram["buckets"]:
        running = min(max(running, float(count)), float(total))
        lines.append(f'{name}_bucket{{le="{_format_number(bound)}"}} {running!r}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
    lines.append(f"{name}_sum {float(histogram['sum'])!r}")
    lines.append(f"{name}_count {total}")
    return "\n".join(lines) + "\n"
