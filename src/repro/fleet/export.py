"""Prometheus-style text exposition of fleet run summaries.

Renders :meth:`repro.fleet.metrics.FleetResult.summary` as the Prometheus
text format (``# HELP`` / ``# TYPE`` / sample lines): every summary key
becomes a metric named ``ekya_fleet_<key>``, so a scrape of the exposition
carries the run's whole documented metric surface — the unit tests pin that
coverage, and ``docs/telemetry.md`` documents the mapping.

Three summary values are not plain gauges and get the conventional
encodings:

- ``admission_policy`` (a string) becomes an *info*-style gauge with the
  value in a label: ``ekya_fleet_admission_policy_info{policy="..."} 1``.
- ``migrations_by_reason`` (a dict) becomes one labelled counter sample per
  reason: ``ekya_fleet_migrations_by_reason_total{reason="..."} n``.
- Integer counters render without a decimal point; floats via ``repr`` so
  the exposition round-trips the exact double.

``scripts/export_metrics.py`` is the CLI wrapper that runs a small fleet
and prints this exposition.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["METRIC_PREFIX", "render_prometheus"]

#: Every exported metric name starts with this.
METRIC_PREFIX = "ekya_fleet_"

#: ``# HELP`` strings per summary key.  Keys absent here (a future summary
#: addition) still export, with a generated placeholder help line — the
#: exposition never silently drops a summary key.
_HELP: Dict[str, str] = {
    "admission_policy": "Admission policy the fleet ran (info-style gauge).",
    "num_sites": "Edge sites in the fleet.",
    "num_windows": "Simulation cycles covered by this run.",
    "num_streams": "Peak streams served in any one cycle.",
    "mean_accuracy": "Fleet mean accuracy over cycles and served streams.",
    "p10_worst_stream_accuracy": "10th percentile of per-stream mean accuracies.",
    "migration_count": "Cross-site stream migrations over the run.",
    "total_migration_seconds": "Summed WAN transfer seconds of all migrations.",
    "migrations_by_reason": "Migrations partitioned by trigger reason.",
    "mean_utilization": "Mean per-site allocated-GPU fraction.",
    "mean_allocation_loss": "Mean per-cycle GPU fraction lost to quantisation.",
    "profiling_gpu_seconds": "GPU-seconds spent micro-profiling.",
    "profiling_gpu_seconds_saved": "Profiling GPU-seconds saved by warm starts.",
    "retrainings_cancelled": "In-flight retrainings cancelled mid-window.",
    "reclaimed_gpu_seconds": "GPU-seconds reclaimed from cancelled retrainings.",
    "transfers_failed": "WAN transfer attempts lost in flight.",
    "transfer_retries": "Failed checkpoint transfers that were retried.",
    "retry_seconds": "Wall-clock seconds lost to failed transfer attempts.",
    "wall_clock_seconds": "Wall-clock seconds the fleet layer spent.",
    "telemetry_events_dropped": "Events evicted from the telemetry event ring.",
    "telemetry_sampled_streams": "Streams densely sampled in the latest window.",
    "telemetry_ring_occupancy": "Live envelopes in the telemetry event ring.",
}

#: Summary keys that are monotone counts over the run (``counter`` type);
#: everything else is exported as a ``gauge``.
_COUNTERS = frozenset(
    {
        "migration_count",
        "migrations_by_reason",
        "retrainings_cancelled",
        "transfers_failed",
        "transfer_retries",
        "telemetry_events_dropped",
    }
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - summaries carry no bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(summary: Mapping[str, object], *, prefix: str = METRIC_PREFIX) -> str:
    """Render a ``FleetResult.summary()`` mapping as Prometheus text format.

    Every key of ``summary`` produces a ``# HELP`` / ``# TYPE`` / sample
    block named ``{prefix}{key}[...]`` — string values as ``_info`` gauges,
    dict values as one labelled ``_total`` sample per entry (a ``# HELP``
    block is emitted even when the dict is empty, so coverage of the key
    set does not depend on what a particular run happened to do).
    """
    lines = []
    for key, value in summary.items():
        help_text = _HELP.get(key, f"Fleet summary key {key}.")
        kind = "counter" if key in _COUNTERS else "gauge"
        if isinstance(value, str):
            name = f"{prefix}{key}_info"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            label = key.split("_")[-1]  # admission_policy -> policy="..."
            lines.append(f'{name}{{{label}="{_escape_label(value)}"}} 1')
        elif isinstance(value, Mapping):
            name = f"{prefix}{key}_total"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for label_value in sorted(value):
                count = value[label_value]
                lines.append(
                    f'{name}{{reason="{_escape_label(str(label_value))}"}} '
                    f"{_format_number(count)}"
                )
        else:
            name = f"{prefix}{key}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {_format_number(value)}")
    return "\n".join(lines) + "\n"
