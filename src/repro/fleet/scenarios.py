"""Injected scenario events for fleet simulations.

A :class:`Scenario` is a declarative list of events pinned to window indices
on the fleet's shared timeline.  The :class:`~repro.fleet.simulator.
FleetSimulator` applies each window's events before scheduling that window:

* :class:`FlashCrowd` — a burst of new streams arrives and must be admitted
  (optionally aimed at one site, e.g. a stadium camera cluster coming online).
* :class:`SiteFailure` — a site goes dark; its streams are force-evacuated to
  the surviving sites, paying full migration cost, and the site optionally
  comes back at ``recovery_window``.
* :class:`WanDegradation` — a site's WAN bandwidth is scaled down (congestion,
  backhaul fault), making migrations in and out of it more expensive, until
  an optional ``until_window``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..exceptions import FleetError


@dataclass(frozen=True)
class FlashCrowd:
    """``num_streams`` new streams of ``dataset`` arrive at ``window``."""

    window: int
    num_streams: int
    dataset: str = "cityscapes"
    #: Admit all arrivals to this site instead of asking the admission policy
    #: (models a geographically pinned burst).  ``None`` = policy decides.
    site: Optional[str] = None

    def __post_init__(self) -> None:
        if self.window < 0:
            raise FleetError("event window must be non-negative")
        if self.num_streams < 1:
            raise FleetError("a flash crowd needs at least one stream")


@dataclass(frozen=True)
class SiteFailure:
    """Site ``site`` fails at ``window`` and optionally recovers later."""

    window: int
    site: str
    recovery_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window < 0:
            raise FleetError("event window must be non-negative")
        if self.recovery_window is not None and self.recovery_window <= self.window:
            raise FleetError("recovery_window must be after the failure window")


@dataclass(frozen=True)
class WanDegradation:
    """Scale ``site``'s WAN bandwidth by the given factors from ``window`` on.

    Factors apply to the site's *provisioned* link, so a later degradation on
    the same site replaces (does not compose with) an earlier one, and the
    latest event's ``until_window`` is the one that restores the link.
    """

    window: int
    site: str
    uplink_factor: float = 1.0
    downlink_factor: float = 1.0
    #: Window at which the link returns to its provisioned bandwidth
    #: (``None`` = degraded for the rest of the run).
    until_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window < 0:
            raise FleetError("event window must be non-negative")
        if self.uplink_factor <= 0 or self.downlink_factor <= 0:
            raise FleetError("bandwidth factors must be positive")
        if self.until_window is not None and self.until_window <= self.window:
            raise FleetError("until_window must be after the degradation window")


ScenarioEvent = Union[FlashCrowd, SiteFailure, WanDegradation]


@dataclass
class Scenario:
    """An ordered collection of scenario events on the shared fleet timeline."""

    events: List[ScenarioEvent] = field(default_factory=list)

    def events_at(self, window_index: int) -> List[ScenarioEvent]:
        """Events that fire at the start of ``window_index``, in listed order."""
        return [event for event in self.events if event.window == window_index]
