"""Injected scenario events for fleet simulations.

A :class:`Scenario` is a declarative list of events on the fleet's simulated
timeline.  Since the :class:`~repro.fleet.calendar.EventCalendar` redesign,
events are **time-indexed**: each event fires at an absolute simulated time
in seconds (``at_seconds``), and expiries (``recovery_at`` / ``until_at``)
are absolute times too, so events can fire mid-window and sites with
different ``window_duration`` s share one scenario.  The window-indexed
constructors from the shared-window-index API (``window``,
``recovery_window``, ``until_window``) are kept for back-compatibility: a
window-indexed event is resolved to seconds against the fleet's shared
window duration, and therefore requires a homogeneous-window fleet.

* :class:`FlashCrowd` — a burst of new streams arrives and must be admitted
  (optionally aimed at one site, e.g. a stadium camera cluster coming online).
* :class:`SiteFailure` — a site goes dark; its streams are force-evacuated to
  the surviving sites, paying full migration cost, and the site optionally
  comes back at ``recovery_at`` / ``recovery_window``.
* :class:`WanDegradation` — a site's WAN bandwidth is scaled down (congestion,
  backhaul fault), making migrations in and out of it more expensive, until
  an optional ``until_at`` / ``until_window``.
* :class:`GpuFailure` — ``num_gpus`` of a site's GPUs fail (partial site
  degradation: the site keeps running on its remaining capacity instead of
  going dark), optionally recovering at ``recovery_at`` / ``recovery_window``.
  Losses stack: the failure removes up to ``num_gpus`` from whatever
  capacity is currently left, and its recovery restores exactly the count
  it took.

Every event is validated at construction (negative times, expiry not after
the trigger) and again when handed to a
:class:`~repro.fleet.simulator.FleetSimulator`, which checks the named sites
exist and that window-indexed events are only used on homogeneous fleets —
a bad scenario fails up front, not windows into a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, List, Optional, Union

from ..exceptions import FleetError


def _validate_trigger(event: "ScenarioEvent") -> None:
    """Shared trigger-field validation: exactly one of window / at_seconds."""
    if (event.window is None) == (event.at_seconds is None):
        raise FleetError(
            f"{type(event).__name__} needs exactly one of window= (window-indexed, "
            f"homogeneous fleets only) or at_seconds= (time-indexed)"
        )
    if event.window is not None and event.window < 0:
        raise FleetError("event window must be non-negative")
    if event.at_seconds is not None and event.at_seconds < 0:
        raise FleetError("event at_seconds must be non-negative")


def _validate_expiry(
    event: "ScenarioEvent",
    expiry_window: Optional[int],
    expiry_at: Optional[float],
    label: str,
) -> None:
    """Expiries must use the trigger's indexing scheme and come after it."""
    if expiry_window is not None and expiry_at is not None:
        raise FleetError(f"give {label}_window or {label}_at, not both")
    if expiry_window is not None:
        if event.window is None:
            raise FleetError(
                f"{label}_window only combines with a window-indexed trigger; "
                f"use {label}_at with at_seconds"
            )
        if expiry_window <= event.window:
            raise FleetError(f"{label}_window must be after the trigger window")
    if expiry_at is not None:
        if event.at_seconds is None:
            raise FleetError(
                f"{label}_at only combines with a time-indexed trigger; "
                f"use {label}_window with window="
            )
        if expiry_at <= event.at_seconds:
            raise FleetError(f"{label}_at must be after the trigger time")


class _TimedEvent:
    """Mixin resolving window-indexed fields to absolute simulated seconds."""

    @property
    def is_time_indexed(self) -> bool:
        return self.at_seconds is not None

    def trigger_seconds(self, window_duration: Optional[float]) -> float:
        """Absolute firing time; window-indexed events need the shared duration."""
        if self.at_seconds is not None:
            return float(self.at_seconds)
        if window_duration is None:
            raise FleetError(
                f"window-indexed {type(self).__name__} needs a shared window "
                f"duration; use at_seconds= on heterogeneous-window fleets"
            )
        return self.window * window_duration

    @staticmethod
    def _resolve(
        expiry_window: Optional[int],
        expiry_at: Optional[float],
        window_duration: Optional[float],
    ) -> Optional[float]:
        if expiry_at is not None:
            return float(expiry_at)
        if expiry_window is None:
            return None
        return expiry_window * window_duration


@dataclass(frozen=True)
class FlashCrowd(_TimedEvent):
    """``num_streams`` new streams of ``dataset`` arrive at the trigger time."""

    window: Optional[int] = None
    num_streams: int = 1
    dataset: str = "cityscapes"
    #: Admit all arrivals to this site instead of asking the admission policy
    #: (models a geographically pinned burst).  ``None`` = policy decides.
    site: Optional[str] = None
    at_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        _validate_trigger(self)
        if self.num_streams < 1:
            raise FleetError("a flash crowd needs at least one stream")


@dataclass(frozen=True)
class SiteFailure(_TimedEvent):
    """Site ``site`` fails at the trigger time and optionally recovers later."""

    window: Optional[int] = None
    site: str = ""
    recovery_window: Optional[int] = None
    at_seconds: Optional[float] = None
    recovery_at: Optional[float] = None

    def __post_init__(self) -> None:
        _validate_trigger(self)
        if not self.site:
            raise FleetError("SiteFailure needs a site name")
        _validate_expiry(self, self.recovery_window, self.recovery_at, "recovery")

    def recovery_seconds(self, window_duration: Optional[float]) -> Optional[float]:
        """Absolute recovery time, or ``None`` if the site stays down."""
        return self._resolve(self.recovery_window, self.recovery_at, window_duration)


@dataclass(frozen=True)
class WanDegradation(_TimedEvent):
    """Scale ``site``'s WAN bandwidth by the given factors from the trigger on.

    Factors apply to the site's *provisioned* link, so a later degradation on
    the same site replaces (does not compose with) an earlier one, and the
    latest event's expiry is the one that restores the link.
    """

    window: Optional[int] = None
    site: str = ""
    uplink_factor: float = 1.0
    downlink_factor: float = 1.0
    #: When the link returns to its provisioned bandwidth (``None`` =
    #: degraded for the rest of the run).
    until_window: Optional[int] = None
    at_seconds: Optional[float] = None
    until_at: Optional[float] = None

    def __post_init__(self) -> None:
        _validate_trigger(self)
        if not self.site:
            raise FleetError("WanDegradation needs a site name")
        if self.uplink_factor <= 0 or self.downlink_factor <= 0:
            raise FleetError("bandwidth factors must be positive")
        _validate_expiry(self, self.until_window, self.until_at, "until")

    def until_seconds(self, window_duration: Optional[float]) -> Optional[float]:
        """Absolute restore time, or ``None`` if degraded for the whole run."""
        return self._resolve(self.until_window, self.until_at, window_duration)


@dataclass(frozen=True)
class GpuFailure(_TimedEvent):
    """``num_gpus`` of ``site``'s GPUs fail at the trigger time.

    Partial degradation, not all-or-nothing: the site stays healthy and
    keeps serving its streams on the remaining capacity (a site down to
    zero effective GPUs skips windows entirely until a recovery).  Fleets
    with ``preemptive_sites=True`` rescale their in-flight retrainings at
    the failure instant; boundary-settled sites replan at their next
    window boundary.
    """

    window: Optional[int] = None
    site: str = ""
    num_gpus: int = 1
    recovery_window: Optional[int] = None
    at_seconds: Optional[float] = None
    recovery_at: Optional[float] = None

    def __post_init__(self) -> None:
        _validate_trigger(self)
        if not self.site:
            raise FleetError("GpuFailure needs a site name")
        if self.num_gpus < 1:
            raise FleetError("GpuFailure needs num_gpus >= 1")
        _validate_expiry(self, self.recovery_window, self.recovery_at, "recovery")

    def recovery_seconds(self, window_duration: Optional[float]) -> Optional[float]:
        """Absolute recovery time, or ``None`` if the GPUs stay down."""
        return self._resolve(self.recovery_window, self.recovery_at, window_duration)


ScenarioEvent = Union[FlashCrowd, SiteFailure, WanDegradation, GpuFailure]


@dataclass
class Scenario:
    """An ordered collection of scenario events on the fleet timeline."""

    events: List[ScenarioEvent] = field(default_factory=list)

    def validate(
        self,
        site_names: Collection[str],
        *,
        require_time_indexed: bool = False,
    ) -> None:
        """Fail fast on events that could only break windows into a run.

        Checks every event that names a site against ``site_names`` and,
        when ``require_time_indexed`` (heterogeneous-window fleets, where a
        shared window index does not exist), rejects window-indexed events.
        """
        known = set(site_names)
        for event in self.events:
            site = getattr(event, "site", None)
            if site and site not in known:
                raise FleetError(
                    f"{type(event).__name__} names unknown site {site!r}; "
                    f"fleet sites are {sorted(known)}"
                )
            if require_time_indexed and not event.is_time_indexed:
                raise FleetError(
                    f"window-indexed {type(event).__name__} cannot run on a "
                    f"heterogeneous-window fleet; use at_seconds="
                )

    def events_at(self, window_index: int) -> List[ScenarioEvent]:
        """Window-indexed events firing at ``window_index``, in listed order.

        Back-compatibility helper from the shared-window-index API; purely
        time-indexed events never match.
        """
        return [event for event in self.events if event.window == window_index]
