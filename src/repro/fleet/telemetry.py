"""Bounded-memory telemetry plane for the fleet simulator.

The event calendar scales the *compute* side of a fleet run, but telemetry
was still O(events) Python objects: every processed :class:`SimEvent` kept
alive in a list, plus fresh :class:`~repro.fleet.metrics.SiteWindowStats`
dataclasses per (site, window).  At the ROADMAP's 256-site / 10k-stream
target that is millions of objects — memory, not CPU, becomes the wall.

This module packs the whole observability surface into numpy-backed,
fixed-layout storage (the MicroView metrics-envelope idiom):

``EventRing``
    A fixed-capacity ring of 32-byte structured envelopes
    ``(time, kind, flag, site, stream, aux, value)`` plus a parallel
    payload-slot list for the few events that carry rich references
    (scenario objects, migration records, pushed profile batches).  Oldest
    entries are evicted and counted — ``events_dropped`` is exact.  A
    compatibility reader decodes the live window back into the *same*
    frozen ``SimEvent`` dataclasses, served as a cached immutable tuple so
    repeated ``event_trace`` reads inside loops are O(1), not O(n).

``AdaptiveStreamSampler``
    Per-stream accuracy series under adaptive sampling: each window the
    streams are ranked by absolute accuracy delta, the top-k movers are
    sampled densely into bounded per-stream rings and the stable tail at
    1-in-N (staggered so tail samples spread across windows).  Exact
    aggregates (count, running mean, p10 via a P² quantile estimator that
    stays exact below ``exact_quantile_limit`` samples) are maintained for
    *every* stream regardless of sampling, so summary metrics never lose
    precision — only raw series are thinned.

``SiteStatsTable``
    One preallocated structured array holding every (site, window) counter
    row; :class:`SiteStatsView` materialises
    :class:`~repro.fleet.metrics.SiteWindowStats` dataclasses lazily (and
    caches them), so ``FleetWindowResult.site_stats``, ``summary()``, the
    golden-parity fixture and every benchmark gate see bit-identical
    values without per-window dataclass churn.

``TelemetryPlane``
    The facade the simulator writes into, plus the Prometheus-style text
    exposition (``export_text``) covering every ``summary()`` key.

Defaults are sized so nothing evicts at current benchmark scales (the ring
holds 65 536 envelopes ≈ 2 MiB); parity gates therefore stay bit-identical
while the footprint is flat in the number of windows simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import FleetError
from .calendar import (
    ControlTick,
    GpuRecovered,
    InferenceReconfigured,
    MigrationStarted,
    ProfilePush,
    RetrainingComplete,
    ScenarioTrigger,
    SimEvent,
    SiteRecovery,
    TransferArrival,
    TransferFailed,
    WanRestore,
    WindowBoundary,
)
from .metrics import SiteWindowStats

__all__ = [
    "EVENT_DTYPE",
    "SITE_STATS_DTYPE",
    "TelemetryConfig",
    "EventRing",
    "P2Quantile",
    "AdaptiveStreamSampler",
    "SiteStatsTable",
    "SiteStatsView",
    "TelemetryPlane",
]


# --------------------------------------------------------------------------
# Event envelopes
# --------------------------------------------------------------------------

#: Fixed-layout event envelope: 32 bytes per event, aligned.  ``site`` and
#: ``stream`` are 1-based ids into the plane's intern tables (0 = empty
#: string); ``kind`` selects the decoder; ``flag``/``aux``/``value`` carry
#: the event-specific scalars (see the ``_KIND_*`` encoders below).
EVENT_DTYPE = np.dtype(
    [
        ("time", "f8"),
        ("kind", "u1"),
        ("flag", "u1"),
        ("site", "u2"),
        ("stream", "u4"),
        ("aux", "i4"),
        ("value", "f8"),
    ],
    align=True,
)

_KIND_SITE_RECOVERY = 1
_KIND_WAN_RESTORE = 2
_KIND_GPU_RECOVERED = 3
_KIND_SCENARIO_TRIGGER = 4
_KIND_TRANSFER_ARRIVAL = 5
_KIND_TRANSFER_FAILED = 6
_KIND_RETRAINING_COMPLETE = 7
_KIND_INFERENCE_RECONFIGURED = 8
_KIND_PROFILE_PUSH = 9
_KIND_CONTROL_TICK = 10
_KIND_WINDOW_BOUNDARY = 11
_KIND_MIGRATION_STARTED = 12

_KIND_BY_TYPE = {
    SiteRecovery: _KIND_SITE_RECOVERY,
    WanRestore: _KIND_WAN_RESTORE,
    GpuRecovered: _KIND_GPU_RECOVERED,
    ScenarioTrigger: _KIND_SCENARIO_TRIGGER,
    TransferArrival: _KIND_TRANSFER_ARRIVAL,
    TransferFailed: _KIND_TRANSFER_FAILED,
    RetrainingComplete: _KIND_RETRAINING_COMPLETE,
    InferenceReconfigured: _KIND_INFERENCE_RECONFIGURED,
    ProfilePush: _KIND_PROFILE_PUSH,
    ControlTick: _KIND_CONTROL_TICK,
    WindowBoundary: _KIND_WINDOW_BOUNDARY,
    MigrationStarted: _KIND_MIGRATION_STARTED,
}

#: ``InferenceReconfigured.reason`` is a small closed vocabulary — encoded
#: into ``flag`` so the envelope needs no payload slot.  Unknown reasons
#: (a future event producer) fall back to the payload slot losslessly.
_RECONFIGURE_REASONS = ("retraining_complete", "retraining_cancelled", "gpu_failure")
_RECONFIGURE_REASON_IDS = {reason: i for i, reason in enumerate(_RECONFIGURE_REASONS)}
_REASON_IN_PAYLOAD = 255

#: ``TransferFailed`` flag bits.
_FLAG_FINAL = 1
_FLAG_PUSH_KIND = 2


class _StringInterner:
    """Bidirectional string ↔ small-int table (id 0 is the empty string)."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {"": 0}
        self._names: List[str] = [""]

    def intern(self, name: str) -> int:
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self._names)
            self._ids[name] = ident
            self._names.append(name)
        return ident

    def name(self, ident: int) -> str:
        return self._names[ident]

    def __len__(self) -> int:
        return len(self._names)


class EventRing:
    """Fixed-capacity ring of :data:`EVENT_DTYPE` envelopes.

    Appends are O(1); once full, each append evicts the oldest envelope and
    increments :attr:`dropped` — the counter is exact
    (``dropped == max(0, recorded - capacity)`` always holds).  ``records``
    iterates the live window oldest-first.  A parallel payload-slot list
    keeps the few per-event Python references (owner scenario events,
    migration records, profile batches) alive exactly as long as their
    envelope, so memory stays bounded by the capacity.
    """

    __slots__ = ("_buf", "_payloads", "_head", "_count", "_recorded", "version")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise FleetError("event ring capacity must be >= 1")
        self._buf = np.zeros(capacity, dtype=EVENT_DTYPE)
        self._payloads: List[object] = [None] * capacity
        self._head = 0  # next write slot
        self._count = 0
        self._recorded = 0
        #: Bumped on every append; readers cache against it.
        self.version = 0

    @property
    def capacity(self) -> int:
        return len(self._buf)

    def __len__(self) -> int:
        return self._count

    @property
    def recorded(self) -> int:
        """Total envelopes ever appended (live + evicted)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Envelopes evicted to keep the ring at capacity — exact."""
        return self._recorded - self._count

    @property
    def nbytes(self) -> int:
        """Fixed storage footprint: envelope buffer + payload slots."""
        return self._buf.nbytes + 8 * len(self._payloads)

    def append(
        self,
        time: float,
        kind: int,
        site: int,
        stream: int,
        aux: int,
        value: float,
        flag: int,
        payload: object,
    ) -> None:
        idx = self._head
        row = self._buf[idx]
        row["time"] = time
        row["kind"] = kind
        row["flag"] = flag
        row["site"] = site
        row["stream"] = stream
        row["aux"] = aux
        row["value"] = value
        self._payloads[idx] = payload
        self._head = (idx + 1) % len(self._buf)
        if self._count < len(self._buf):
            self._count += 1
        self._recorded += 1
        self.version += 1

    def records(self) -> Iterable[Tuple[np.void, object]]:
        """Live ``(envelope, payload)`` pairs, oldest first."""
        capacity = len(self._buf)
        start = (self._head - self._count) % capacity
        for offset in range(self._count):
            idx = (start + offset) % capacity
            yield self._buf[idx], self._payloads[idx]


# --------------------------------------------------------------------------
# Streaming quantile sketch (P²)
# --------------------------------------------------------------------------


class P2Quantile:
    """Streaming quantile via the P² (piecewise-parabolic) algorithm.

    Jain & Chlamtac's five-marker estimator: O(1) memory, one parabolic
    marker adjustment per observation.  Below ``exact_limit`` samples the
    estimator keeps the raw values and answers exactly (matching
    ``np.percentile``); past the limit the buffer is replayed through the
    classic P² recurrence and subsequent observations update the markers in
    O(1).  For smooth distributions the steady-state absolute error is
    within ~5 % of the observed value range (the bound documented in
    ``docs/telemetry.md`` and pinned by the property tests).
    """

    __slots__ = ("_q", "_buffer", "_limit", "_heights", "_pos", "_desired", "_inc")

    def __init__(self, quantile: float, exact_limit: int = 64) -> None:
        if not 0.0 < quantile < 1.0:
            raise FleetError("quantile must be in (0, 1)")
        if exact_limit < 5:
            raise FleetError("exact_limit must be >= 5 (P² needs five markers)")
        self._q = quantile
        self._limit = exact_limit
        self._buffer: Optional[List[float]] = []
        self._heights: Optional[List[float]] = None
        self._pos: Optional[List[float]] = None
        self._desired: Optional[List[float]] = None
        p = quantile
        self._inc = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        if self._buffer is not None:
            return len(self._buffer)
        return int(self._pos[4])

    @property
    def is_exact(self) -> bool:
        """True while the estimator still holds every sample."""
        return self._buffer is not None

    def add(self, x: float) -> None:
        if self._buffer is not None:
            self._buffer.append(float(x))
            if len(self._buffer) > self._limit:
                samples, self._buffer = self._buffer, None
                self._replay(samples)
            return
        self._update(float(x))

    def value(self) -> float:
        """Current estimate (exact while in the buffered regime)."""
        if self._buffer is not None:
            if not self._buffer:
                return 0.0
            return float(
                np.percentile(np.asarray(self._buffer, dtype=float), self._q * 100.0)
            )
        return self._heights[2]

    def cumulative_below(self, x: float) -> float:
        """Estimated number of observed samples ``<= x``.

        Exact while buffered; in the streaming regime the five markers'
        ``(height, cumulative position)`` pairs are an empirical-CDF
        skeleton and the count is linearly interpolated between them.
        Monotone in ``x`` and bounded by :attr:`count`, which is what lets
        the Prometheus histogram export build non-decreasing buckets from
        many merged sketches.
        """
        if self._buffer is not None:
            return float(sum(1 for v in self._buffer if v <= x))
        q, n = self._heights, self._pos
        if x < q[0]:
            return 0.0
        if x >= q[4]:
            return n[4]
        for i in range(4):
            if x < q[i + 1]:
                span = q[i + 1] - q[i]
                if span <= 0.0:
                    return n[i + 1]
                return n[i] + (x - q[i]) / span * (n[i + 1] - n[i])
        return n[4]  # pragma: no cover - the scan above always returns

    # ------------------------------------------------------------ internals
    def _replay(self, samples: List[float]) -> None:
        first = sorted(samples[:5])
        self._heights = list(first)
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        p = self._q
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        for x in samples[5:]:
            self._update(x)

    def _update(self, x: float) -> None:
        q, n, d = self._heights, self._pos, self._desired
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if x >= q[i]:
                    cell = i
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            d[i] += self._inc[i]
        for i in (1, 2, 3):
            diff = d[i] - n[i]
            if (diff >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                diff <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if diff > 0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._pos
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._heights, self._pos
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])


# --------------------------------------------------------------------------
# Adaptive per-stream sampling
# --------------------------------------------------------------------------

_SERIES_DTYPE = np.dtype([("window", "i4"), ("value", "f8")], align=True)


class _StreamSketch:
    """Exact aggregates plus a bounded raw-sample ring for one stream."""

    __slots__ = ("count", "mean", "last", "p2", "tick", "ring", "head", "length")

    def __init__(self, series_capacity: int, exact_limit: int, phase: int) -> None:
        self.count = 0
        self.mean = 0.0
        self.last = 0.0
        self.p2 = P2Quantile(0.10, exact_limit=exact_limit)
        # Staggered tail phase: without it every tail stream would sample on
        # the same windows and the footprint/sample load would spike in
        # lockstep instead of spreading 1-in-N across windows.
        self.tick = phase
        self.ring = np.zeros(series_capacity, dtype=_SERIES_DTYPE)
        self.head = 0
        self.length = 0

    def update(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count
        self.p2.add(value)
        self.last = value

    def record_point(self, window: int, value: float) -> None:
        row = self.ring[self.head]
        row["window"] = window
        row["value"] = value
        self.head = (self.head + 1) % len(self.ring)
        if self.length < len(self.ring):
            self.length += 1

    def points(self) -> List[Tuple[int, float]]:
        start = (self.head - self.length) % len(self.ring)
        out = []
        for offset in range(self.length):
            row = self.ring[(start + offset) % len(self.ring)]
            out.append((int(row["window"]), float(row["value"])))
        return out


class AdaptiveStreamSampler:
    """Rank streams by accuracy movement; spend series fidelity on movers.

    Every observed value updates the stream's *exact* aggregates (count,
    running mean, P² p10) — sampling only decides which raw ``(window,
    value)`` points enter the bounded per-stream series ring.  Per window
    batch the ``top_k`` streams with the largest absolute accuracy delta
    (unseen streams rank as maximal movers) are sampled densely; the stable
    tail records 1 point every ``tail_stride`` windows, phase-staggered by
    a stable hash of the stream name.  Ranking ties break on the stream
    name, so sampling decisions are deterministic for a deterministic run.
    """

    def __init__(
        self,
        *,
        top_k: int,
        tail_stride: int,
        series_capacity: int,
        exact_limit: int,
    ) -> None:
        if top_k < 0:
            raise FleetError("top_k_movers must be >= 0")
        if tail_stride < 1:
            raise FleetError("tail_stride must be >= 1")
        if series_capacity < 1:
            raise FleetError("series_capacity must be >= 1")
        self._top_k = top_k
        self._stride = tail_stride
        self._series_capacity = series_capacity
        self._exact_limit = exact_limit
        self._sketches: Dict[str, _StreamSketch] = {}
        self._last_window = -1
        self._sampled_in_window = 0
        self._dense_samples = 0
        self._tail_samples = 0

    # ------------------------------------------------------------ observing
    def observe(self, window: int, accuracies: Mapping[str, float]) -> None:
        """Fold one site-window batch of per-stream accuracies in."""
        if not accuracies:
            return
        if window != self._last_window:
            self._last_window = window
            self._sampled_in_window = 0
        ranked = []
        for name, value in accuracies.items():
            sketch = self._sketches.get(name)
            if sketch is None:
                # A stable, run-independent phase (no Python hash
                # randomisation) staggers tail sampling across windows.
                phase = sum(name.encode("utf-8")) % self._stride
                sketch = _StreamSketch(self._series_capacity, self._exact_limit, phase)
                self._sketches[name] = sketch
                delta = float("inf")  # new streams are maximal movers
            else:
                delta = abs(value - sketch.last)
            ranked.append((delta, name, value, sketch))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        movers = {item[1] for item in ranked[: self._top_k]}
        for _, name, value, sketch in ranked:
            sketch.update(value)
            sketch.tick += 1
            if name in movers:
                sketch.record_point(window, value)
                self._sampled_in_window += 1
                self._dense_samples += 1
            elif sketch.tick % self._stride == 0:
                sketch.record_point(window, value)
                self._tail_samples += 1

    # -------------------------------------------------------------- reading
    @property
    def num_streams(self) -> int:
        return len(self._sketches)

    @property
    def sampled_streams(self) -> int:
        """Streams densely sampled (as movers) in the latest window."""
        return self._sampled_in_window

    @property
    def dense_samples(self) -> int:
        return self._dense_samples

    @property
    def tail_samples(self) -> int:
        return self._tail_samples

    @property
    def nbytes(self) -> int:
        return sum(sketch.ring.nbytes for sketch in self._sketches.values())

    def summary_of(self, name: str) -> Dict[str, float]:
        """Exact aggregate summary for one stream: count, mean, p10."""
        sketch = self._sketches.get(name)
        if sketch is None:
            raise FleetError(f"no telemetry recorded for stream {name!r}")
        return {
            "count": sketch.count,
            "mean": sketch.mean,
            "p10": sketch.p2.value(),
        }

    def series_of(self, name: str) -> List[Tuple[int, float]]:
        """The bounded raw ``(window, value)`` series sampled for a stream."""
        sketch = self._sketches.get(name)
        if sketch is None:
            raise FleetError(f"no telemetry recorded for stream {name!r}")
        return sketch.points()

    def histogram(self, buckets: Sequence[float]) -> Dict[str, object]:
        """Merge every stream's sketch into one cumulative histogram.

        Each observation is one (stream, window) accuracy; the per-stream
        P² sketches already hold the distribution, so the fleet-wide
        histogram is the sum of their interpolated CDFs at the bucket
        bounds (exact below each sketch's buffering limit).  Returns
        ``{"buckets": [(le, cumulative_count), ...], "count": total,
        "sum": total_sum}`` — the three pieces a Prometheus
        histogram-typed exposition needs.
        """
        bounds = sorted(float(b) for b in buckets)
        counts = [0.0] * len(bounds)
        total = 0
        total_sum = 0.0
        for sketch in self._sketches.values():
            total += sketch.count
            total_sum += sketch.mean * sketch.count
            for i, bound in enumerate(bounds):
                counts[i] += sketch.p2.cumulative_below(bound)
        return {
            "buckets": list(zip(bounds, counts)),
            "count": total,
            "sum": total_sum,
        }


# --------------------------------------------------------------------------
# Per-site window counters
# --------------------------------------------------------------------------

#: One (site, window) counter row.  Field set mirrors
#: :class:`~repro.fleet.metrics.SiteWindowStats` exactly; f8/i8 storage
#: round-trips every Python float/int bit-identically, which the
#: golden-parity fixture depends on.
SITE_STATS_DTYPE = np.dtype(
    [
        ("site", "u4"),
        ("num_streams", "i8"),
        ("utilization", "f8"),
        ("allocation_loss", "f8"),
        ("mean_accuracy", "f8"),
        ("scheduler_runtime_seconds", "f8"),
        ("profiling_gpu_seconds", "f8"),
        ("profiling_gpu_seconds_saved", "f8"),
        ("retrainings_cancelled", "i8"),
        ("reclaimed_gpu_seconds", "f8"),
        ("wasted_gpu_seconds", "f8"),
        ("transfers_failed", "i8"),
        ("transfer_retries", "i8"),
        ("retry_seconds", "f8"),
    ],
    align=True,
)

_STATS_FLOAT_FIELDS = (
    "utilization",
    "allocation_loss",
    "mean_accuracy",
    "scheduler_runtime_seconds",
    "profiling_gpu_seconds",
    "profiling_gpu_seconds_saved",
    "reclaimed_gpu_seconds",
    "wasted_gpu_seconds",
    "retry_seconds",
)
_STATS_INT_FIELDS = (
    "num_streams",
    "retrainings_cancelled",
    "transfers_failed",
    "transfer_retries",
)


class SiteStatsTable:
    """Every (site, window) counter row of a run in one structured array.

    Replaces per-window ``SiteWindowStats`` allocation churn: the simulator
    appends rows (amortised O(1); the array grows geometrically) and
    :meth:`stats` reconstructs the frozen dataclass on demand — readers that
    never look at a window's stats never pay for materialising them.
    """

    __slots__ = ("_interner", "_rows", "_len")

    def __init__(self, interner: _StringInterner, initial_capacity: int) -> None:
        if initial_capacity < 1:
            raise FleetError("site stats capacity must be >= 1")
        self._interner = interner
        self._rows = np.zeros(initial_capacity, dtype=SITE_STATS_DTYPE)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def nbytes(self) -> int:
        return self._rows.nbytes

    def append(self, site: str, **fields: float) -> int:
        if self._len == len(self._rows):
            grown = np.zeros(2 * len(self._rows), dtype=SITE_STATS_DTYPE)
            grown[: self._len] = self._rows
            self._rows = grown
        row = self._rows[self._len]
        row["site"] = self._interner.intern(site)
        for name, value in fields.items():
            row[name] = value
        self._len += 1
        return self._len - 1

    def stats(self, row_index: int) -> SiteWindowStats:
        row = self._rows[row_index]
        kwargs = {"site": self._interner.name(int(row["site"]))}
        for name in _STATS_INT_FIELDS:
            kwargs[name] = int(row[name])
        for name in _STATS_FLOAT_FIELDS:
            kwargs[name] = float(row[name])
        return SiteWindowStats(**kwargs)


class SiteStatsView(Mapping):
    """Lazy ``{site: SiteWindowStats}`` view over table rows of one cycle.

    ``FleetWindowResult.site_stats`` serves this view's materialised dict:
    dataclasses are reconstructed once per cycle on first read and cached
    until another row is linked, so determinism tests comparing
    ``site_stats`` dicts across runs see ordinary value equality.
    """

    __slots__ = ("_table", "_rows", "_cache")

    def __init__(self, table: SiteStatsTable) -> None:
        self._table = table
        self._rows: Dict[str, int] = {}
        self._cache: Optional[Dict[str, SiteWindowStats]] = None

    def link(self, site: str, row_index: int) -> None:
        self._rows[site] = row_index
        self._cache = None

    def as_dict(self) -> Dict[str, SiteWindowStats]:
        if self._cache is None:
            self._cache = {
                site: self._table.stats(row) for site, row in self._rows.items()
            }
        return self._cache

    def __getitem__(self, site: str) -> SiteWindowStats:
        return self.as_dict()[site]

    def __iter__(self):
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other) -> bool:
        if isinstance(other, SiteStatsView):
            return self.as_dict() == other.as_dict()
        if isinstance(other, Mapping):
            return self.as_dict() == dict(other)
        return NotImplemented


# --------------------------------------------------------------------------
# Configuration + facade
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryConfig:
    """Sizing knobs of the telemetry plane (``make_fleet(telemetry=...)``).

    The defaults never evict at current benchmark scales — the 65 536-slot
    event ring covers a 16-site × 400-stream × 30-window run with an order
    of magnitude of headroom — so enabling telemetry (it is always on)
    changes no observable result, only bounds memory.
    """

    #: Envelopes the event ring holds before evicting the oldest.
    event_ring_capacity: int = 65536
    #: Raw ``(window, value)`` points kept per stream series.
    series_capacity: int = 64
    #: Streams sampled densely per window batch (the biggest movers).
    top_k_movers: int = 8
    #: Stable-tail streams record one point every this many windows.
    tail_stride: int = 4
    #: Samples a P² estimator buffers (and answers exactly) before
    #: switching to O(1) streaming markers.
    exact_quantile_limit: int = 64
    #: Initial (site, window) rows preallocated in the stats table.
    site_stats_capacity: int = 512

    def __post_init__(self) -> None:
        if self.event_ring_capacity < 1:
            raise FleetError("event_ring_capacity must be >= 1")
        if self.series_capacity < 1:
            raise FleetError("series_capacity must be >= 1")
        if self.top_k_movers < 0:
            raise FleetError("top_k_movers must be >= 0")
        if self.tail_stride < 1:
            raise FleetError("tail_stride must be >= 1")
        if self.exact_quantile_limit < 5:
            raise FleetError("exact_quantile_limit must be >= 5")
        if self.site_stats_capacity < 1:
            raise FleetError("site_stats_capacity must be >= 1")


class TelemetryPlane:
    """The bounded-memory observability sink of one fleet simulation.

    The simulator writes three streams into the plane — processed calendar
    events, per-stream window accuracies, and per-(site, window) counter
    rows — and every existing reader (``event_trace``, ``site_stats``,
    ``summary()``) is served from the packed storage via compatibility
    views.  :meth:`export_text` renders a run's summary as a
    Prometheus-style text exposition.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self._config = config or TelemetryConfig()
        self._interner = _StringInterner()
        self._ring = EventRing(self._config.event_ring_capacity)
        self._sampler = AdaptiveStreamSampler(
            top_k=self._config.top_k_movers,
            tail_stride=self._config.tail_stride,
            series_capacity=self._config.series_capacity,
            exact_limit=self._config.exact_quantile_limit,
        )
        self._site_table = SiteStatsTable(
            self._interner, self._config.site_stats_capacity
        )
        self._trace_cache: Tuple[SimEvent, ...] = ()
        self._trace_version = self._ring.version

    # ------------------------------------------------------------ accessors
    @property
    def config(self) -> TelemetryConfig:
        return self._config

    @property
    def ring_capacity(self) -> int:
        return self._ring.capacity

    @property
    def ring_occupancy(self) -> int:
        return len(self._ring)

    @property
    def events_recorded(self) -> int:
        return self._ring.recorded

    @property
    def events_dropped(self) -> int:
        return self._ring.dropped

    @property
    def sampled_streams(self) -> int:
        return self._sampler.sampled_streams

    @property
    def sampler(self) -> AdaptiveStreamSampler:
        return self._sampler

    @property
    def nbytes(self) -> int:
        """Telemetry storage footprint (event ring + stats + series rings)."""
        return self._ring.nbytes + self._site_table.nbytes + self._sampler.nbytes

    def memory_report(self) -> Dict[str, int]:
        """Peak-memory accounting for chaos / benchmark reporting."""
        return {
            "ring_capacity": self.ring_capacity,
            "ring_occupancy": self.ring_occupancy,
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
            "site_stat_rows": len(self._site_table),
            "sampled_series_streams": self._sampler.num_streams,
            "telemetry_bytes": self.nbytes,
        }

    # ---------------------------------------------------------- event trace
    def record_event(self, event: SimEvent) -> None:
        kind = _KIND_BY_TYPE[type(event)]
        site = stream = aux = flag = 0
        value = 0.0
        payload = None
        if kind == _KIND_SITE_RECOVERY or kind == _KIND_WAN_RESTORE:
            site = self._interner.intern(event.site)
            payload = event.owner
        elif kind == _KIND_GPU_RECOVERED:
            site = self._interner.intern(event.site)
            aux = event.num_gpus
        elif kind == _KIND_SCENARIO_TRIGGER:
            payload = event.event
        elif kind == _KIND_TRANSFER_ARRIVAL:
            stream = self._interner.intern(event.stream)
        elif kind == _KIND_TRANSFER_FAILED:
            stream = self._interner.intern(event.stream)
            site = self._interner.intern(event.site)
            aux = event.attempt
            value = event.wasted_seconds
            flag = (_FLAG_FINAL if event.final else 0) | (
                _FLAG_PUSH_KIND if event.kind == "profile_push" else 0
            )
        elif kind == _KIND_RETRAINING_COMPLETE:
            site = self._interner.intern(event.site)
            stream = self._interner.intern(event.stream)
            aux = event.window_index
        elif kind == _KIND_INFERENCE_RECONFIGURED:
            site = self._interner.intern(event.site)
            stream = self._interner.intern(event.stream)
            value = event.inference_gpu
            flag = _RECONFIGURE_REASON_IDS.get(event.reason, _REASON_IN_PAYLOAD)
            if flag == _REASON_IN_PAYLOAD:
                payload = event.reason
        elif kind == _KIND_PROFILE_PUSH:
            site = self._interner.intern(event.site)
            aux = len(event.profiles)
            payload = event.profiles
        elif kind == _KIND_WINDOW_BOUNDARY:
            site = self._interner.intern(event.site)
            aux = event.window_index
        elif kind == _KIND_MIGRATION_STARTED:
            payload = event.migration
        self._ring.append(event.time, kind, site, stream, aux, value, flag, payload)

    def _decode(self, row: np.void, payload: object) -> SimEvent:
        time = float(row["time"])
        kind = int(row["kind"])
        site = self._interner.name(int(row["site"]))
        stream = self._interner.name(int(row["stream"]))
        if kind == _KIND_SITE_RECOVERY:
            return SiteRecovery(time=time, site=site, owner=payload)
        if kind == _KIND_WAN_RESTORE:
            return WanRestore(time=time, site=site, owner=payload)
        if kind == _KIND_GPU_RECOVERED:
            return GpuRecovered(time=time, site=site, num_gpus=int(row["aux"]))
        if kind == _KIND_SCENARIO_TRIGGER:
            return ScenarioTrigger(time=time, event=payload)
        if kind == _KIND_TRANSFER_ARRIVAL:
            return TransferArrival(time=time, stream=stream)
        if kind == _KIND_TRANSFER_FAILED:
            flag = int(row["flag"])
            return TransferFailed(
                time=time,
                stream=stream,
                site=site,
                kind="profile_push" if flag & _FLAG_PUSH_KIND else "checkpoint",
                attempt=int(row["aux"]),
                wasted_seconds=float(row["value"]),
                final=bool(flag & _FLAG_FINAL),
            )
        if kind == _KIND_RETRAINING_COMPLETE:
            return RetrainingComplete(
                time=time, site=site, stream=stream, window_index=int(row["aux"])
            )
        if kind == _KIND_INFERENCE_RECONFIGURED:
            flag = int(row["flag"])
            if flag == _REASON_IN_PAYLOAD:
                reason = payload
            else:
                reason = _RECONFIGURE_REASONS[flag]
            return InferenceReconfigured(
                time=time,
                site=site,
                stream=stream,
                inference_gpu=float(row["value"]),
                reason=reason,
            )
        if kind == _KIND_PROFILE_PUSH:
            return ProfilePush(time=time, site=site, profiles=payload)
        if kind == _KIND_CONTROL_TICK:
            return ControlTick(time=time)
        if kind == _KIND_WINDOW_BOUNDARY:
            return WindowBoundary(time=time, site=site, window_index=int(row["aux"]))
        if kind == _KIND_MIGRATION_STARTED:
            return MigrationStarted(time=time, migration=payload)
        raise FleetError(f"unknown telemetry event kind {kind}")  # pragma: no cover

    def events(self) -> Tuple[SimEvent, ...]:
        """The live event window decoded back into ``SimEvent`` objects.

        Cached against the ring version: repeated reads between appends
        return the *same* tuple object (O(1)), fixing the old
        ``event_trace`` behaviour of copying the whole list per access.
        """
        if self._trace_version != self._ring.version:
            self._trace_cache = tuple(
                self._decode(row, payload) for row, payload in self._ring.records()
            )
            self._trace_version = self._ring.version
        return self._trace_cache

    # ----------------------------------------------------------- site stats
    def record_site_stats(self, cycle, site: str, **fields: float) -> None:
        """Append one (site, window) counter row and link it into ``cycle``.

        ``cycle`` is the :class:`~repro.fleet.metrics.FleetWindowResult`
        whose ``site_stats`` mapping should serve the row.
        """
        row = self._site_table.append(site, **fields)
        view = cycle.stats_view
        if view is None or view._table is not self._site_table:
            view = SiteStatsView(self._site_table)
            cycle.stats_view = view
        view.link(site, row)

    # ------------------------------------------------------ stream sampling
    def observe_streams(self, window: int, accuracies: Mapping[str, float]) -> None:
        self._sampler.observe(window, accuracies)

    def stream_summary(self, name: str) -> Dict[str, float]:
        return self._sampler.summary_of(name)

    def stream_series(self, name: str) -> List[Tuple[int, float]]:
        return self._sampler.series_of(name)

    # -------------------------------------------------------------- results
    def annotate(self, result) -> None:
        """Stamp a :class:`FleetResult` with the plane's gauges."""
        result.telemetry_events_dropped = self.events_dropped
        result.telemetry_sampled_streams = self.sampled_streams
        result.telemetry_ring_occupancy = self.ring_occupancy

    def export_text(self, result) -> str:
        """Prometheus-style text exposition of a run's summary.

        Appends the histogram-typed per-stream accuracy distribution
        (merged from the sampler's P² sketches) to the scalar summary
        metrics whenever any stream has been observed.
        """
        from .export import (
            ACCURACY_HISTOGRAM_BUCKETS,
            render_accuracy_histogram,
            render_prometheus,
        )

        text = render_prometheus(result.summary())
        if self._sampler.num_streams:
            histogram = self._sampler.histogram(ACCURACY_HISTOGRAM_BUCKETS)
            text += render_accuracy_histogram(histogram)
        return text
