"""Partial-failure fault model for the fleet's WAN transfers.

The fleet's original fault vocabulary is binary: a
:class:`~repro.fleet.scenarios.SiteFailure` kills a whole site, and every
checkpoint migration and profile push is assumed to arrive intact.  Real
edge WANs lose packets: a checkpoint transfer can fail in flight and must be
retried (NS-2's lossy-link retry/backoff model, realised as discrete events
on the same calendar), and a retry budget eventually runs out — at which
point the migrated stream restarts *cold* at its destination, paying the
lost retraining benefit instead of blocking forever.

:class:`WanFaultModel` is the declarative knob set (per-attempt loss
probability, retry budget, exponential backoff), and
:func:`sample_transfer` turns one logical transfer into a deterministic
attempt chain — each failed attempt becomes a
:class:`~repro.fleet.calendar.TransferFailed` event, and the chain either
ends in an arrival or in a final give-up.  All sampling goes through the
caller's RNG in event order, so a seeded fleet replays bit-identically.

Everything here is opt-in: fleets built without
``make_fleet(wan_faults=...)`` never draw from the fault RNG and reproduce
the lossless engine bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import FleetError


@dataclass(frozen=True)
class WanFaultModel:
    """Stochastic loss model applied to every WAN transfer of a fleet.

    Attributes
    ----------
    loss_rate:
        Per-attempt probability that a checkpoint transfer fails in flight.
        Composed with the endpoints' :attr:`~repro.cluster.network.
        NetworkLink.loss_rate` (independent loss processes), so a lossy
        satellite hop and a lossy backbone both contribute.
    max_retries:
        Failed checkpoint transfers are retried up to this many times
        (``max_retries + 1`` total attempts) before the migration gives up
        and the stream restarts cold at its destination.
    backoff_seconds / backoff_factor:
        Exponential backoff between attempts: retry ``k`` (1-based) waits
        ``backoff_seconds * backoff_factor ** (k - 1)`` after the failure.
    push_loss_rate:
        Per-push probability that a :class:`~repro.fleet.calendar.
        ProfilePush` is lost in flight.  Lost pushes are *not* retried —
        neighbours silently fall back to their local curves.  ``None``
        (default) reuses ``loss_rate``.
    seed:
        Seed of the fault RNG.  Draws happen in event order, so one seed
        fixes the whole fault realisation of a run.
    """

    loss_rate: float = 0.0
    max_retries: int = 3
    backoff_seconds: float = 5.0
    backoff_factor: float = 2.0
    push_loss_rate: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise FleetError("loss_rate must be in [0, 1)")
        if self.max_retries < 0:
            raise FleetError("max_retries must be non-negative")
        if self.backoff_seconds < 0:
            raise FleetError("backoff_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise FleetError("backoff_factor must be >= 1")
        if self.push_loss_rate is not None and not 0.0 <= self.push_loss_rate < 1.0:
            raise FleetError("push_loss_rate must be in [0, 1)")

    @property
    def effective_push_loss_rate(self) -> float:
        return self.loss_rate if self.push_loss_rate is None else self.push_loss_rate


def combined_loss(*rates: float) -> float:
    """Compose independent loss probabilities: ``1 - prod(1 - p_i)``."""
    survive = 1.0
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise FleetError("loss rates must be in [0, 1]")
        survive *= 1.0 - rate
    return 1.0 - survive


@dataclass(frozen=True)
class TransferAttemptFailure:
    """One failed attempt inside a transfer's retry chain."""

    #: 1-based attempt number.
    attempt: int
    #: Absolute simulated time the attempt was detected as failed (its
    #: would-have-been arrival instant).
    failed_at: float
    #: Wall-clock seconds this failure cost: the wasted transfer plus the
    #: backoff before the next attempt (0 backoff after the final failure).
    wasted_seconds: float
    #: True when this failure exhausted the retry budget (the give-up).
    final: bool


@dataclass(frozen=True)
class TransferOutcome:
    """The realised fate of one logical WAN transfer.

    ``ends_at`` is the instant the transfer saga is over: the arrival when
    ``delivered``, the final failure otherwise.  Either way the destination
    cannot act on the stream's checkpoint before ``ends_at`` — a delivered
    transfer hands over the checkpoint then; a failed one restarts the
    stream cold then.
    """

    failures: Tuple[TransferAttemptFailure, ...]
    arrival: Optional[float]
    ends_at: float
    delivered: bool

    @property
    def retries(self) -> int:
        """Failed attempts that were followed by another attempt."""
        return sum(1 for failure in self.failures if not failure.final)

    @property
    def wasted_seconds(self) -> float:
        return float(sum(failure.wasted_seconds for failure in self.failures))


def sample_transfer(
    rng: np.random.Generator,
    *,
    departed: float,
    transfer_seconds: float,
    loss_rate: float,
    model: WanFaultModel,
) -> TransferOutcome:
    """Realise one transfer's attempt chain against ``model``.

    Attempt ``k`` (1-based) departs after the previous attempt's failure
    plus its backoff and completes ``transfer_seconds`` later; each attempt
    independently fails with probability ``loss_rate``.  Exactly one RNG
    draw is made per attempt, in attempt order, so a fleet that samples
    transfers in event order replays bit-identically from the fault seed.
    """
    if transfer_seconds < 0:
        raise FleetError("transfer_seconds must be non-negative")
    failures = []
    start = departed
    finish = departed
    for attempt in range(1, model.max_retries + 2):
        finish = start + transfer_seconds
        if rng.random() >= loss_rate:
            return TransferOutcome(
                failures=tuple(failures), arrival=finish, ends_at=finish, delivered=True
            )
        final = attempt == model.max_retries + 1
        backoff = (
            0.0 if final else model.backoff_seconds * model.backoff_factor ** (attempt - 1)
        )
        failures.append(
            TransferAttemptFailure(
                attempt=attempt,
                failed_at=finish,
                wasted_seconds=transfer_seconds + backoff,
                final=final,
            )
        )
        start = finish + backoff
    return TransferOutcome(
        failures=tuple(failures), arrival=None, ends_at=finish, delivered=False
    )
