"""Seeded chaos harness for the fleet's partial-failure fault model.

The fault model (:mod:`repro.fleet.faults`, :class:`~repro.fleet.scenarios.
GpuFailure`, :class:`~repro.fleet.scenarios.SiteFailure`) gives the fleet
simulator plenty of ways to lose things mid-flight; this module is the
systematic way to exercise them.  A :class:`ChaosInjector` compiles a
*replayable* fault schedule — site-failure bursts, WAN degradation windows,
GPU flaps, plus a WAN loss model — from ``(seed, intensity)`` alone, and
:func:`run_chaos_trial` runs one such schedule end to end under a
:class:`~repro.utils.clock.ManualClock`, checking fleet-wide invariants that
must hold *no matter what* the schedule did:

* **stream conservation** — no stream is ever lost: the controller's
  registry and the per-site memberships agree, and (absent flash crowds)
  the fleet ends with exactly the streams it started with;
* **accounting** — fault counters are internally consistent (retries are a
  subset of failures, wasted seconds are finite and non-negative) and every
  realised accuracy stays in ``[0, 1]``;
* **GPU conservation** — each site's lost + effective GPUs always equals
  its provisioned count, and a degraded site's rebuilt server spec matches
  its effective capacity.

Determinism is the harness's backbone: the same ``(seed, intensity)`` pair
compiles the same schedule, draws the same fault RNG sequence, and produces
the same :meth:`~repro.fleet.metrics.FleetResult.summary` bit for bit —
``scripts/run_chaos.py`` re-runs a few trials to prove it on every sweep.
``intensity=0.0`` compiles an *empty* schedule with no WAN fault model, so
the sweep's zero point is exactly the lossless engine and accuracy-vs-
intensity comparisons have a faithful baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import FleetError
from ..utils.clock import ManualClock
from ..utils.rng import ensure_rng, stable_seed
from .controller import FleetController
from .factory import make_fleet
from .faults import WanFaultModel
from .metrics import FleetResult
from .scenarios import GpuFailure, Scenario, ScenarioEvent, SiteFailure, WanDegradation
from .simulator import FleetSimulator

#: Ceiling on the WAN loss rate any intensity can reach — past this the
#: sweep measures retry arithmetic, not system behaviour.
MAX_LOSS_RATE = 0.45


@dataclass(frozen=True)
class ChaosInjector:
    """Compiles ``(seed, intensity)`` into a replayable fault schedule.

    ``intensity`` scales everything at once: the number of site-failure
    bursts, WAN degradation windows and GPU flaps drawn over the horizon,
    and the loss rates of the :class:`~repro.fleet.faults.WanFaultModel`.
    ``intensity=0.0`` yields an empty :class:`Scenario` and no fault model
    (so a zero-intensity trial is the lossless engine, bit for bit);
    ``intensity=1.0`` is a rough "one fault event per couple of windows"
    regime.  All draws come from one ``ensure_rng(seed)`` stream in a fixed
    order, so a schedule is a pure function of its inputs.

    Two deliberate schedule properties:

    * concurrent *distinct-site* failures are capped at ``num_sites - 1``,
      so evacuations always have a healthy destination and stream
      conservation is testable (total-blackout handling is a different
      invariant class);
    * overlapping failures of the *same* site are allowed — they exercise
      the simulator's latest-event-wins recovery ownership.
    """

    seed: int = 0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.intensity < 0:
            raise FleetError(f"intensity must be non-negative, got {self.intensity}")

    def wan_faults(self) -> Optional[WanFaultModel]:
        """The WAN loss model this schedule pairs with (``None`` at zero)."""
        if self.intensity == 0:
            return None
        return WanFaultModel(
            loss_rate=min(MAX_LOSS_RATE, 0.08 * self.intensity),
            max_retries=2,
            backoff_seconds=4.0,
            backoff_factor=2.0,
            push_loss_rate=min(MAX_LOSS_RATE, 0.12 * self.intensity),
            seed=stable_seed("wan-faults", self.seed),
        )

    def compile(
        self,
        site_names: Sequence[str],
        *,
        window_duration: float,
        num_windows: int,
        gpus_per_site: int = 4,
    ) -> Scenario:
        """Draw the fault schedule for one fleet shape.

        Events are time-indexed (``at_seconds``), so the schedule works on
        heterogeneous-window fleets too; triggers land strictly inside the
        ``num_windows * window_duration`` horizon.
        """
        if num_windows < 1:
            raise FleetError("num_windows must be >= 1")
        if window_duration <= 0:
            raise FleetError("window_duration must be positive")
        if self.intensity == 0 or not site_names:
            return Scenario()
        rng = ensure_rng(self.seed)
        horizon = num_windows * window_duration
        events: List[ScenarioEvent] = []
        events.extend(
            self._draw_site_failures(rng, site_names, horizon, window_duration)
        )
        events.extend(self._draw_wan_windows(rng, site_names, horizon, window_duration))
        events.extend(
            self._draw_gpu_flaps(
                rng, site_names, horizon, window_duration, gpus_per_site
            )
        )
        return Scenario(events)

    # ------------------------------------------------------------- internals
    def _count(self, rate_per_window: float, num_windows: float) -> int:
        return int(round(self.intensity * rate_per_window * num_windows))

    def _draw_site_failures(
        self, rng, site_names: Sequence[str], horizon: float, window: float
    ) -> List[SiteFailure]:
        num_windows = horizon / window
        wanted = self._count(0.25, num_windows)
        taken: List[Tuple[str, float, float]] = []
        failures: List[SiteFailure] = []
        for _ in range(wanted):
            site = site_names[int(rng.integers(len(site_names)))]
            start = float(rng.uniform(0.05, 0.95)) * horizon
            end = start + float(rng.uniform(0.5, 1.5)) * window
            concurrent = {
                other
                for other, s, e in taken
                if other != site and s < end and start < e
            }
            # Cap concurrent distinct-site failures so evacuations always
            # have a healthy destination; same-site overlaps pass through.
            if len(concurrent) >= len(site_names) - 1:
                continue
            taken.append((site, start, end))
            failures.append(
                SiteFailure(site=site, at_seconds=start, recovery_at=end)
            )
        return failures

    def _draw_wan_windows(
        self, rng, site_names: Sequence[str], horizon: float, window: float
    ) -> List[WanDegradation]:
        num_windows = horizon / window
        wanted = self._count(0.3, num_windows)
        degradations: List[WanDegradation] = []
        for _ in range(wanted):
            site = site_names[int(rng.integers(len(site_names)))]
            start = float(rng.uniform(0.05, 0.9)) * horizon
            until = start + float(rng.uniform(0.5, 2.0)) * window
            factor = float(rng.uniform(0.15, 0.6))
            degradations.append(
                WanDegradation(
                    site=site,
                    at_seconds=start,
                    until_at=until,
                    uplink_factor=factor,
                    downlink_factor=factor,
                )
            )
        return degradations

    def _draw_gpu_flaps(
        self,
        rng,
        site_names: Sequence[str],
        horizon: float,
        window: float,
        gpus_per_site: int,
    ) -> List[GpuFailure]:
        num_windows = horizon / window
        wanted = self._count(0.35, num_windows)
        flaps: List[GpuFailure] = []
        for _ in range(wanted):
            site = site_names[int(rng.integers(len(site_names)))]
            start = float(rng.uniform(0.05, 0.9)) * horizon
            end = start + float(rng.uniform(0.3, 1.2)) * window
            # Mostly partial losses; the occasional full-site draw is
            # deliberate (degrade_gpus clamps, the site skips windows).
            num_gpus = 1 + int(rng.integers(max(1, gpus_per_site)))
            flaps.append(
                GpuFailure(
                    site=site, at_seconds=start, recovery_at=end, num_gpus=num_gpus
                )
            )
        return flaps


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos trial: the schedule, the verdict, the numbers."""

    seed: int
    intensity: float
    num_fault_events: int
    violations: Tuple[str, ...]
    summary: Dict[str, object] = field(hash=False)
    #: Telemetry-plane memory accounting of the trial (ring occupancy, drop
    #: counter, packed-storage bytes) — what ``scripts/run_chaos.py`` prints
    #: per trial so chaos CI catches unbounded telemetry growth.
    telemetry: Dict[str, int] = field(hash=False, default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_invariants(
    controller: FleetController,
    result: FleetResult,
    *,
    initial_streams: Optional[int] = None,
) -> List[str]:
    """Fleet-wide invariants that must hold under any fault schedule.

    Returns a list of human-readable violation strings (empty = all good)
    rather than raising, so a sweep can report every broken seed at once.
    """
    violations: List[str] = []
    # --- stream conservation: registry and site memberships agree, and no
    # stream was silently dropped or duplicated along the way.
    per_site = [(site.name, site.stream_names) for site in controller.sites]
    total = sum(len(names) for _, names in per_site)
    if total != controller.num_streams:
        violations.append(
            f"stream conservation: sites hold {total} streams, "
            f"registry has {controller.num_streams}"
        )
    seen: Dict[str, str] = {}
    for site_name, names in per_site:
        for name in names:
            if name in seen:
                violations.append(
                    f"stream conservation: {name!r} attached to both "
                    f"{seen[name]!r} and {site_name!r}"
                )
            seen[name] = site_name
    admitted = sum(len(w.admitted_streams) for w in result.windows)
    if initial_streams is not None and controller.num_streams != initial_streams + admitted:
        violations.append(
            f"stream conservation: started with {initial_streams} + "
            f"{admitted} admitted, ended with {controller.num_streams}"
        )
    # --- GPU conservation: lost + effective == provisioned, always, and a
    # degraded (but non-dark) site's server runs at its effective capacity.
    for site in controller.sites:
        if not 0 <= site.gpus_lost <= site.spec.num_gpus:
            violations.append(
                f"gpu conservation: site {site.name!r} lost {site.gpus_lost} "
                f"of {site.spec.num_gpus} provisioned GPUs"
            )
        if site.effective_gpus + site.gpus_lost != site.spec.num_gpus:
            violations.append(
                f"gpu conservation: site {site.name!r} effective "
                f"{site.effective_gpus} + lost {site.gpus_lost} != "
                f"provisioned {site.spec.num_gpus}"
            )
        if site.effective_gpus >= 1 and site.server.spec.num_gpus != site.effective_gpus:
            violations.append(
                f"gpu conservation: site {site.name!r} server spec has "
                f"{site.server.spec.num_gpus} GPUs, effective is "
                f"{site.effective_gpus}"
            )
    # --- accounting: fault counters internally consistent, accuracies sane.
    for window in result.windows:
        for stats in window.site_stats.values():
            if stats.transfer_retries > stats.transfers_failed:
                violations.append(
                    f"accounting: window {window.window_index} site "
                    f"{stats.site!r} has {stats.transfer_retries} retries > "
                    f"{stats.transfers_failed} failures"
                )
            for label, value in (
                ("retry_seconds", stats.retry_seconds),
                ("utilization", stats.utilization),
                ("profiling_gpu_seconds", stats.profiling_gpu_seconds),
                ("reclaimed_gpu_seconds", stats.reclaimed_gpu_seconds),
                ("wasted_gpu_seconds", stats.wasted_gpu_seconds),
            ):
                if not math.isfinite(value) or value < 0:
                    violations.append(
                        f"accounting: window {window.window_index} site "
                        f"{stats.site!r} {label}={value!r}"
                    )
        for name, fleet_outcome in window.stream_outcomes.items():
            accuracy = fleet_outcome.outcome.realized_average_accuracy
            if not math.isfinite(accuracy) or not 0.0 <= accuracy <= 1.0:
                violations.append(
                    f"accounting: window {window.window_index} stream "
                    f"{name!r} realized accuracy {accuracy!r}"
                )
        for migration in window.migrations:
            if not math.isfinite(migration.transfer_seconds) or (
                migration.transfer_seconds < 0
            ):
                violations.append(
                    f"accounting: window {window.window_index} migration of "
                    f"{migration.stream_name!r} has transfer_seconds="
                    f"{migration.transfer_seconds!r}"
                )
    return violations


def run_chaos_trial(
    seed: int,
    *,
    intensity: float = 1.0,
    quick: bool = False,
    num_sites: Optional[int] = None,
    streams_per_site: Optional[int] = None,
    num_windows: Optional[int] = None,
    window_duration: float = 200.0,
    gpus_per_site: int = 4,
    preemptive_sites: bool = True,
    profile_sharing: bool = True,
    control_policy: str = "greedy",
) -> ChaosReport:
    """Run one seeded chaos schedule end to end and check the invariants.

    Builds a :class:`~repro.utils.clock.ManualClock` fleet (results are a
    pure function of the arguments), compiles the :class:`ChaosInjector`
    schedule for ``(seed, intensity)``, runs ``num_windows`` windows, and
    returns a :class:`ChaosReport` with any invariant violations.  ``quick``
    shrinks the default fleet shape for CI sweeps; explicit shape arguments
    win over both defaults.
    """
    shape_sites = num_sites if num_sites is not None else (3 if quick else 4)
    shape_streams = (
        streams_per_site if streams_per_site is not None else (2 if quick else 3)
    )
    shape_windows = num_windows if num_windows is not None else (6 if quick else 10)
    injector = ChaosInjector(seed=stable_seed("chaos-schedule", seed), intensity=intensity)
    clock = ManualClock()
    controller = make_fleet(
        shape_sites,
        shape_streams,
        gpus_per_site=gpus_per_site,
        window_duration=window_duration,
        seed=seed,
        clock=clock,
        preemptive_sites=preemptive_sites,
        profile_sharing=profile_sharing,
        wan_faults=injector.wan_faults(),
        control_policy=control_policy,
    )
    scenario = injector.compile(
        [site.name for site in controller.sites],
        window_duration=window_duration,
        num_windows=shape_windows,
        gpus_per_site=gpus_per_site,
    )
    simulator = FleetSimulator(controller, scenario, clock=clock)
    result = simulator.run(shape_windows)
    violations = check_invariants(
        controller, result, initial_streams=shape_sites * shape_streams
    )
    plane = simulator.telemetry
    # Telemetry accounting must stay exact under any fault schedule: the
    # ring never reports more live envelopes than its capacity, and the
    # drop counter is exactly the overflow beyond it.
    if plane.ring_occupancy > plane.ring_capacity:
        violations.append(
            f"telemetry accounting: ring occupancy {plane.ring_occupancy} "
            f"exceeds capacity {plane.ring_capacity}"
        )
    expected_drops = max(0, plane.events_recorded - plane.ring_capacity)
    if plane.events_dropped != expected_drops:
        violations.append(
            f"telemetry accounting: {plane.events_dropped} events dropped, "
            f"expected {expected_drops} "
            f"({plane.events_recorded} recorded, capacity {plane.ring_capacity})"
        )
    return ChaosReport(
        seed=seed,
        intensity=intensity,
        num_fault_events=len(scenario.events),
        violations=tuple(violations),
        summary=result.summary(),
        telemetry=plane.memory_report(),
    )


def run_chaos_sweep(
    seeds: Sequence[int], *, intensity: float = 1.0, quick: bool = False
) -> List[ChaosReport]:
    """Run one trial per seed; the caller decides what to do with failures."""
    return [run_chaos_trial(seed, intensity=intensity, quick=quick) for seed in seeds]
