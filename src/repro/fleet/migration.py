"""Migration of a stream's serving state between fleet sites.

Moving a stream is not free: the destination site needs the stream's current
model checkpoint (so it can keep serving and warm-start retraining) and its
accumulated profile history (so the micro-profiler does not start cold).
Both travel over the WAN — up the source site's uplink, down the destination
site's downlink — and until they arrive the stream keeps serving at the
stale model's accuracy and any scheduled retraining cannot start, which is
exactly how :class:`~repro.fleet.metrics.FleetStreamOutcome` accounts the
cost: the post-retraining accuracy segment of the window is delayed by the
transfer time.

The transfer times computed here are the *lossless* baseline.  On fleets
built with ``make_fleet(wan_faults=...)`` the simulator stretches each
transfer through :func:`~repro.fleet.faults.sample_transfer` — failed
attempts and their backoffs extend the arrival, and a transfer whose retry
budget runs out never arrives at all (the stream restarts cold at the
destination).  This module stays loss-agnostic: one hop, one transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.network import NetworkLink
from ..exceptions import FleetError
from ..models.edge_model import EDGE_MODEL_SIZE_MBITS

#: Size of a stream's accumulated profile history (per-configuration accuracy
#: curves and GPU-time measurements) — small next to the model checkpoint.
PROFILE_SIZE_MBITS = 2.0


@dataclass(frozen=True)
class MigrationCostModel:
    """What a migration ships and how long that takes over the WAN."""

    checkpoint_mbits: float = EDGE_MODEL_SIZE_MBITS
    profile_mbits: float = PROFILE_SIZE_MBITS

    def __post_init__(self) -> None:
        if self.checkpoint_mbits <= 0:
            raise FleetError("checkpoint_mbits must be positive")
        if self.profile_mbits < 0:
            raise FleetError("profile_mbits must be non-negative")

    @property
    def payload_mbits(self) -> float:
        return self.checkpoint_mbits + self.profile_mbits

    def transfer_seconds(self, source_link: NetworkLink, destination_link: NetworkLink) -> float:
        """Seconds to ship checkpoint + profile from source to destination.

        The payload leaves over the source site's uplink and arrives over the
        destination site's downlink; both legs pay their link's RTT.  WAN
        degradation scenarios scale either link's bandwidth, so a migration
        out of (or into) a degraded site takes correspondingly longer.
        """
        return source_link.upload_seconds(self.payload_mbits) + destination_link.download_seconds(
            self.payload_mbits
        )


@dataclass(frozen=True)
class MigrationEvent:
    """One completed stream hand-off between two sites."""

    stream_name: str
    source: str
    destination: str
    window_index: int
    transfer_seconds: float
    #: Why the stream moved: ``"overload"`` (rebalancing), ``"evacuation"``
    #: (site failure) — admission of a brand-new stream is not a migration.
    reason: str

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise FleetError("migration source and destination must differ")
        if self.transfer_seconds < 0:
            raise FleetError("transfer_seconds must be non-negative")
