"""Configuration spaces and Pareto-based pruning.

The thief scheduler iterates over a list Γ of retraining configurations and a
list Λ of inference configurations per video stream (§4.2).  Exhaustive grids
are large; the micro-profiler "prunes out those configurations ... that are
usually significantly distant from the configurations on the Pareto curve of
the resource-accuracy profile" (§4.3).  :class:`ConfigurationSpace` owns both
lists and implements that pruning given observed (cost, accuracy) points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError
from ..utils.math_utils import is_pareto_dominated, pareto_frontier
from .inference import InferenceConfig, default_inference_configs
from .retraining import RetrainingConfig, default_retraining_grid, validate_unique


@dataclass
class ConfigurationSpace:
    """The per-stream decision space (Γ, Λ) handed to the scheduler."""

    retraining_configs: List[RetrainingConfig] = field(default_factory=default_retraining_grid)
    inference_configs: List[InferenceConfig] = field(default_factory=default_inference_configs)

    def __post_init__(self) -> None:
        self.retraining_configs = validate_unique(self.retraining_configs)
        if not self.inference_configs:
            raise ConfigurationError("at least one inference configuration is required")

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self.retraining_configs) * len(self.inference_configs)

    def describe(self) -> Dict[str, int]:
        """Small summary used in logs and benchmark headers."""
        return {
            "retraining_configs": len(self.retraining_configs),
            "inference_configs": len(self.inference_configs),
            "joint_size": len(self),
        }

    # --------------------------------------------------------------- pruning
    def pruned(
        self,
        observed_profile: Mapping[RetrainingConfig, Tuple[float, float]],
        *,
        max_configs: Optional[int] = 18,
        dominance_tolerance: float = 0.02,
    ) -> "ConfigurationSpace":
        """Return a space with clearly-dominated retraining configs removed.

        ``observed_profile`` maps each retraining configuration to a
        ``(gpu_seconds, accuracy)`` pair observed historically (previous
        windows or the hold-out profiling run the paper uses to build Figure
        3b).  A configuration survives if it is within ``dominance_tolerance``
        of the Pareto frontier; if more than ``max_configs`` survive, the ones
        closest to the frontier (by accuracy deficit at comparable cost) are
        kept.  Configurations that were never observed are conservatively
        kept.
        """
        observed = {cfg: observed_profile[cfg] for cfg in self.retraining_configs if cfg in observed_profile}
        unobserved = [cfg for cfg in self.retraining_configs if cfg not in observed_profile]
        if not observed:
            return ConfigurationSpace(list(self.retraining_configs), list(self.inference_configs))

        survivors: List[Tuple[RetrainingConfig, float]] = []
        for cfg, point in observed.items():
            others = [p for other_cfg, p in observed.items() if other_cfg is not cfg]
            if not is_pareto_dominated(point, others, tolerance=dominance_tolerance):
                survivors.append((cfg, 0.0))
            else:
                # Distance from the frontier: how much better the best
                # same-or-cheaper configuration is.
                best_at_cost = max(
                    (acc for cost, acc in others if cost <= point[0] + dominance_tolerance),
                    default=point[1],
                )
                survivors.append((cfg, max(0.0, best_at_cost - point[1])))
        survivors.sort(key=lambda item: item[1])
        kept = [cfg for cfg, deficit in survivors if deficit <= dominance_tolerance]
        if max_configs is not None and len(kept) > max_configs:
            kept = kept[:max_configs]
        elif max_configs is not None and len(kept) < min(max_configs, len(survivors)):
            # Backfill with the near-frontier configurations up to the cap.
            for cfg, _deficit in survivors:
                if cfg not in kept:
                    kept.append(cfg)
                if len(kept) >= max_configs:
                    break
        kept_set = {cfg.key() for cfg in kept}
        retained = [cfg for cfg in self.retraining_configs if cfg.key() in kept_set]
        retained.extend(unobserved)
        if not retained:
            retained = list(self.retraining_configs)
        return ConfigurationSpace(retained, list(self.inference_configs))

    def pareto_retraining_configs(
        self, observed_profile: Mapping[RetrainingConfig, Tuple[float, float]]
    ) -> List[RetrainingConfig]:
        """Retraining configs on the (cost, accuracy) Pareto frontier."""
        configs = [cfg for cfg in self.retraining_configs if cfg in observed_profile]
        points = [observed_profile[cfg] for cfg in configs]
        frontier_indices = pareto_frontier(points)
        return [configs[i] for i in frontier_indices]

    # --------------------------------------------------------------- helpers
    def cheapest_inference_config(self) -> InferenceConfig:
        """The inference configuration with the lowest GPU demand."""
        return min(self.inference_configs, key=lambda cfg: float(cfg.gpu_demand or 0.0))

    def most_accurate_inference_config(self) -> InferenceConfig:
        """The inference configuration with the highest accuracy factor."""
        return max(self.inference_configs, key=lambda cfg: cfg.accuracy_factor())

    def as_dict(self) -> Dict:
        return {
            "retraining_configs": [cfg.as_dict() for cfg in self.retraining_configs],
            "inference_configs": [cfg.as_dict() for cfg in self.inference_configs],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ConfigurationSpace":
        return cls(
            retraining_configs=[RetrainingConfig.from_dict(item) for item in payload["retraining_configs"]],
            inference_configs=[InferenceConfig.from_dict(item) for item in payload["inference_configs"]],
        )

    @classmethod
    def default(cls) -> "ConfigurationSpace":
        """The default grid used throughout the evaluation benchmarks."""
        return cls()

    @classmethod
    def small(cls) -> "ConfigurationSpace":
        """A compact space for unit tests and quick examples."""
        return cls(
            retraining_configs=default_retraining_grid(
                epochs=(5, 15, 30),
                layers_trained=(0.5, 1.0),
                data_fractions=(0.5, 1.0),
            ),
            inference_configs=default_inference_configs(
                sampling_rates=(1.0, 0.5, 0.25),
                resolution_scales=(1.0, 0.5),
            ),
        )
