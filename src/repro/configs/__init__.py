"""Retraining and inference configuration spaces (Γ and Λ in the paper)."""

from .inference import InferenceConfig, default_inference_configs, derive_gpu_demand
from .retraining import (
    NO_RETRAINING,
    RetrainingConfig,
    default_retraining_grid,
    named_table1_configs,
    validate_unique,
)
from .space import ConfigurationSpace

__all__ = [
    "InferenceConfig",
    "default_inference_configs",
    "derive_gpu_demand",
    "NO_RETRAINING",
    "RetrainingConfig",
    "default_retraining_grid",
    "named_table1_configs",
    "validate_unique",
    "ConfigurationSpace",
]
