"""Retraining-job configurations ("hyperparameter configurations").

A retraining configuration in the paper (§3.1, §6.1) combines:

* number of training epochs,
* batch size,
* number of neurons in the last (classification) layer,
* number of layers to retrain (the rest are frozen),
* the fraction of the retraining window's data to use.

These knobs control both the GPU cost of retraining and the accuracy of the
retrained model (Figure 3).  :class:`RetrainingConfig` is a frozen value
object so that it can be used as a dictionary key in profile stores and
scheduler decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

#: Sentinel meaning "do not retrain this stream in this window" (γ = ∅ in the
#: paper's formulation).  Represented by ``None`` in scheduler decisions; this
#: constant exists so call-sites read clearly.
NO_RETRAINING = None


@dataclass(frozen=True, order=True)
class RetrainingConfig:
    """Immutable description of one retraining hyperparameter configuration.

    Attributes
    ----------
    epochs:
        Number of passes over the (sampled) retraining data.
    batch_size:
        Mini-batch size used by the trainer.
    last_layer_neurons:
        Width of the final hidden layer; larger is more expressive and more
        expensive.
    layers_trained_fraction:
        Fraction of the network's layers that are unfrozen and updated
        (``1.0`` retrains the whole model, smaller values freeze the early
        layers as in transfer learning).
    data_fraction:
        Fraction of the retraining window's accumulated samples used for
        training (the window data is itself a golden-model-labelled subset of
        the raw video).
    name:
        Optional human-readable label (e.g. ``"Cfg1A"`` from Table 1).
    """

    epochs: int
    batch_size: int = 16
    last_layer_neurons: int = 64
    layers_trained_fraction: float = 1.0
    data_fraction: float = 1.0
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.last_layer_neurons < 1:
            raise ConfigurationError("last_layer_neurons must be >= 1")
        if not 0.0 < self.layers_trained_fraction <= 1.0:
            raise ConfigurationError("layers_trained_fraction must be in (0, 1]")
        if not 0.0 < self.data_fraction <= 1.0:
            raise ConfigurationError("data_fraction must be in (0, 1]")

    # ------------------------------------------------------------------ cost
    def relative_cost(self) -> float:
        """Relative GPU cost of this configuration (arbitrary units).

        Cost grows linearly with epochs and data fraction, sub-linearly with
        batch size (larger batches amortise per-batch overhead), linearly with
        the fraction of layers trained (frozen layers only need a forward
        pass), and mildly with the classifier width.  The absolute GPU-seconds
        for a specific stream come from the profiles subpackage; this relative
        number is what the synthetic profile generator and cost model scale.
        """
        freeze_factor = 0.35 + 0.65 * self.layers_trained_fraction
        batch_factor = 1.0 + 8.0 / float(self.batch_size)
        width_factor = 0.8 + 0.2 * (self.last_layer_neurons / 64.0)
        return float(
            self.epochs * self.data_fraction * freeze_factor * batch_factor * width_factor
        )

    def gpu_seconds(self, *, seconds_per_epoch_full_data: float) -> float:
        """GPU-seconds at 100 % GPU allocation given a per-epoch measurement.

        ``seconds_per_epoch_full_data`` is what the micro-profiler measures:
        the wall-clock time of one epoch over the full window data at 100 %
        allocation.  Cost then scales with epochs, data fraction and the
        freeze/batch/width factors of :meth:`relative_cost`.
        """
        if seconds_per_epoch_full_data <= 0:
            raise ConfigurationError("seconds_per_epoch_full_data must be positive")
        baseline = RetrainingConfig(
            epochs=1,
            batch_size=self.batch_size,
            last_layer_neurons=self.last_layer_neurons,
            layers_trained_fraction=1.0,
            data_fraction=1.0,
        )
        scale = self.relative_cost() / baseline.relative_cost()
        return float(seconds_per_epoch_full_data * scale)

    # ------------------------------------------------------------ variations
    def with_epochs(self, epochs: int) -> "RetrainingConfig":
        """Copy of this config with a different epoch count."""
        return replace(self, epochs=epochs)

    def with_data_fraction(self, data_fraction: float) -> "RetrainingConfig":
        """Copy of this config with a different data fraction."""
        return replace(self, data_fraction=data_fraction)

    def key(self) -> Tuple:
        """Hashable identity ignoring the cosmetic ``name`` field."""
        return (
            self.epochs,
            self.batch_size,
            self.last_layer_neurons,
            round(self.layers_trained_fraction, 6),
            round(self.data_fraction, 6),
        )

    def as_dict(self) -> Dict:
        return {
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "last_layer_neurons": self.last_layer_neurons,
            "layers_trained_fraction": self.layers_trained_fraction,
            "data_fraction": self.data_fraction,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RetrainingConfig":
        return cls(
            epochs=int(payload["epochs"]),
            batch_size=int(payload.get("batch_size", 16)),
            last_layer_neurons=int(payload.get("last_layer_neurons", 64)),
            layers_trained_fraction=float(payload.get("layers_trained_fraction", 1.0)),
            data_fraction=float(payload.get("data_fraction", 1.0)),
            name=payload.get("name"),
        )


def default_retraining_grid(
    *,
    epochs: Sequence[int] = (5, 15, 30),
    layers_trained: Sequence[float] = (0.1, 0.5, 1.0),
    data_fractions: Sequence[float] = (0.2, 0.5, 1.0),
    batch_sizes: Sequence[int] = (16,),
    last_layer_neurons: Sequence[int] = (64,),
) -> List[RetrainingConfig]:
    """Cartesian grid of retraining configurations.

    The defaults yield 27 configurations spanning the two hyperparameters the
    paper sweeps in Figure 3a (data subsampling λ and layers trained) times
    three epoch budgets; the evaluation (§6.3) uses "18 configurations per
    model", which :func:`repro.configs.space.ConfigurationSpace.pruned`
    reaches after Pareto pruning.
    """
    grid: List[RetrainingConfig] = []
    for epoch_count in epochs:
        for layer_fraction in layers_trained:
            for data_fraction in data_fractions:
                for batch_size in batch_sizes:
                    for width in last_layer_neurons:
                        grid.append(
                            RetrainingConfig(
                                epochs=int(epoch_count),
                                batch_size=int(batch_size),
                                last_layer_neurons=int(width),
                                layers_trained_fraction=float(layer_fraction),
                                data_fraction=float(data_fraction),
                            )
                        )
    if not grid:
        raise ConfigurationError("the retraining grid must contain at least one configuration")
    return grid


def named_table1_configs() -> Dict[str, RetrainingConfig]:
    """The four named configurations of Table 1 (Cfg1A/Cfg2A/Cfg1B/Cfg2B).

    Their accuracies and GPU costs in the illustrative example come from the
    paper's Table 1 and live in :mod:`repro.profiles.synthetic`; here we only
    need distinct hyperparameter identities with the right cost ordering
    (Cfg1* is the expensive, high-accuracy option; Cfg2* the cheap one).
    """
    return {
        "Cfg1A": RetrainingConfig(epochs=30, layers_trained_fraction=1.0, data_fraction=1.0, name="Cfg1A"),
        "Cfg2A": RetrainingConfig(epochs=15, layers_trained_fraction=0.5, data_fraction=0.5, name="Cfg2A"),
        "Cfg1B": RetrainingConfig(epochs=30, layers_trained_fraction=1.0, data_fraction=0.8, name="Cfg1B"),
        "Cfg2B": RetrainingConfig(epochs=10, layers_trained_fraction=0.5, data_fraction=0.5, name="Cfg2B"),
    }


def validate_unique(configs: Iterable[RetrainingConfig]) -> List[RetrainingConfig]:
    """Return ``configs`` as a list, raising if two share the same identity."""
    seen = {}
    result = []
    for config in configs:
        key = config.key()
        if key in seen:
            raise ConfigurationError(f"duplicate retraining configuration: {config}")
        seen[key] = config
        result.append(config)
    return result
