"""Inference-job configurations.

Inference pipelines trade accuracy for resources by downsizing frames and
sampling fewer of them (§3.1).  An :class:`InferenceConfig` captures the
frame-sampling rate and input resolution; its ``gpu_demand`` is the GPU
fraction needed to keep up with the live stream at full frame rate, and its
``accuracy_factor`` is the multiplicative accuracy retained relative to
analysing every frame at full resolution.

When an inference job is given less GPU than its configuration demands, it
cannot keep up with the live stream; :func:`effective_accuracy_factor`
captures the resulting extra degradation from dropped frames (this is the
"inference accuracy drops because it may have to sample the frames" effect in
Figure 4c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..utils.math_utils import clamp


@dataclass(frozen=True, order=True)
class InferenceConfig:
    """Immutable description of one inference pipeline configuration.

    Attributes
    ----------
    frame_sampling_rate:
        Fraction of live frames analysed (1.0 analyses every frame).
    resolution_scale:
        Input resolution relative to native (1.0 = 720p native in our
        synthetic workloads; 0.5 halves each dimension).
    gpu_demand:
        GPU fraction required to sustain this configuration at the stream's
        native frame rate.  If ``None`` it is derived from the sampling rate
        and resolution with :func:`derive_gpu_demand`.
    name:
        Optional label for reporting.
    """

    frame_sampling_rate: float
    resolution_scale: float = 1.0
    gpu_demand: Optional[float] = None
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.frame_sampling_rate <= 1.0:
            raise ConfigurationError("frame_sampling_rate must be in (0, 1]")
        if not 0.0 < self.resolution_scale <= 1.0:
            raise ConfigurationError("resolution_scale must be in (0, 1]")
        if self.gpu_demand is None:
            object.__setattr__(self, "gpu_demand", derive_gpu_demand(self.frame_sampling_rate, self.resolution_scale))
        if self.gpu_demand is not None and self.gpu_demand <= 0:
            raise ConfigurationError("gpu_demand must be positive")

    # ---------------------------------------------------------------- scores
    def accuracy_factor(self) -> float:
        """Fraction of the model's accuracy retained by this configuration.

        Sampling fewer frames and shrinking the input both lose accuracy with
        diminishing penalties — analysing half the frames at full resolution
        retains most of the accuracy, matching the mild degradation prior
        video-analytics profilers report for moderate knob settings.
        """
        sampling_penalty = 0.22 * (1.0 - self.frame_sampling_rate) ** 1.2
        resolution_penalty = 0.30 * (1.0 - self.resolution_scale) ** 1.5
        return clamp(1.0 - sampling_penalty - resolution_penalty, 0.05, 1.0)

    def effective_accuracy_factor(self, allocated_gpu: float) -> float:
        """Accuracy factor when only ``allocated_gpu`` GPU fraction is given.

        If the allocation covers the configuration's demand the factor is
        unchanged: the pipeline keeps up using its *planned* (smart) frame
        sampling.  Otherwise it falls behind and drops frames blindly, which
        hurts far more than deliberate subsampling — in the paper's example a
        halved allocation drops inference accuracy from 65 % to 49 %
        (a ~25 % relative loss), which the sub-linear ``(allocation/demand)``
        penalty below reproduces.
        """
        if allocated_gpu < 0:
            raise ConfigurationError("allocated_gpu must be non-negative")
        base = self.accuracy_factor()
        demand = float(self.gpu_demand or 0.0)
        if demand <= 0 or allocated_gpu >= demand:
            return base
        if allocated_gpu == 0:
            return 0.0
        keep_up_fraction = allocated_gpu / demand
        return base * float(keep_up_fraction ** 0.4)

    def key(self) -> tuple:
        return (round(self.frame_sampling_rate, 6), round(self.resolution_scale, 6), round(float(self.gpu_demand or 0.0), 6))

    def as_dict(self) -> Dict:
        return {
            "frame_sampling_rate": self.frame_sampling_rate,
            "resolution_scale": self.resolution_scale,
            "gpu_demand": self.gpu_demand,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "InferenceConfig":
        return cls(
            frame_sampling_rate=float(payload["frame_sampling_rate"]),
            resolution_scale=float(payload.get("resolution_scale", 1.0)),
            gpu_demand=payload.get("gpu_demand"),
            name=payload.get("name"),
        )


def derive_gpu_demand(frame_sampling_rate: float, resolution_scale: float, *, full_demand: float = 0.25) -> float:
    """GPU fraction needed to keep up with the stream for the given knobs.

    ``full_demand`` is the fraction of one GPU a compressed edge model needs
    to analyse every frame of one 30 fps stream at native resolution.  Demand
    scales linearly with the sampling rate and quadratically with resolution
    (pixels), floored so even a heavily subsampled pipeline has nonzero cost.
    """
    if not 0.0 < frame_sampling_rate <= 1.0:
        raise ConfigurationError("frame_sampling_rate must be in (0, 1]")
    if not 0.0 < resolution_scale <= 1.0:
        raise ConfigurationError("resolution_scale must be in (0, 1]")
    demand = full_demand * frame_sampling_rate * (resolution_scale ** 2)
    return float(max(demand, 0.02))


def default_inference_configs(
    *,
    sampling_rates: Sequence[float] = (1.0, 0.75, 0.5, 0.25, 0.1),
    resolution_scales: Sequence[float] = (1.0, 0.75, 0.5),
) -> List[InferenceConfig]:
    """Grid of inference configurations spanning typical knob settings."""
    configs: List[InferenceConfig] = []
    for sampling in sampling_rates:
        for resolution in resolution_scales:
            configs.append(
                InferenceConfig(
                    frame_sampling_rate=float(sampling),
                    resolution_scale=float(resolution),
                )
            )
    if not configs:
        raise ConfigurationError("the inference grid must contain at least one configuration")
    return configs
