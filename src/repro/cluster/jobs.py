"""Inference and retraining jobs.

Every video stream contributes two jobs to the edge server in each retraining
window: a long-running **inference job** that must keep up with the live video
and a periodic **retraining job** that consumes a fixed amount of GPU-time
(§3).  These classes carry the state the scheduler and simulator need: chosen
configuration, GPU allocation, progress and completion time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..configs.inference import InferenceConfig
from ..configs.retraining import RetrainingConfig
from ..exceptions import SchedulingError


class JobKind(enum.Enum):
    """Whether a job analyses live video or retrains the model."""

    INFERENCE = "inference"
    RETRAINING = "retraining"


class JobState(enum.Enum):
    """Lifecycle of a job within one retraining window."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    SKIPPED = "skipped"


def inference_job_id(stream_name: str) -> str:
    """Canonical job id for a stream's inference job."""
    return f"{stream_name}/inference"


def retraining_job_id(stream_name: str) -> str:
    """Canonical job id for a stream's retraining job."""
    return f"{stream_name}/retraining"


@dataclass
class Job:
    """Common state shared by inference and retraining jobs."""

    stream_name: str
    kind: JobKind
    gpu_allocation: float = 0.0
    state: JobState = JobState.PENDING

    @property
    def job_id(self) -> str:
        if self.kind is JobKind.INFERENCE:
            return inference_job_id(self.stream_name)
        return retraining_job_id(self.stream_name)

    def allocate(self, fraction: float) -> None:
        if fraction < 0:
            raise SchedulingError("GPU allocation must be non-negative")
        self.gpu_allocation = float(fraction)


@dataclass
class InferenceJob(Job):
    """Analyses the live video of one stream for the whole window."""

    config: Optional[InferenceConfig] = None

    def __init__(
        self,
        stream_name: str,
        *,
        config: Optional[InferenceConfig] = None,
        gpu_allocation: float = 0.0,
    ) -> None:
        super().__init__(stream_name=stream_name, kind=JobKind.INFERENCE, gpu_allocation=gpu_allocation)
        self.config = config
        self.state = JobState.RUNNING

    def effective_accuracy(self, model_accuracy: float) -> float:
        """Instantaneous inference accuracy given the serving model's accuracy.

        Combines the model's accuracy on the current window's content with the
        degradation of the chosen inference configuration under the current
        allocation (frame sampling / resolution / falling behind).
        """
        if not 0.0 <= model_accuracy <= 1.0:
            raise SchedulingError("model_accuracy must be in [0, 1]")
        if self.config is None:
            return 0.0
        return model_accuracy * self.config.effective_accuracy_factor(self.gpu_allocation)


@dataclass
class RetrainingJob(Job):
    """Retrains one stream's model with a chosen configuration."""

    config: Optional[RetrainingConfig] = None
    gpu_seconds_required: float = 0.0
    gpu_seconds_done: float = 0.0
    completion_time: Optional[float] = None
    expected_post_accuracy: Optional[float] = None

    def __init__(
        self,
        stream_name: str,
        *,
        config: Optional[RetrainingConfig] = None,
        gpu_seconds_required: float = 0.0,
        gpu_allocation: float = 0.0,
        expected_post_accuracy: Optional[float] = None,
    ) -> None:
        super().__init__(stream_name=stream_name, kind=JobKind.RETRAINING, gpu_allocation=gpu_allocation)
        if gpu_seconds_required < 0:
            raise SchedulingError("gpu_seconds_required must be non-negative")
        self.config = config
        self.gpu_seconds_required = float(gpu_seconds_required)
        self.gpu_seconds_done = 0.0
        self.completion_time = None
        self.expected_post_accuracy = expected_post_accuracy
        self.state = JobState.PENDING if config is not None else JobState.SKIPPED

    # -------------------------------------------------------------- progress
    @property
    def is_scheduled(self) -> bool:
        return self.config is not None and self.state is not JobState.SKIPPED

    @property
    def remaining_gpu_seconds(self) -> float:
        return max(0.0, self.gpu_seconds_required - self.gpu_seconds_done)

    @property
    def progress(self) -> float:
        if self.gpu_seconds_required <= 0:
            return 1.0
        return min(1.0, self.gpu_seconds_done / self.gpu_seconds_required)

    def time_to_complete(self, allocation: Optional[float] = None) -> float:
        """Wall-clock seconds to finish at ``allocation`` (default: current)."""
        allocation = self.gpu_allocation if allocation is None else allocation
        if not self.is_scheduled or self.remaining_gpu_seconds == 0:
            return 0.0
        if allocation <= 0:
            return float("inf")
        return self.remaining_gpu_seconds / allocation

    def advance(self, wall_clock_seconds: float, *, now: Optional[float] = None) -> bool:
        """Run for ``wall_clock_seconds`` at the current allocation.

        Returns ``True`` when the job completes during this interval.  ``now``
        (if given) records the completion time as ``now`` plus the time into
        the interval at which the remaining work finished.
        """
        if wall_clock_seconds < 0:
            raise SchedulingError("wall_clock_seconds must be non-negative")
        if not self.is_scheduled or self.state is JobState.COMPLETED:
            return False
        self.state = JobState.RUNNING
        work = wall_clock_seconds * self.gpu_allocation
        previously_remaining = self.remaining_gpu_seconds
        self.gpu_seconds_done = min(self.gpu_seconds_required, self.gpu_seconds_done + work)
        if self.remaining_gpu_seconds <= 1e-9:
            self.state = JobState.COMPLETED
            if now is not None and self.completion_time is None:
                if self.gpu_allocation > 0:
                    self.completion_time = now + previously_remaining / self.gpu_allocation
                else:
                    self.completion_time = now
            return True
        return False
