"""Resource-allocation vectors used by the schedulers.

The thief scheduler reasons about a flat mapping ``job id -> GPU fraction``
whose sum must not exceed the provisioned GPUs and whose entries move in
multiples of the allocation unit δ (§4.1–4.2).  :class:`AllocationVector`
implements that arithmetic (fair initialisation, stealing a quantum Δ,
validation) independently of which physical GPU each fraction lands on —
placement onto devices is a separate step (:mod:`repro.cluster.placement`).

Internally the vector lives on an **integer-quantum lattice**: every entry is
stored as an integer multiple of the quantum and floats only appear at the
API boundary (``get``/``set``/``as_dict``).  That makes steal arithmetic
drift-free (repeated ±Δ walks return to exactly the starting point), gives
exact hashable cache keys (:meth:`units`, :meth:`units_key`) for the
scheduler's memoisation, and turns steal/undo into O(1) integer updates
instead of full-dict copies.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..exceptions import AllocationError
from .gpu import EPSILON


class AllocationVector:
    """A mapping from job id to GPU fraction, bounded by ``total_gpus``.

    ``allocations`` (if given) is quantised onto the lattice on entry —
    rounded down to a whole number of quanta, so any allocation whose float
    total fits the capacity stays valid; all subsequent arithmetic is exact
    integer maths.
    """

    __slots__ = ("total_gpus", "quantum", "total_units", "_units")

    def __init__(
        self,
        total_gpus: float,
        quantum: float = 0.1,
        allocations: Optional[Mapping[str, float]] = None,
    ) -> None:
        if total_gpus <= 0:
            raise AllocationError("total_gpus must be positive")
        if quantum <= 0 or quantum > total_gpus:
            raise AllocationError("quantum must be in (0, total_gpus]")
        self.total_gpus = float(total_gpus)
        self.quantum = float(quantum)
        #: How many whole quanta the provisioned GPUs hold.
        self.total_units = int(math.floor(total_gpus / quantum + 1e-9))
        self._units: Dict[str, int] = {}
        if allocations:
            for job_id, fraction in allocations.items():
                self._units[job_id] = self._quantize(job_id, fraction)
        self.validate()

    # --------------------------------------------------------------- helpers
    @classmethod
    def fair(
        cls,
        job_ids: Iterable[str],
        total_gpus: float,
        *,
        quantum: float = 0.1,
        remainder_priority: Optional[Iterable[str]] = None,
    ) -> "AllocationVector":
        """Evenly split the GPUs across all jobs (the thief's starting point).

        The split happens on the lattice: every job receives
        ``total_units // n`` quanta and the remainder is handed out one
        quantum at a time — in ``remainder_priority`` order if given (jobs it
        omits queue up after it in ``job_ids`` order), else in ``job_ids``
        order — so the result is always quantum-aligned and sums to exactly
        ``total_units`` quanta.  Under heavy contention (fewer quanta than
        jobs) the priority order decides which jobs start with anything at
        all; the thief scheduler uses it to hand every stream an inference
        quantum before any stream gets a retraining one.
        """
        ids = list(job_ids)
        if not ids:
            raise AllocationError("cannot build an allocation for zero jobs")
        vector = cls(total_gpus=total_gpus, quantum=quantum)
        share, remainder = divmod(vector.total_units, len(ids))
        for job in ids:
            vector._units[job] = share
        order = list(remainder_priority) if remainder_priority is not None else ids
        order.extend(job for job in ids if job not in set(order))
        for job in order[:remainder]:
            if job not in vector._units:
                raise AllocationError(f"remainder_priority names unknown job {job!r}")
            vector._units[job] += 1
        return vector

    def copy(self) -> "AllocationVector":
        clone = AllocationVector(total_gpus=self.total_gpus, quantum=self.quantum)
        clone._units = dict(self._units)
        return clone

    def _quantize(self, job_id: str, fraction: float) -> int:
        """Snap a float fraction onto the lattice, rounding *down*.

        Rounding down (with a tolerance for fractions that are exact
        multiples up to float error) guarantees that any allocation whose
        float total respects the capacity stays valid after quantisation:
        per-entry nearest-rounding could round several entries up and push
        the unit total over ``total_units``.
        """
        if fraction < -EPSILON:
            raise AllocationError(f"negative allocation for {job_id!r}")
        return max(0, int(math.floor(fraction / self.quantum + 1e-9)))

    # ------------------------------------------------------------- accessors
    def get(self, job_id: str) -> float:
        return self._units.get(job_id, 0) * self.quantum

    def units(self, job_id: str) -> int:
        """Exact allocation of ``job_id`` in whole quanta."""
        return self._units.get(job_id, 0)

    def job_ids(self) -> List[str]:
        return list(self._units.keys())

    def as_units_dict(self) -> Dict[str, int]:
        return dict(self._units)

    def units_key(self) -> Tuple[Tuple[str, int], ...]:
        """Exact, hashable snapshot of the lattice point (for memoisation)."""
        return tuple(sorted(self._units.items()))

    @property
    def allocated_units(self) -> int:
        return sum(self._units.values())

    @property
    def total_allocated(self) -> float:
        return self.allocated_units * self.quantum

    @property
    def slack(self) -> float:
        return self.total_gpus - self.total_allocated

    # ------------------------------------------------------------ operations
    def set(self, job_id: str, fraction: float) -> None:
        if fraction < -EPSILON:
            raise AllocationError("allocations must be non-negative")
        self.set_units(job_id, self._quantize(job_id, max(0.0, fraction)))

    def set_units(self, job_id: str, units: int) -> None:
        if units < 0:
            raise AllocationError("allocations must be non-negative")
        new_total = self.allocated_units - self.units(job_id) + units
        if new_total > self.total_units:
            raise AllocationError(
                f"allocation of {units * self.quantum:.3f} to {job_id!r} "
                f"exceeds {self.total_gpus} GPUs"
            )
        self._units[job_id] = units

    def steal(self, thief_id: str, victim_id: str, amount: float) -> bool:
        """Move ``amount`` GPUs from victim to thief.

        ``amount`` is rounded to the nearest whole number of quanta (at least
        one).  Returns ``False`` (and leaves the vector unchanged) if the
        victim does not have that much to give; this is the
        negative-allocation check of Algorithm 1 (lines 12–13).
        """
        if amount <= 0:
            raise AllocationError("steal amount must be positive")
        return self.steal_units(thief_id, victim_id, max(1, int(round(amount / self.quantum))))

    def steal_units(self, thief_id: str, victim_id: str, units: int) -> bool:
        """Move ``units`` whole quanta from victim to thief — O(1) and exact.

        The inverse move (``steal_units(victim, thief, units)``) restores the
        previous lattice point bit-for-bit, which is what lets the thief
        scheduler mutate-and-undo instead of copying the vector per candidate.
        """
        if thief_id == victim_id:
            raise AllocationError("a job cannot steal from itself")
        if units <= 0:
            raise AllocationError("steal amount must be positive")
        victim_units = self._units.get(victim_id, 0)
        if victim_units < units:
            return False
        self._units[victim_id] = victim_units - units
        self._units[thief_id] = self._units.get(thief_id, 0) + units
        return True

    def validate(self) -> None:
        """Raise if any entry is negative or the total exceeds the GPUs."""
        for job_id, units in self._units.items():
            if units < 0:
                raise AllocationError(f"negative allocation for {job_id!r}")
        if self.allocated_units > self.total_units:
            raise AllocationError(
                f"total allocation {self.total_allocated:.3f} exceeds {self.total_gpus} GPUs"
            )

    def as_dict(self) -> Dict[str, float]:
        return {job: units * self.quantum for job, units in self._units.items()}

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{job}={units * self.quantum:.2f}" for job, units in sorted(self._units.items())
        )
        return f"AllocationVector({inner}; total={self.total_gpus})"


def fair_unit_split(total_units: int, parts: int) -> List[int]:
    """Split ``total_units`` whole quanta as evenly as possible over ``parts``.

    Shared by the fair initialisation above and the uniform baselines: the
    first ``total_units % parts`` parts receive one extra quantum.
    """
    if parts <= 0:
        raise AllocationError("parts must be positive")
    if total_units < 0:
        raise AllocationError("total_units must be non-negative")
    share, remainder = divmod(total_units, parts)
    return [share + (1 if index < remainder else 0) for index in range(parts)]


def redistribute_released(
    allocation: Mapping[str, float],
    released_job_id: str,
    *,
    total_gpus: float,
    quantum: float = 0.1,
) -> AllocationVector:
    """Redistribute a finished job's share evenly among the remaining jobs.

    Ekya re-runs the thief scheduler when a retraining job completes; this
    helper provides the simple proportional fallback used by baselines and as
    the starting point of that re-run.  The freed quanta are handed out one at
    a time in job order so the result stays on the lattice.
    """
    remaining = {job: fraction for job, fraction in allocation.items() if job != released_job_id}
    vector = AllocationVector(total_gpus=total_gpus, quantum=quantum, allocations=dict(remaining))
    freed = float(allocation.get(released_job_id, 0.0))
    if not remaining or freed <= 0:
        return vector
    freed_units = int(math.floor(freed / quantum + 1e-9))
    for job, bonus in zip(remaining, fair_unit_split(freed_units, len(remaining))):
        vector.set_units(job, vector.units(job) + bonus)
    return vector
