"""Resource-allocation vectors used by the schedulers.

The thief scheduler reasons about a flat mapping ``job id -> GPU fraction``
whose sum must not exceed the provisioned GPUs and whose entries move in
multiples of the allocation unit δ (§4.1–4.2).  :class:`AllocationVector`
implements that arithmetic (fair initialisation, stealing a quantum Δ,
validation) independently of which physical GPU each fraction lands on —
placement onto devices is a separate step (:mod:`repro.cluster.placement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from ..exceptions import AllocationError
from .gpu import EPSILON


@dataclass
class AllocationVector:
    """A mapping from job id to GPU fraction, bounded by ``total_gpus``."""

    total_gpus: float
    quantum: float = 0.1
    allocations: Dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.total_gpus <= 0:
            raise AllocationError("total_gpus must be positive")
        if self.quantum <= 0 or self.quantum > self.total_gpus:
            raise AllocationError("quantum must be in (0, total_gpus]")
        if self.allocations is None:
            self.allocations = {}
        self.validate()

    # --------------------------------------------------------------- helpers
    @classmethod
    def fair(cls, job_ids: Iterable[str], total_gpus: float, *, quantum: float = 0.1) -> "AllocationVector":
        """Evenly split the GPUs across all jobs (the thief's starting point)."""
        ids = list(job_ids)
        if not ids:
            raise AllocationError("cannot build an allocation for zero jobs")
        share = total_gpus / len(ids)
        vector = cls(total_gpus=total_gpus, quantum=quantum, allocations={job: share for job in ids})
        return vector

    def copy(self) -> "AllocationVector":
        return AllocationVector(
            total_gpus=self.total_gpus,
            quantum=self.quantum,
            allocations=dict(self.allocations),
        )

    # ------------------------------------------------------------- accessors
    def get(self, job_id: str) -> float:
        return float(self.allocations.get(job_id, 0.0))

    def job_ids(self) -> List[str]:
        return list(self.allocations.keys())

    @property
    def total_allocated(self) -> float:
        return float(sum(self.allocations.values()))

    @property
    def slack(self) -> float:
        return self.total_gpus - self.total_allocated

    # ------------------------------------------------------------ operations
    def set(self, job_id: str, fraction: float) -> None:
        if fraction < -EPSILON:
            raise AllocationError("allocations must be non-negative")
        fraction = max(0.0, fraction)
        new_total = self.total_allocated - self.get(job_id) + fraction
        if new_total > self.total_gpus + EPSILON:
            raise AllocationError(
                f"allocation of {fraction:.3f} to {job_id!r} exceeds {self.total_gpus} GPUs"
            )
        self.allocations[job_id] = fraction

    def steal(self, thief_id: str, victim_id: str, amount: float) -> bool:
        """Move ``amount`` GPUs from victim to thief.

        Returns ``False`` (and leaves the vector unchanged) if the victim does
        not have ``amount`` to give; this is the negative-allocation check of
        Algorithm 1 (lines 12–13).
        """
        if thief_id == victim_id:
            raise AllocationError("a job cannot steal from itself")
        if amount <= 0:
            raise AllocationError("steal amount must be positive")
        victim_allocation = self.get(victim_id)
        if victim_allocation - amount < -EPSILON:
            return False
        self.allocations[victim_id] = max(0.0, victim_allocation - amount)
        self.allocations[thief_id] = self.get(thief_id) + amount
        return True

    def validate(self) -> None:
        """Raise if any entry is negative or the total exceeds the GPUs."""
        for job_id, fraction in self.allocations.items():
            if fraction < -EPSILON:
                raise AllocationError(f"negative allocation for {job_id!r}")
        if self.total_allocated > self.total_gpus + 1e-6:
            raise AllocationError(
                f"total allocation {self.total_allocated:.3f} exceeds {self.total_gpus} GPUs"
            )

    def as_dict(self) -> Dict[str, float]:
        return dict(self.allocations)

    def __repr__(self) -> str:
        inner = ", ".join(f"{job}={fraction:.2f}" for job, fraction in sorted(self.allocations.items()))
        return f"AllocationVector({inner}; total={self.total_gpus})"


def redistribute_released(
    allocation: Mapping[str, float],
    released_job_id: str,
    *,
    total_gpus: float,
    quantum: float = 0.1,
) -> AllocationVector:
    """Redistribute a finished job's share evenly among the remaining jobs.

    Ekya re-runs the thief scheduler when a retraining job completes; this
    helper provides the simple proportional fallback used by baselines and as
    the starting point of that re-run.
    """
    remaining = {job: fraction for job, fraction in allocation.items() if job != released_job_id}
    vector = AllocationVector(total_gpus=total_gpus, quantum=quantum, allocations=dict(remaining))
    freed = float(allocation.get(released_job_id, 0.0))
    if not remaining or freed <= 0:
        return vector
    bonus = freed / len(remaining)
    for job in remaining:
        vector.set(job, vector.get(job) + bonus)
    return vector
