"""Edge-server substrate: GPUs, allocations, jobs, placement and WAN links."""

from .edge_server import EdgeServer, EdgeServerSpec
from .gpu import EPSILON, GPU, GPUFleet
from .jobs import (
    InferenceJob,
    Job,
    JobKind,
    JobState,
    RetrainingJob,
    inference_job_id,
    retraining_job_id,
)
from .network import (
    CELLULAR_4G,
    CELLULAR_4G_X2,
    SATELLITE,
    STANDARD_LINKS,
    NetworkLink,
    training_data_megabits,
)
from .placement import Placement, place_jobs, quantize_allocations
from .resources import AllocationVector, fair_unit_split, redistribute_released

__all__ = [
    "EdgeServer",
    "EdgeServerSpec",
    "EPSILON",
    "GPU",
    "GPUFleet",
    "InferenceJob",
    "Job",
    "JobKind",
    "JobState",
    "RetrainingJob",
    "inference_job_id",
    "retraining_job_id",
    "CELLULAR_4G",
    "CELLULAR_4G_X2",
    "SATELLITE",
    "STANDARD_LINKS",
    "NetworkLink",
    "training_data_megabits",
    "Placement",
    "place_jobs",
    "quantize_allocations",
    "AllocationVector",
    "fair_unit_split",
    "redistribute_released",
]
