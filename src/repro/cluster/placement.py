"""Placement of fractional allocations onto physical GPUs.

The thief scheduler outputs "continuous" allocations that could straddle two
GPUs; spanning a job across devices would require expensive inter-GPU
communication, so Ekya first quantises each allocation to an inverse power of
two (1, 1/2, 1/4, ...) and then packs jobs onto GPUs in descending order of
demand to reduce fragmentation (§5, citing multi-resource packing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import PlacementError
from ..utils.math_utils import quantize_to_inverse_power_of_two
from .gpu import EPSILON, GPUFleet


@dataclass
class Placement:
    """The result of packing quantised allocations onto GPUs."""

    assignments: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    quantized: Dict[str, float] = field(default_factory=dict)
    requested: Dict[str, float] = field(default_factory=dict)

    def gpu_for(self, job_id: str) -> List[Tuple[int, float]]:
        """(gpu_id, fraction) pieces assigned to ``job_id``."""
        return list(self.assignments.get(job_id, []))

    def total_for(self, job_id: str) -> float:
        return float(sum(fraction for _, fraction in self.assignments.get(job_id, [])))

    def allocation_loss(self) -> float:
        """Total GPU fraction lost to quantisation across all jobs."""
        return float(
            sum(max(0.0, self.requested.get(job, 0.0) - self.quantized.get(job, 0.0)) for job in self.requested)
        )


def quantize_allocations(
    requested: Mapping[str, float],
    *,
    min_fraction: float = 1.0 / 16.0,
) -> Dict[str, float]:
    """Quantise each requested fraction to whole GPUs plus an inverse power of two.

    Requests of at least one GPU keep their integral part; the fractional
    remainder (and any sub-GPU request) is rounded down to 1/2^k.  Zero
    requests stay zero.
    """
    quantized: Dict[str, float] = {}
    for job_id, fraction in requested.items():
        if fraction < 0:
            raise PlacementError(f"negative allocation requested for {job_id!r}")
        whole = float(int(fraction + EPSILON))
        fractional_part = fraction - whole
        # The fractional part is rounded *down* to a single inverse power of
        # two (Ekya, §5): a single binary piece keeps jobs trivially packable
        # onto whole GPUs, at the cost of some quantisation loss, and rounding
        # down guarantees quantisation can never turn a feasible schedule into
        # an infeasible placement.  Sub-minimum remainders are dropped.
        if fractional_part > EPSILON:
            piece = quantize_to_inverse_power_of_two(fractional_part, min_fraction=min_fraction)
            if piece > fractional_part + EPSILON:
                piece = 0.0
        else:
            piece = 0.0
        quantized[job_id] = whole + piece
    return quantized


def place_jobs(
    requested: Mapping[str, float],
    fleet: GPUFleet,
    *,
    min_fraction: float = 1.0 / 16.0,
    apply: bool = True,
) -> Placement:
    """Quantise and pack the requested allocations onto the fleet's GPUs.

    Jobs are placed in descending order of quantised demand (first-fit
    decreasing).  A job needing more than one GPU is split into whole-GPU
    pieces plus one fractional piece; sub-GPU pieces are never split across
    devices.  Raises :class:`PlacementError` if the demands cannot fit.
    """
    quantized = quantize_allocations(requested, min_fraction=min_fraction)
    total_demand = sum(quantized.values())
    if total_demand > fleet.total_capacity + 1e-6:
        raise PlacementError(
            f"quantised demand {total_demand:.3f} exceeds fleet capacity {fleet.total_capacity:.3f}"
        )
    if apply:
        fleet.release_all()
    free: Dict[int, float] = {gpu.gpu_id: gpu.capacity for gpu in fleet.gpus}
    placement = Placement(requested=dict(requested), quantized=dict(quantized))

    # Sort by descending demand with the job id as tie-breaker: ``sorted`` is
    # stable, so without the explicit tie-break equal demands would pack in
    # dict-insertion order and the same workload could place differently
    # depending on how the caller assembled its request map.
    for job_id, demand in sorted(quantized.items(), key=lambda item: (-item[1], item[0])):
        if demand <= EPSILON:
            placement.assignments[job_id] = []
            continue
        pieces: List[Tuple[int, float]] = []
        remaining = demand
        # Whole-GPU pieces first.
        while remaining >= 1.0 - EPSILON:
            gpu_id = _find_gpu(free, 1.0)
            if gpu_id is None:
                raise PlacementError(f"no free GPU for a whole-GPU piece of {job_id!r}")
            free[gpu_id] -= 1.0
            pieces.append((gpu_id, 1.0))
            remaining -= 1.0
        if remaining > EPSILON:
            gpu_id = _find_gpu(free, remaining)
            if gpu_id is None:
                raise PlacementError(
                    f"cannot place fractional piece {remaining:.3f} of {job_id!r} on any single GPU"
                )
            free[gpu_id] -= remaining
            pieces.append((gpu_id, remaining))
        placement.assignments[job_id] = pieces

    if apply:
        for job_id, pieces in placement.assignments.items():
            for gpu_id, fraction in pieces:
                gpu = fleet.gpu(gpu_id)
                existing = gpu.reservation_for(job_id)
                gpu.reserve(job_id, existing + fraction)
    return placement


def _find_gpu(free: Dict[int, float], demand: float) -> Optional[int]:
    """Best-fit GPU: the one whose free space is smallest but still sufficient."""
    best_id: Optional[int] = None
    best_free = float("inf")
    for gpu_id, available in free.items():
        if available + EPSILON >= demand and available < best_free:
            best_id = gpu_id
            best_free = available
    return best_id
