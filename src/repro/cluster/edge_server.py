"""The edge server: GPUs plus the camera streams attached to it.

An :class:`EdgeServer` bundles a :class:`~repro.cluster.gpu.GPUFleet` with the
set of :class:`~repro.datasets.stream.VideoStream` objects whose inference and
retraining jobs it must host, and carries the global scheduling parameters
(allocation unit δ, minimum inference accuracy a_MIN, retraining-window
duration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..datasets.stream import VideoStream
from ..exceptions import SchedulingError
from .gpu import GPUFleet
from .jobs import InferenceJob, RetrainingJob, inference_job_id, retraining_job_id


@dataclass
class EdgeServerSpec:
    """Static description of an edge deployment.

    Attributes
    ----------
    num_gpus:
        Number of provisioned GPUs (the x-axis of Figure 7).
    delta:
        Smallest granularity of GPU allocation δ (Table 2).
    steal_quantum:
        The thief scheduler's stealing increment Δ (Figure 10); defaults to δ.
    min_inference_accuracy:
        a_MIN — inference accuracy below which configurations are rejected.
    window_duration:
        Duration of one retraining window ∥T∥ in seconds.
    """

    num_gpus: int = 1
    delta: float = 0.1
    steal_quantum: Optional[float] = None
    min_inference_accuracy: float = 0.4
    window_duration: float = 200.0

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise SchedulingError("num_gpus must be >= 1")
        if not 0 < self.delta <= self.num_gpus:
            raise SchedulingError("delta must be in (0, num_gpus]")
        if self.steal_quantum is None:
            self.steal_quantum = self.delta
        if self.steal_quantum <= 0:
            raise SchedulingError("steal_quantum must be positive")
        if not 0.0 <= self.min_inference_accuracy < 1.0:
            raise SchedulingError("min_inference_accuracy must be in [0, 1)")
        if self.window_duration <= 0:
            raise SchedulingError("window_duration must be positive")

    @property
    def gpu_time_per_window(self) -> float:
        """Total GPU-time G·∥T∥ available in one retraining window."""
        return self.num_gpus * self.window_duration


class EdgeServer:
    """One edge server hosting inference + retraining for several streams.

    ``allow_empty`` relaxes the at-least-one-stream requirement: a fleet site
    starts with no streams and receives them through admission/migration, so
    its server must exist (GPUs and all) before any stream is attached.
    """

    def __init__(
        self,
        spec: EdgeServerSpec,
        streams: Sequence[VideoStream],
        *,
        allow_empty: bool = False,
    ) -> None:
        if not streams and not allow_empty:
            raise SchedulingError("an edge server needs at least one attached stream")
        names = [stream.name for stream in streams]
        if len(set(names)) != len(names):
            raise SchedulingError("stream names must be unique")
        self.spec = spec
        self.fleet = GPUFleet(spec.num_gpus)
        self._streams: Dict[str, VideoStream] = {stream.name: stream for stream in streams}

    # ------------------------------------------------------------- accessors
    @property
    def streams(self) -> List[VideoStream]:
        return list(self._streams.values())

    @property
    def stream_names(self) -> List[str]:
        return list(self._streams.keys())

    @property
    def num_streams(self) -> int:
        return len(self._streams)

    def stream(self, name: str) -> VideoStream:
        try:
            return self._streams[name]
        except KeyError as exc:
            raise SchedulingError(f"no stream named {name!r} on this server") from exc

    # -------------------------------------------------------------- mutation
    def attach_stream(self, stream: VideoStream) -> None:
        """Attach a newly admitted or migrated-in stream."""
        if stream.name in self._streams:
            raise SchedulingError(f"stream {stream.name!r} is already attached")
        self._streams[stream.name] = stream

    def detach_stream(self, name: str) -> VideoStream:
        """Detach a stream (migration out / site evacuation) and return it."""
        try:
            return self._streams.pop(name)
        except KeyError as exc:
            raise SchedulingError(f"no stream named {name!r} on this server") from exc

    # ------------------------------------------------------------------ jobs
    def make_jobs(self) -> Dict[str, object]:
        """Fresh (unconfigured) inference and retraining jobs for one window."""
        jobs: Dict[str, object] = {}
        for name in self._streams:
            jobs[inference_job_id(name)] = InferenceJob(name)
            jobs[retraining_job_id(name)] = RetrainingJob(name)
        return jobs

    def all_job_ids(self) -> List[str]:
        """Job ids in the order the thief scheduler iterates over them."""
        ids: List[str] = []
        for name in self._streams:
            ids.append(inference_job_id(name))
            ids.append(retraining_job_id(name))
        return ids

    def __repr__(self) -> str:
        return (
            f"EdgeServer(gpus={self.spec.num_gpus}, streams={self.num_streams}, "
            f"delta={self.spec.delta}, window={self.spec.window_duration}s)"
        )
