"""GPU devices with MPS-style fractional sharing.

Edge servers carry a small number of consumer-grade GPUs that must be shared
by all inference and retraining containers (Figure 1).  Ekya relies on
Nvidia MPS to let several processes share one GPU, so a :class:`GPU` here
tracks fractional reservations per job and enforces that the total never
exceeds the device.  Fractions are multiples of the allocation unit δ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import AllocationError

#: Numerical slack when comparing fractional allocations.
EPSILON = 1e-9


@dataclass
class GPU:
    """One physical GPU with fractional (MPS-style) reservations."""

    gpu_id: int
    capacity: float = 1.0
    reservations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gpu_id < 0:
            raise AllocationError("gpu_id must be non-negative")
        if self.capacity <= 0:
            raise AllocationError("capacity must be positive")

    # ------------------------------------------------------------- accessors
    @property
    def allocated(self) -> float:
        """Total fraction currently reserved on this GPU."""
        return float(sum(self.reservations.values()))

    @property
    def free(self) -> float:
        """Unreserved fraction of this GPU."""
        return max(0.0, self.capacity - self.allocated)

    def utilization(self) -> float:
        """Reserved share of capacity in [0, 1]."""
        return min(1.0, self.allocated / self.capacity)

    def reservation_for(self, job_id: str) -> float:
        return float(self.reservations.get(job_id, 0.0))

    # ------------------------------------------------------------ operations
    def reserve(self, job_id: str, fraction: float) -> None:
        """Reserve ``fraction`` of this GPU for ``job_id``.

        A job may hold at most one reservation per GPU; reserving again
        replaces the previous amount (used when allocations change between
        retraining windows).
        """
        if fraction < 0:
            raise AllocationError("fraction must be non-negative")
        current = self.reservations.get(job_id, 0.0)
        if self.allocated - current + fraction > self.capacity + EPSILON:
            raise AllocationError(
                f"GPU {self.gpu_id}: reserving {fraction:.3f} for {job_id!r} exceeds capacity "
                f"(allocated {self.allocated:.3f} of {self.capacity:.3f})"
            )
        if fraction == 0:
            self.reservations.pop(job_id, None)
        else:
            self.reservations[job_id] = float(fraction)

    def release(self, job_id: str) -> float:
        """Release the reservation of ``job_id``; returns the freed fraction."""
        return float(self.reservations.pop(job_id, 0.0))

    def release_all(self) -> None:
        self.reservations.clear()

    def __repr__(self) -> str:
        return f"GPU(id={self.gpu_id}, allocated={self.allocated:.2f}/{self.capacity:.2f})"


class GPUFleet:
    """The edge server's set of GPUs."""

    def __init__(self, num_gpus: int, *, capacity_per_gpu: float = 1.0) -> None:
        if num_gpus < 1:
            raise AllocationError("an edge server needs at least one GPU")
        self._gpus = [GPU(gpu_id=i, capacity=capacity_per_gpu) for i in range(num_gpus)]

    # ------------------------------------------------------------- accessors
    @property
    def gpus(self) -> list:
        return list(self._gpus)

    @property
    def num_gpus(self) -> int:
        return len(self._gpus)

    @property
    def total_capacity(self) -> float:
        return float(sum(gpu.capacity for gpu in self._gpus))

    @property
    def total_allocated(self) -> float:
        return float(sum(gpu.allocated for gpu in self._gpus))

    @property
    def total_free(self) -> float:
        return float(sum(gpu.free for gpu in self._gpus))

    def gpu(self, gpu_id: int) -> GPU:
        for gpu in self._gpus:
            if gpu.gpu_id == gpu_id:
                return gpu
        raise AllocationError(f"no GPU with id {gpu_id}")

    def find_job(self, job_id: str) -> Optional[GPU]:
        """The GPU currently holding a reservation for ``job_id``, if any."""
        for gpu in self._gpus:
            if job_id in gpu.reservations:
                return gpu
        return None

    def release_all(self) -> None:
        for gpu in self._gpus:
            gpu.release_all()

    def fragmentation(self) -> float:
        """Free capacity that is split across GPUs in unusably small pieces.

        Defined as total free capacity minus the largest single free chunk;
        zero when all the slack is on one GPU.
        """
        if not self._gpus:
            return 0.0
        largest_free = max(gpu.free for gpu in self._gpus)
        return max(0.0, self.total_free - largest_free)

    def __repr__(self) -> str:
        return f"GPUFleet(num_gpus={self.num_gpus}, allocated={self.total_allocated:.2f})"
