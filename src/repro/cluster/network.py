"""Network links between the edge site and the cloud.

Used only by the cloud-retraining comparison (§6.5, Table 4): the edge
uploads golden-model-labelled training frames over a constrained uplink and
downloads the retrained model over the downlink.  Bandwidths default to the
values the paper cites for 4G cellular and satellite links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NetworkLink:
    """A bidirectional WAN link with fixed uplink/downlink bandwidth.

    ``loss_rate`` is the probability that a transfer crossing this link
    fails in flight.  It only takes effect on fleets built with a
    :class:`~repro.fleet.faults.WanFaultModel` (``make_fleet(wan_faults=
    ...)``), where it composes with the model's own loss rate and the far
    endpoint's link as independent loss processes; everywhere else (the
    cloud-comparison transfer-time maths) it is inert.
    """

    name: str
    uplink_mbps: float
    downlink_mbps: float
    rtt_seconds: float = 0.1
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise ConfigurationError("link bandwidths must be positive")
        if self.rtt_seconds < 0:
            raise ConfigurationError("rtt_seconds must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")

    def upload_seconds(self, megabits: float) -> float:
        """Seconds to upload ``megabits`` of data."""
        if megabits < 0:
            raise ConfigurationError("megabits must be non-negative")
        return megabits / self.uplink_mbps + self.rtt_seconds

    def download_seconds(self, megabits: float) -> float:
        """Seconds to download ``megabits`` of data."""
        if megabits < 0:
            raise ConfigurationError("megabits must be non-negative")
        return megabits / self.downlink_mbps + self.rtt_seconds

    def round_trip_seconds(self, upload_megabits: float, download_megabits: float) -> float:
        """Upload, (instantaneous cloud work), then download."""
        return self.upload_seconds(upload_megabits) + self.download_seconds(download_megabits)

    def scaled(self, uplink_factor: float = 1.0, downlink_factor: float = 1.0) -> "NetworkLink":
        """A hypothetical link with more (or less) provisioned bandwidth.

        Table 4 reports how much *additional* uplink/downlink capacity the
        cloud design would need to match Ekya; this helper builds those
        hypothetical links.
        """
        if uplink_factor <= 0 or downlink_factor <= 0:
            raise ConfigurationError("bandwidth factors must be positive")
        return NetworkLink(
            name=f"{self.name} (x{uplink_factor:g}/{downlink_factor:g})",
            uplink_mbps=self.uplink_mbps * uplink_factor,
            downlink_mbps=self.downlink_mbps * downlink_factor,
            rtt_seconds=self.rtt_seconds,
            loss_rate=self.loss_rate,
        )


#: The links evaluated in Table 4 (Mbps values reported in the paper).
CELLULAR_4G = NetworkLink(name="Cellular", uplink_mbps=5.1, downlink_mbps=17.5)
SATELLITE = NetworkLink(name="Satellite", uplink_mbps=8.5, downlink_mbps=15.0)
CELLULAR_4G_X2 = NetworkLink(name="Cellular (2x)", uplink_mbps=10.2, downlink_mbps=35.0)

STANDARD_LINKS: Dict[str, NetworkLink] = {
    link.name: link for link in (CELLULAR_4G, SATELLITE, CELLULAR_4G_X2)
}


def training_data_megabits(
    *,
    stream_bitrate_mbps: float = 4.0,
    window_seconds: float = 400.0,
    sample_fraction: float = 0.1,
) -> float:
    """Megabits of sampled video uploaded per stream per retraining window.

    Matches the paper's worked example: a 4 Mbps HD stream, 10 % subsampling
    and a 400 s window give 160 Mb of training data per camera per window.
    """
    if stream_bitrate_mbps <= 0 or window_seconds <= 0:
        raise ConfigurationError("bitrate and window duration must be positive")
    if not 0.0 < sample_fraction <= 1.0:
        raise ConfigurationError("sample_fraction must be in (0, 1]")
    return stream_bitrate_mbps * window_seconds * sample_fraction
