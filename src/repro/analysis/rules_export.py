"""REP007 — every ``FleetResult.summary()`` key is exported and documented.

Generalises the hand-pinned key-set test: the rule extracts the summary
dict's literal keys from ``fleet/metrics.py`` and cross-checks them against

* the ``_HELP`` metric registry in ``fleet/export.py`` (what the Prometheus
  renderer knows how to export), and
* the metrics appendix table in ``docs/events.md``.

A key present in one place and missing from another is drift: either a new
metric shipped without export/docs, or a stale entry outlived its metric.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from .context import ProjectContext
from .findings import Finding
from .registry import Rule

DEFAULT_METRICS_PATH = "src/repro/fleet/metrics.py"
DEFAULT_EXPORT_PATH = "src/repro/fleet/export.py"
DEFAULT_METRICS_DOC_PATH = "docs/events.md"

_BACKTICKED_KEY = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def extract_summary_keys(tree: ast.Module) -> Optional[Dict[str, int]]:
    """Key → line of the dict literal ``FleetResult.summary`` returns."""
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == "FleetResult"):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "summary"):
                continue
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Return) and isinstance(inner.value, ast.Dict):
                    keys: Dict[str, int] = {}
                    for key in inner.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            keys[key.value] = key.lineno
                    return keys
    return None


def extract_help_keys(tree: ast.Module) -> Optional[Tuple[Dict[str, int], int]]:
    """``(key → line, _HELP line)`` from the export module's registry."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        named_help = any(
            isinstance(target, ast.Name) and target.id == "_HELP" for target in targets
        )
        if named_help and isinstance(value, ast.Dict):
            keys = {
                key.value: key.lineno
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            return keys, node.lineno
    return None


def parse_metrics_table(text: str) -> Optional[Dict[str, int]]:
    """Key → (1-indexed) line from the docs metrics appendix table."""
    keys: Dict[str, int] = {}
    in_table = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if not in_table:
            if len(cells) >= 2 and cells[0].lower() == "key" and cells[1].lower() == "type":
                in_table = True
            continue
        if not line.strip().startswith("|"):
            break
        if set(cells[0]) <= {"-", ":", " "}:
            continue
        match = _BACKTICKED_KEY.search(cells[0])
        if match is None:
            break
        keys[match.group(1)] = lineno
    return keys if keys else None


class SummaryCoverageRule(Rule):
    code = "REP007"
    name = "summary-coverage"
    description = "summary keys covered by export.py and the docs appendix"

    def __init__(
        self,
        metrics_path: str = DEFAULT_METRICS_PATH,
        export_path: str = DEFAULT_EXPORT_PATH,
        doc_path: str = DEFAULT_METRICS_DOC_PATH,
    ) -> None:
        self._metrics_path = metrics_path
        self._export_path = export_path
        self._doc_path = doc_path

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        metrics_ctx = project.file(self._metrics_path)
        export_ctx = project.file(self._export_path)
        if metrics_ctx is None or export_ctx is None:
            missing = self._metrics_path if metrics_ctx is None else self._export_path
            return [
                Finding(
                    path=missing,
                    line=0,
                    code=self.code,
                    message="module not found; cannot cross-check summary coverage",
                )
            ]
        summary = extract_summary_keys(metrics_ctx.tree)
        if summary is None:
            return [
                Finding(
                    path=self._metrics_path,
                    line=0,
                    code=self.code,
                    message=(
                        "FleetResult.summary() does not return a dict literal "
                        "with constant keys; the coverage cross-check cannot see it"
                    ),
                )
            ]
        extracted = extract_help_keys(export_ctx.tree)
        if extracted is None:
            return [
                Finding(
                    path=self._export_path,
                    line=0,
                    code=self.code,
                    message="no _HELP dict literal found; the export registry is unanalyzable",
                )
            ]
        help_keys = extracted[0]

        for key, lineno in sorted(summary.items()):
            if key not in help_keys:
                findings.append(
                    Finding(
                        path=self._metrics_path,
                        line=lineno,
                        code=self.code,
                        message=(
                            f"summary key {key!r} has no _HELP entry in "
                            f"{self._export_path}; the Prometheus export would drop it"
                        ),
                    )
                )
        for key, lineno in sorted(help_keys.items()):
            if key not in summary:
                findings.append(
                    Finding(
                        path=self._export_path,
                        line=lineno,
                        code=self.code,
                        message=(
                            f"_HELP documents {key!r} but FleetResult.summary() "
                            "no longer emits it (stale export entry)"
                        ),
                    )
                )

        doc_text = project.text(self._doc_path)
        documented = parse_metrics_table(doc_text) if doc_text is not None else None
        if documented is None:
            findings.append(
                Finding(
                    path=self._doc_path,
                    line=0,
                    code=self.code,
                    message="no `| key | type | ... |` metrics table found; summary is undocumented",
                )
            )
            return findings
        for key, lineno in sorted(summary.items()):
            if key not in documented:
                findings.append(
                    Finding(
                        path=self._metrics_path,
                        line=lineno,
                        code=self.code,
                        message=(
                            f"summary key {key!r} is missing from the metrics "
                            f"appendix in {self._doc_path}"
                        ),
                    )
                )
        for key, lineno in sorted(documented.items()):
            if key not in summary:
                findings.append(
                    Finding(
                        path=self._doc_path,
                        line=lineno,
                        code=self.code,
                        message=(
                            f"metrics appendix documents {key!r} but "
                            "FleetResult.summary() no longer emits it"
                        ),
                    )
                )
        return findings
