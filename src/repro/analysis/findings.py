"""Finding datatypes and rendering for the determinism analyzer.

A :class:`Finding` is one rule violation anchored to a file and line.  The
runner sorts findings into ``(path, line, code)`` order so analyzer output is
itself deterministic — diffs of two runs over the same tree are empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

#: A finding that fails ``--strict`` *and* default runs.
SEVERITY_ERROR = "error"
#: Hygiene findings (e.g. an unused suppression) that only fail ``--strict``.
SEVERITY_WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative, posix separators
    line: int  # 1-indexed; 0 when the finding has no anchor (missing file)
    code: str  # e.g. "REP001"
    message: str
    severity: str = SEVERITY_ERROR

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        tag = " [warning]" if self.severity == SEVERITY_WARNING else ""
        return f"{self.path}:{self.line}: {self.code}{tag} {self.message}"


def render_findings(findings: Iterable[Finding]) -> List[str]:
    """Human-readable lines, one per finding, in deterministic order."""
    return [finding.render() for finding in sorted(findings)]
