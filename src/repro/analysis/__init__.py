"""Determinism analyzer: AST invariant lint + plan-phase purity sanitizer.

Static half — a rule-based AST analyzer enforcing the source conventions
every reproducibility gate in this repo leans on (no wall clock, no
unseeded RNG, no hash-order iteration feeding scheduling, frozen events
with documented priorities, exported summary keys).  Run it via
``scripts/run_analysis.py`` or :func:`run_analysis`; suppress documented
false positives inline with ``# repro: ignore[REPxxx]``.

Runtime half — :class:`PuritySanitizer`, the opt-in
(``make_fleet(sanitize=True)``) guard that digests engine state around
``plan_window`` and control-policy scans and raises on plan-phase
mutation.

See ``docs/analysis.md`` for the rule catalogue and how to add a rule.
"""

from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .registry import Rule, default_rules
from .runner import AnalysisReport, run_analysis
from .sanitizer import PuritySanitizer, state_digest, verify_digests

__all__ = [
    "AnalysisReport",
    "Finding",
    "PuritySanitizer",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "default_rules",
    "run_analysis",
    "state_digest",
    "verify_digests",
]
