"""REP005/REP006 — the ``SimEvent`` hierarchy's structural invariants.

The calendar orders same-instant events by each class's ``ClassVar``
priority, and ``docs/events.md`` documents that ordering as a table.  Three
things must therefore agree: the dataclass hierarchy, the declared
priorities and the doc table.  These rules extract all three and cross-check
them:

* **REP005** — every class in the ``SimEvent`` hierarchy is declared
  ``@dataclass(frozen=True)``.  Events live inside heap tuples; a mutable
  event would let a handler rewrite history after it was ordered.
* **REP006** — every concrete event class explicitly declares
  ``priority: ClassVar[int]`` (silently inheriting the base default is how
  ordering bugs are born), the declared value matches the priority table in
  ``docs/events.md``, the table names no ghost classes, and classes sharing
  a priority are documented together on that priority's row.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from .context import FileContext, ProjectContext
from .findings import Finding
from .registry import Rule

#: Where the event hierarchy and its documentation live.
DEFAULT_CALENDAR_PATH = "src/repro/fleet/calendar.py"
DEFAULT_EVENTS_DOC_PATH = "docs/events.md"
#: Root class of the hierarchy, excluded from the doc table cross-check.
EVENT_BASE_CLASS = "SimEvent"

_BACKTICKED = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def collect_event_classes(
    tree: ast.Module, base: str = EVENT_BASE_CLASS
) -> Dict[str, ast.ClassDef]:
    """Name → ClassDef for ``base`` and its (transitive) module subclasses."""
    by_name = {node.name: node for node in tree.body if isinstance(node, ast.ClassDef)}
    hierarchy: Dict[str, ast.ClassDef] = {}
    if base in by_name:
        hierarchy[base] = by_name[base]
    changed = True
    while changed:
        changed = False
        for name, node in by_name.items():
            if name in hierarchy:
                continue
            bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
            if any(parent in hierarchy for parent in bases):
                hierarchy[name] = node
                changed = True
    return hierarchy


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def declared_priority(node: ast.ClassDef) -> Optional[Tuple[int, int]]:
    """``(priority, lineno)`` of an explicit ClassVar declaration, if any."""
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not (isinstance(target, ast.Name) and target.id == "priority"):
            continue
        if "ClassVar" not in ast.dump(stmt.annotation):
            continue
        if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, int):
            return int(stmt.value.value), stmt.lineno
    return None


def parse_priority_table(text: str) -> Optional[Dict[str, int]]:
    """Event name → priority from the markdown table in ``docs/events.md``.

    The table is recognised by its header row (``| priority | event | ...``);
    each row's *event column* may list several backticked class names (events
    that share the priority).  Returns ``None`` when no table is found.
    """
    lines = text.splitlines()
    table: Dict[str, int] = {}
    in_table = False
    for line in lines:
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if not in_table:
            if len(cells) >= 2 and cells[0].lower() == "priority" and cells[1].lower() == "event":
                in_table = True
            continue
        if len(cells) < 2 or not line.strip().startswith("|"):
            break
        if set(cells[0]) <= {"-", ":", " "}:
            continue  # the |---|---| separator row
        try:
            priority = int(cells[0])
        except ValueError:
            break
        for name in _BACKTICKED.findall(cells[1]):
            table[name] = priority
    return table if table else None


class FrozenEventRule(Rule):
    code = "REP005"
    name = "frozen-events"
    description = "every SimEvent subclass is a frozen dataclass"

    def __init__(self, calendar_path: str = DEFAULT_CALENDAR_PATH) -> None:
        self._calendar_path = calendar_path

    def check_project(self, project: ProjectContext) -> List[Finding]:
        ctx = project.file(self._calendar_path)
        if ctx is None:
            return [
                Finding(
                    path=self._calendar_path,
                    line=0,
                    code=self.code,
                    message="event calendar module not found; cannot check the hierarchy",
                )
            ]
        findings: List[Finding] = []
        for name, node in sorted(collect_event_classes(ctx.tree).items()):
            if not _is_frozen_dataclass(node):
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=node.lineno,
                        code=self.code,
                        message=(
                            f"event class {name} is not @dataclass(frozen=True); "
                            "calendar events are heap-ordered and must be immutable"
                        ),
                    )
                )
        return findings


class PriorityTableRule(Rule):
    code = "REP006"
    name = "priority-table"
    description = "declared event priorities match docs/events.md"

    def __init__(
        self,
        calendar_path: str = DEFAULT_CALENDAR_PATH,
        doc_path: str = DEFAULT_EVENTS_DOC_PATH,
    ) -> None:
        self._calendar_path = calendar_path
        self._doc_path = doc_path

    def check_project(self, project: ProjectContext) -> List[Finding]:
        ctx = project.file(self._calendar_path)
        if ctx is None:
            return [
                Finding(
                    path=self._calendar_path,
                    line=0,
                    code=self.code,
                    message="event calendar module not found; cannot check priorities",
                )
            ]
        classes = collect_event_classes(ctx.tree)
        classes.pop(EVENT_BASE_CLASS, None)

        doc_text = project.text(self._doc_path)
        documented = parse_priority_table(doc_text) if doc_text is not None else None
        findings: List[Finding] = []
        if documented is None:
            findings.append(
                Finding(
                    path=self._doc_path,
                    line=0,
                    code=self.code,
                    message="no `| priority | event |` table found; the ordering is undocumented",
                )
            )

        declared: Dict[str, Tuple[int, int]] = {}
        for name, node in sorted(classes.items()):
            info = declared_priority(node)
            if info is None:
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=node.lineno,
                        code=self.code,
                        message=(
                            f"event class {name} does not declare "
                            "`priority: ClassVar[int]`; inheriting the base "
                            "default hides its same-instant ordering"
                        ),
                    )
                )
                continue
            declared[name] = info

        if documented is None:
            return findings

        for name, (priority, lineno) in sorted(declared.items()):
            doc_priority = documented.get(name)
            if doc_priority is None:
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=lineno,
                        code=self.code,
                        message=(
                            f"event class {name} (priority {priority}) is missing "
                            f"from the priority table in {self._doc_path}"
                        ),
                    )
                )
            elif doc_priority != priority:
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=lineno,
                        code=self.code,
                        message=(
                            f"event class {name} declares priority {priority} but "
                            f"{self._doc_path} documents {doc_priority}"
                        ),
                    )
                )
        for name in sorted(set(documented) - set(classes)):
            findings.append(
                Finding(
                    path=self._doc_path,
                    line=0,
                    code=self.code,
                    message=(
                        f"priority table documents {name} (priority "
                        f"{documented[name]}) but no such event class exists in "
                        f"{self._calendar_path}"
                    ),
                )
            )
        return findings
