"""Analysis driver: discover files, run rules, filter suppressions.

:func:`run_analysis` is the single entry point the CLI, CI job and the
analyzer's own tests go through.  Output is deterministic: files are
discovered in sorted order and findings are reported in ``(path, line,
code)`` order, so two runs over the same tree produce identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .context import FileContext, ProjectContext
from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding, render_findings
from .registry import Rule, default_rules

#: Default scan roots, relative to the repository root.
DEFAULT_SCAN_PATHS = ("src/repro",)


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when clean; 1 on errors (or, under ``--strict``, any finding)."""
        blocking = self.findings if strict else self.errors
        return 1 if blocking else 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "root": self.root,
                "files_scanned": self.files_scanned,
                "rules_run": self.rules_run,
                "findings": [finding.to_dict() for finding in sorted(self.findings)],
            },
            indent=2,
            sort_keys=False,
        )

    def render_text(self) -> str:
        lines = render_findings(self.findings)
        summary = (
            f"{self.files_scanned} files scanned, {len(self.rules_run)} rules, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )
        return "\n".join(lines + [summary])


def discover_files(root: Path, paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths``, sorted for a deterministic scan order."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(file.resolve() for file in files))


def run_analysis(
    paths: Optional[Sequence[Path]] = None,
    *,
    root: Path,
    rules: Optional[Iterable[Rule]] = None,
    report_unused_suppressions: bool = True,
) -> AnalysisReport:
    """Run ``rules`` (default: the full registry) over ``paths`` under ``root``.

    ``paths`` defaults to :data:`DEFAULT_SCAN_PATHS` resolved against the
    root.  Suppressed findings are dropped; suppressions that shielded
    nothing become ``REP000`` warnings (disable with
    ``report_unused_suppressions=False`` when running a rule subset, where
    a suppression's rule may simply not have run).
    """
    root = Path(root).resolve()
    scan_paths = (
        [Path(p) for p in paths]
        if paths is not None
        else [root / rel for rel in DEFAULT_SCAN_PATHS]
    )
    active_rules = list(rules) if rules is not None else default_rules()
    project = ProjectContext(root)
    for file_path in discover_files(root, scan_paths):
        project.add(FileContext.parse(file_path, root))

    raw: List[Finding] = []
    for rule in active_rules:
        for ctx in project.files:
            raw.extend(rule.check_file(ctx, project))
        raw.extend(rule.check_project(project))

    kept: List[Finding] = []
    for finding in raw:
        ctx = project.file(finding.path) if finding.path.endswith(".py") else None
        if ctx is not None and ctx.is_suppressed(finding.line, finding.code):
            continue
        kept.append(finding)

    if report_unused_suppressions:
        for ctx in project.files:
            for line, code in ctx.unused_suppressions():
                kept.append(
                    Finding(
                        path=ctx.relpath,
                        line=line,
                        code="REP000",
                        message=(
                            f"suppression ignore[{code}] matched no finding; "
                            "remove it or fix the code it references"
                        ),
                        severity=SEVERITY_WARNING,
                    )
                )

    return AnalysisReport(
        root=str(root),
        findings=sorted(kept),
        files_scanned=len(project.files),
        rules_run=[rule.code for rule in active_rules],
    )
