"""Runtime plan-phase purity sanitizer.

The plan/settle split (``Simulator.plan_window`` / ``settle_stream``) only
stays sound if planning is *pure*: it may read the dynamics and site state
and build a :class:`~repro.simulation.simulator.WindowPlan`, but committing
anything belongs to the settle phase.  The parity gates see a violation only
indirectly (as a diff several windows later); this sanitizer catches it at
the mutation site.

:func:`state_digest` walks an object graph and produces a flat ``path →
fingerprint`` map; :class:`PuritySanitizer.guard` digests its subjects
before and after a guarded call and raises
:class:`~repro.exceptions.PurityViolationError` when a *pre-existing* path
changed or disappeared.

Digest semantics — what counts as a mutation:

* **Growth is allowed.**  New paths (lazy memoisation: a first
  ``StreamState``, a window-cache entry, a candidate-training cache hit)
  are benign and expected during planning.  Dict/set entries therefore get
  per-key paths with no length leaf.
* **Pre-existing state is frozen.**  A changed or deleted path — a
  ``StreamState`` advanced, a cached window rewritten, a learner replaced —
  is a plan-phase commit and raises.
* **List/tuple lengths are pinned**: appends shift meaning by index, so
  sequence growth is treated as mutation (engine caches that legitimately
  grow during planning are dict-shaped).
* **RNG objects are opaque.**  Lazily realising a window advances the
  stream's generators; that is part of allowed memoisation, so
  ``numpy.random`` generator state is deliberately not fingerprinted.
* **Numpy arrays** fingerprint as ``shape/dtype/sha1(bytes)`` — any
  element-level write is caught.

The guard digests only what it is handed.  The plan-phase hooks pass the
shared :class:`~repro.profiles.dynamics.StreamDynamics` and the site's
streams/spec — not the GPU fleet (placement verification legitimately
re-reserves GPUs while planning) and not the policy's profiler (estimation
noise drawn at plan time is part of the planned estimate, seeded and
replayable, not engine state).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Set

import numpy as np

from ..exceptions import PurityViolationError

__all__ = ["PuritySanitizer", "state_digest", "verify_digests"]

#: Recursion ceiling; deeper subtrees fingerprint as an opaque leaf.
MAX_DEPTH = 12

#: How many violating paths a raised error spells out.
_MAX_REPORTED = 6

_PRIMITIVES = (bool, int, float, complex, str, bytes, type(None))


def state_digest(obj: Any, label: str = "subject") -> Dict[str, str]:
    """Flat ``path → fingerprint`` map of ``obj``'s reachable state."""
    out: Dict[str, str] = {}
    _digest(obj, label, out, seen=set(), depth=0)
    return out


def _digest(obj: Any, path: str, out: Dict[str, str], seen: Set[int], depth: int) -> None:
    if depth > MAX_DEPTH:
        out[path] = f"<depth-capped:{type(obj).__name__}>"
        return
    if isinstance(obj, _PRIMITIVES):
        out[path] = repr(obj)
        return
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        digest = hashlib.sha1(data.tobytes()).hexdigest()[:16]
        out[path] = f"ndarray{obj.shape}:{obj.dtype}:{digest}"
        return
    if isinstance(obj, np.generic):
        out[path] = repr(obj)
        return
    if isinstance(obj, (np.random.Generator, np.random.BitGenerator, np.random.SeedSequence)):
        # Opaque by design: lazy realisation legitimately advances RNGs.
        out[path] = f"<rng:{type(obj).__name__}>"
        return
    # Cycle guard keyed on object identity along the current walk only —
    # never compared across the before/after digests, so the nondeterminism
    # of addresses cannot leak into them.
    marker = id(obj)  # repro: ignore[REP004] -- cycle guard, not a fingerprint
    if marker in seen:
        out[path] = "<cycle>"
        return
    seen.add(marker)
    try:
        if isinstance(obj, Mapping):
            for key in obj:
                _digest(obj[key], f"{path}[{key!r}]", out, seen, depth + 1)
        elif isinstance(obj, (list, tuple)):
            out[f"{path}.len"] = str(len(obj))
            for index, item in enumerate(obj):
                _digest(item, f"{path}[{index}]", out, seen, depth + 1)
        elif isinstance(obj, (set, frozenset)):
            for element in obj:
                out[f"{path}{{{element!r}}}"] = "present"
        elif hasattr(obj, "__dict__"):
            for name in sorted(vars(obj)):
                value = vars(obj)[name]
                if callable(value) or isinstance(value, type):
                    continue
                _digest(value, f"{path}.{name}", out, seen, depth + 1)
        elif hasattr(type(obj), "__slots__"):
            for name in sorted(_all_slots(type(obj))):
                if hasattr(obj, name):
                    _digest(getattr(obj, name), f"{path}.{name}", out, seen, depth + 1)
        else:
            out[path] = f"<opaque:{type(obj).__name__}>"
    finally:
        seen.discard(marker)


def _all_slots(cls: type) -> Set[str]:
    slots: Set[str] = set()
    for klass in cls.__mro__:
        declared = getattr(klass, "__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        slots.update(declared)
    return slots


def verify_digests(
    before: Dict[str, str],
    after: Dict[str, str],
    *,
    subject: str,
    context: str,
) -> None:
    """Raise :class:`PurityViolationError` if pre-existing state changed."""
    changed = [
        path for path, fingerprint in before.items()
        if path in after and after[path] != fingerprint
    ]
    deleted = [path for path in before if path not in after]
    if not changed and not deleted:
        return
    details = []
    for path in sorted(changed)[:_MAX_REPORTED]:
        details.append(f"  changed  {path}: {before[path]} -> {after[path]}")
    for path in sorted(deleted)[:_MAX_REPORTED]:
        details.append(f"  deleted  {path}: was {before[path]}")
    total = len(changed) + len(deleted)
    if total > len(details):
        details.append(f"  ... and {total - len(details)} more")
    raise PurityViolationError(
        f"plan-phase purity violated during {context}: {subject} was mutated "
        f"({len(changed)} changed, {len(deleted)} deleted paths)\n" + "\n".join(details)
    )


class PuritySanitizer:
    """Digests subjects around plan-phase calls and raises on mutation.

    Opt-in debug tooling (``make_fleet(sanitize=True)`` or the
    ``sanitized_fleet`` pytest fixture): digesting every stream's cached
    windows is far too slow for benchmarks, but cheap enough for the gated
    integration scenarios.  A sanitized run that completes proves every
    guarded plan/scan left pre-existing engine state untouched — and, by
    the golden-parity test, that guarding itself changed nothing.
    """

    def __init__(self) -> None:
        #: Guarded calls observed (exposed for tests/debugging).
        self.checks = 0

    @contextmanager
    def guard(self, context: str, **subjects: Any) -> Iterator[None]:
        """Verify that ``subjects`` are unchanged across the ``with`` body.

        Verification runs only on clean exit: when the guarded call itself
        raises, that error propagates unmasked.
        """
        before = {name: state_digest(obj, name) for name, obj in subjects.items()}
        yield
        self.checks += 1
        for name, obj in subjects.items():
            verify_digests(before[name], state_digest(obj, name), subject=name, context=context)
