"""REP001 — no wall-clock reads in engine code.

Every timing-sensitive result in the repo (``scheduler_runtime_seconds``,
``wall_clock_seconds``) is bit-identical across runs only because time is
injected through :class:`repro.utils.clock.Clock` — a ``ManualClock`` in
every gated test.  A stray ``time.time()`` / ``datetime.now()`` anywhere
else silently breaks that: the number changes per run and the parity gates
either flake or quietly stop covering the code path.  ``utils/clock.py`` is
the single sanctioned owner of the real clock.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from .context import FileContext, ImportMap, ProjectContext
from .findings import Finding
from .registry import Rule

#: Call targets that read the process's real clock.
BANNED_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Repo-relative suffixes allowed to read the real clock.
DEFAULT_CLOCK_ALLOWLIST = ("utils/clock.py",)


class WallClockRule(Rule):
    code = "REP001"
    name = "wall-clock"
    description = "wall-clock reads outside utils/clock.py"

    def __init__(self, allowlist: Sequence[str] = DEFAULT_CLOCK_ALLOWLIST) -> None:
        self._allowlist = tuple(allowlist)

    def check_file(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        if ctx.relpath.endswith(self._allowlist):
            return []
        imports = ImportMap.of(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node.func)
            if target in BANNED_CLOCK_CALLS:
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=node.lineno,
                        code=self.code,
                        message=(
                            f"wall-clock call {target}() in engine code; inject "
                            "a repro.utils.clock.Clock instead so runs replay "
                            "bit-identically"
                        ),
                    )
                )
        return findings
