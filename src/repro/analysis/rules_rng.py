"""REP002 — no module-global or unseeded RNG in engine code.

All randomness in the engine flows through :mod:`repro.utils.rng`
(``ensure_rng`` over an explicit seed, ``stable_seed`` for derived streams),
so a run is a pure function of its seeds.  Three ways to break that:

* the stdlib ``random`` module — one hidden process-global generator;
* numpy's legacy global state (``np.random.seed`` / ``np.random.uniform``
  and friends) — the same hidden global, shared across every caller;
* ``np.random.default_rng()`` (or a bare bit generator) with *no seed* —
  fresh OS entropy per construction.

``default_rng(seed)`` with any explicit argument other than ``None`` is
exactly what ``ensure_rng`` does and passes.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .context import FileContext, ImportMap, ProjectContext
from .findings import Finding
from .registry import Rule

#: Samplers/mutators of numpy's hidden module-global RandomState.
LEGACY_NUMPY_GLOBALS = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "beta",
        "binomial",
        "exponential",
        "gamma",
        "normal",
        "poisson",
        "standard_normal",
        "uniform",
    }
)

#: Constructors that draw OS entropy when called without a seed.
SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)


def _first_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


class UnseededRngRule(Rule):
    code = "REP002"
    name = "unseeded-rng"
    description = "module-global or unseeded RNG use"

    def check_file(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        imports = ImportMap.of(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node.func)
            if target is None:
                continue
            message = self._violation(target, node)
            if message is not None:
                findings.append(
                    Finding(path=ctx.relpath, line=node.lineno, code=self.code, message=message)
                )
        return findings

    @staticmethod
    def _violation(target: str, node: ast.Call) -> Optional[str]:
        if target.startswith("random."):
            return (
                f"stdlib {target}() uses the hidden process-global generator; "
                "derive a seeded numpy Generator via repro.utils.rng instead"
            )
        if not target.startswith("numpy.random."):
            return None
        tail = target[len("numpy.random."):]
        if tail in LEGACY_NUMPY_GLOBALS:
            return (
                f"numpy.random.{tail}() mutates/samples numpy's module-global "
                "state; use an explicit seeded Generator (repro.utils.rng."
                "ensure_rng) instead"
            )
        if target in SEEDABLE_CONSTRUCTORS:
            seed = _first_argument(node)
            if seed is None or (isinstance(seed, ast.Constant) and seed.value is None):
                return (
                    f"{target}() without a seed draws fresh OS entropy per run; "
                    "pass an explicit seed (repro.utils.rng.stable_seed for "
                    "derived streams)"
                )
        return None
