"""Parsed-source contexts and inline suppressions for the analyzer.

A :class:`FileContext` holds one file's source, AST and its parsed
``# repro: ignore[REPxxx]`` suppression comments; a :class:`ProjectContext`
roots the run at the repository and lazily loads the cross-check targets the
structural rules need (``fleet/calendar.py``, ``docs/events.md``...) even
when they are outside the scanned path set.

Suppression syntax — a trailing comment on the offending line::

    victims = list(candidates)  # repro: ignore[REP003] -- order rechecked below

Several codes may be listed (``ignore[REP003, REP004]``); anything after the
closing bracket is free-form justification.  The runner reports suppressions
that matched no finding as ``REP000`` warnings so stale ones cannot linger.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import AnalysisError

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")
_CODE_RE = re.compile(r"[A-Z]{3}\d{3}")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-indexed line numbers to the rule codes suppressed on them.

    Tokenizer-based, so only genuine comments count — a suppression example
    quoted inside a docstring is not a suppression.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse() ran first
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _IGNORE_RE.search(token.string)
        if match is None:
            continue
        codes = set(_CODE_RE.findall(match.group(1)))
        if codes:
            suppressions.setdefault(token.start[0], set()).update(codes)
    return suppressions


class FileContext:
    """One parsed source file plus its inline suppressions."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        #: ``(line, code)`` pairs that actually shielded a finding.
        self.used_suppressions: Set[Tuple[int, str]] = set()

    @classmethod
    def parse(cls, path: Path, root: Path) -> "FileContext":
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {relpath}: {exc}") from exc
        return cls(relpath, source, tree)

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on ``line`` (recording the use)."""
        if code in self.suppressions.get(line, ()):
            self.used_suppressions.add((line, code))
            return True
        return False

    def unused_suppressions(self) -> List[Tuple[int, str]]:
        """Suppression entries that shielded nothing, in line order."""
        unused = [
            (line, code)
            for line, codes in self.suppressions.items()
            for code in sorted(codes)
            if (line, code) not in self.used_suppressions
        ]
        return sorted(unused)


class ProjectContext:
    """The repository a run is rooted at, plus every parsed file.

    ``files`` is the scanned set; :meth:`file` serves the structural rules,
    loading cross-check targets on demand so e.g. the priority-table rule
    works even when only ``src/repro/analysis/`` was scanned.  Loaded files
    join the suppression bookkeeping either way.
    """

    def __init__(self, root: Path, files: Optional[List[FileContext]] = None) -> None:
        self.root = Path(root)
        self.files: List[FileContext] = list(files or [])
        self._by_path: Dict[str, FileContext] = {ctx.relpath: ctx for ctx in self.files}

    def add(self, ctx: FileContext) -> FileContext:
        self.files.append(ctx)
        self._by_path[ctx.relpath] = ctx
        return ctx

    def file(self, relpath: str) -> Optional[FileContext]:
        """The parsed file at repo-relative ``relpath``, loading it if needed."""
        ctx = self._by_path.get(relpath)
        if ctx is not None:
            return ctx
        path = self.root / relpath
        if not path.is_file():
            return None
        ctx = FileContext.parse(path, self.root)
        self._by_path[relpath] = ctx
        return ctx

    def text(self, relpath: str) -> Optional[str]:
        """Raw text of a non-Python cross-check target (e.g. a docs table)."""
        path = self.root / relpath
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class ImportMap(ast.NodeVisitor):
    """Local name → dotted module path, from a module's import statements.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from time import
    perf_counter as pc`` maps ``pc`` to ``time.perf_counter``.  Relative
    imports resolve to their bare tail (level markers dropped) — good enough
    for the stdlib/numpy patterns the determinism rules target.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.aliases[alias.asname] = alias.name
            else:
                # ``import a.b`` binds ``a`` — attribute resolution walks
                # the rest of the dotted path from there.
                head = alias.name.split(".")[0]
                self.aliases[head] = head

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{module}.{alias.name}" if module else alias.name

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        mapper = cls()
        mapper.visit(tree)
        return mapper

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Canonical dotted path of a call target, or ``None``.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        given ``import numpy as np``; a bare name resolves through the
        from-import table (``perf_counter`` → ``time.perf_counter``) and
        otherwise stays itself (builtins like ``id``).
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])
