"""Rule base class and the default rule registry.

Every rule carries a stable ``code`` (``REP001``…) used in findings and in
``# repro: ignore[REPxxx]`` suppressions.  Two granularities exist:

* **file rules** override :meth:`Rule.check_file` and run once per scanned
  file (the determinism lints);
* **project rules** override :meth:`Rule.check_project` and run once per
  analysis, cross-checking extracted facts against fixed targets (the
  ``SimEvent`` hierarchy vs. ``docs/events.md``, ``FleetResult.summary()``
  vs. ``fleet/export.py``).

To add a rule: subclass :class:`Rule` in a ``rules_*`` module, pick the next
free ``REPxxx`` code, append an instance to :func:`default_rules`, document
it in ``docs/analysis.md`` and give it a positive + negative + suppression
fixture in ``tests/unit/test_analysis.py``.
"""

from __future__ import annotations

from typing import List

from .context import FileContext, ProjectContext
from .findings import Finding


class Rule:
    """One invariant the analyzer enforces."""

    code: str = "REP999"
    name: str = "unnamed"
    description: str = ""

    def check_file(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        return []

    def check_project(self, project: ProjectContext) -> List[Finding]:
        return []


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    # Local imports: the rule modules import Rule from here.
    from .rules_clock import WallClockRule
    from .rules_events import FrozenEventRule, PriorityTableRule
    from .rules_export import SummaryCoverageRule
    from .rules_ordering import IdTieBreakRule, SetIterationRule
    from .rules_rng import UnseededRngRule

    return [
        WallClockRule(),
        UnseededRngRule(),
        SetIterationRule(),
        IdTieBreakRule(),
        FrozenEventRule(),
        PriorityTableRule(),
        SummaryCoverageRule(),
    ]
