"""REP003/REP004 — no hash-order iteration or identity tie-breaks.

The event calendar makes runs deterministic only if everything that *feeds*
it is: migration victims, evacuation order and scheduling loops must iterate
in an explicit order.  Two source-level ways to lose that:

* **REP003** — iterating a ``set`` (or materialising one with ``list()`` /
  ``tuple()``): element order follows the string hash, which is randomised
  per process (``PYTHONHASHSEED``).  Scoped to ``fleet/`` modules, where
  iteration order feeds event scheduling and migration ordering; the fix is
  ``sorted(...)``.  Python ``dict`` iteration is insertion-ordered and
  therefore deterministic — it is deliberately *not* flagged.
* **REP004** — calls to builtin ``id()`` (a memory address: different every
  run) and ``hash()`` (salted for strings) outside ``__hash__`` methods.
  Tie-breaks must use stable names or sequence numbers instead.

Both are syntactic rules: they see set *expressions* at the iteration site,
not values flowing through variables.  That keeps them precise (no flow
analysis, no false positives on dict iteration) at the cost of missing a
set bound to a name first — the purity sanitizer and parity gates back
those up at runtime.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Union

from .context import FileContext, ProjectContext
from .findings import Finding
from .registry import Rule

#: ``some.union(...)`` etc. — set-algebra methods whose result is a set.
_SET_METHODS = frozenset({"union", "intersection", "difference", "symmetric_difference"})

#: Builtins that materialise their argument *in iteration order*.
_ORDER_MATERIALISERS = frozenset({"list", "tuple"})


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` syntactically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


class SetIterationRule(Rule):
    code = "REP003"
    name = "set-iteration"
    description = "hash-ordered set iteration in fleet modules"

    def __init__(self, scope: Optional[Sequence[str]] = ("fleet",)) -> None:
        #: Path components a file must contain for the rule to apply;
        #: ``None`` applies everywhere.
        self._scope = tuple(scope) if scope is not None else None

    def _in_scope(self, relpath: str) -> bool:
        if self._scope is None:
            return True
        parts = relpath.split("/")
        return any(component in parts for component in self._scope)

    def check_file(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        if not self._in_scope(ctx.relpath):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            site = self._iteration_site(node)
            if site is not None:
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=site.lineno,
                        code=self.code,
                        message=(
                            "iterating a set here exposes hash order "
                            "(PYTHONHASHSEED-dependent for strings) to "
                            "scheduling/migration decisions; wrap it in "
                            "sorted(...)"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _iteration_site(
        node: ast.AST,
    ) -> Optional[Union[ast.expr, ast.stmt]]:
        """The offending expression when ``node`` iterates a set expression."""
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expression(node.iter):
            return node.iter
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expression(generator.iter):
                    return generator.iter
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_MATERIALISERS
                and node.args
                and _is_set_expression(node.args[0])
            ):
                return node
        return None


class IdTieBreakRule(Rule):
    code = "REP004"
    name = "identity-tiebreak"
    description = "id()/hash() feeding orderings"

    def check_file(self, ctx: FileContext, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        self._visit(ctx.tree.body, ctx, findings, in_dunder_hash=False)
        return findings

    def _visit(
        self,
        body: Sequence[ast.stmt],
        ctx: FileContext,
        findings: List[Finding],
        *,
        in_dunder_hash: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit(
                    stmt.body,
                    ctx,
                    findings,
                    # ``hash(...)`` delegation inside __hash__ is idiomatic.
                    in_dunder_hash=in_dunder_hash or stmt.name == "__hash__",
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                self._visit(stmt.body, ctx, findings, in_dunder_hash=in_dunder_hash)
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Name):
                    continue
                if func.id == "id" or (func.id == "hash" and not in_dunder_hash):
                    findings.append(
                        Finding(
                            path=ctx.relpath,
                            line=node.lineno,
                            code=self.code,
                            message=(
                                f"builtin {func.id}() is nondeterministic across "
                                "runs (memory address / salted string hash); "
                                "tie-break on stable names or sequence numbers"
                            ),
                        )
                    )
