"""Small numeric helpers shared across the library.

These helpers are deliberately dependency-light (numpy only) and are used by
the scheduler, the profiles subpackage and the simulator: clamping accuracies
into [0, 1], Pareto-frontier extraction for resource/accuracy tradeoffs
(Figure 3b of the paper), safe weighted means and time-weighted averages for
the "inference accuracy averaged over the retraining window" metric.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def clamp(value: float, lo: float = 0.0, hi: float = 1.0) -> float:
    """Clamp ``value`` into the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"lo ({lo}) must be <= hi ({hi})")
    return float(min(max(value, lo), hi))


def safe_mean(values: Sequence[float], default: float = 0.0) -> float:
    """Arithmetic mean that returns ``default`` for empty input."""
    values = list(values)
    if not values:
        return float(default)
    return float(np.mean(values))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean; raises on mismatched lengths or non-positive weight sum."""
    values = np.asarray(list(values), dtype=float)
    weights = np.asarray(list(weights), dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same length")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("sum of weights must be positive")
    return float(np.dot(values, weights) / total)


def time_weighted_average(
    segments: Sequence[Tuple[float, float]],
) -> float:
    """Average of piecewise-constant values weighted by their durations.

    ``segments`` is a sequence of ``(duration, value)`` pairs.  This is the
    primitive behind the paper's target metric: inference accuracy averaged
    over a retraining window, where the accuracy is constant between
    scheduling events (retraining completions, checkpoints).
    """
    total_time = 0.0
    weighted = 0.0
    for duration, value in segments:
        if duration < 0:
            raise ValueError("segment durations must be non-negative")
        total_time += duration
        weighted += duration * value
    if total_time == 0:
        return 0.0
    return weighted / total_time


def pareto_frontier(
    points: Sequence[Tuple[float, float]],
    *,
    minimize_x: bool = True,
    maximize_y: bool = True,
) -> List[int]:
    """Return indices of Pareto-optimal points.

    By default a point is Pareto optimal if no other point has both a lower
    (or equal) x *cost* and a higher (or equal) y *value* with at least one
    strict improvement — matching Figure 3b where x is GPU-seconds and y is
    accuracy.  The returned indices are sorted by x.
    """
    pts = [(float(x), float(y), i) for i, (x, y) in enumerate(points)]
    if not pts:
        return []
    sign_x = 1.0 if minimize_x else -1.0
    sign_y = -1.0 if maximize_y else 1.0
    # Sort by cost ascending, then by value descending so that equal-cost
    # points keep only the best value on the frontier sweep.
    pts.sort(key=lambda p: (sign_x * p[0], sign_y * p[1]))
    frontier: List[int] = []
    best_y = -np.inf if maximize_y else np.inf
    for x, y, idx in pts:
        better = y > best_y if maximize_y else y < best_y
        if better:
            frontier.append(idx)
            best_y = y
    # Report indices ordered by their x coordinate for readability.
    frontier.sort(key=lambda i: sign_x * float(points[i][0]))
    return frontier


def is_pareto_dominated(
    point: Tuple[float, float],
    others: Iterable[Tuple[float, float]],
    *,
    tolerance: float = 0.0,
) -> bool:
    """True if ``point`` (cost, value) is dominated by any point in ``others``.

    A dominating point has cost <= point cost and value >= point value, with
    at least one strict inequality beyond ``tolerance``.
    """
    cost, value = float(point[0]), float(point[1])
    for other_cost, other_value in others:
        if other_cost <= cost + tolerance and other_value >= value - tolerance:
            strictly_better = (other_cost < cost - tolerance) or (
                other_value > value + tolerance
            )
            if strictly_better:
                return True
    return False


def normalize_distribution(weights: Sequence[float]) -> np.ndarray:
    """Normalise non-negative weights into a probability distribution."""
    arr = np.asarray(list(weights), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot normalise an empty distribution")
    if np.any(arr < 0):
        raise ValueError("weights must be non-negative")
    total = arr.sum()
    if total <= 0:
        # Degenerate input: fall back to uniform.
        return np.full(arr.shape, 1.0 / arr.size)
    return arr / total


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two equal-length vectors.

    Used by the cached-model-reuse baseline, which picks the cached model
    whose training class distribution is closest to the current window's.
    """
    va = np.asarray(list(a), dtype=float)
    vb = np.asarray(list(b), dtype=float)
    if va.shape != vb.shape:
        raise ValueError("vectors must have the same length")
    return float(np.linalg.norm(va - vb))


def round_to_multiple(value: float, quantum: float) -> float:
    """Round ``value`` to the nearest multiple of ``quantum`` (> 0)."""
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    return round(value / quantum) * quantum


def floor_to_multiple(value: float, quantum: float) -> float:
    """Round ``value`` down to a multiple of ``quantum`` (> 0)."""
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    return float(np.floor(value / quantum + 1e-9) * quantum)


def quantize_to_inverse_power_of_two(fraction: float, *, min_fraction: float = 1.0 / 16.0) -> float:
    """Quantise a GPU fraction to an inverse power of two (1, 1/2, 1/4, ...).

    Ekya quantises the thief scheduler's continuous allocations before
    placement so that jobs pack cleanly onto discrete GPUs (§5).  Fractions
    are rounded *down* to the nearest 1/2^k, never below ``min_fraction``
    unless the input is zero (which stays zero).
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    if fraction == 0:
        return 0.0
    if fraction >= 1.0:
        return float(np.floor(fraction))
    candidate = 1.0
    while candidate > fraction + 1e-12 and candidate / 2.0 >= min_fraction - 1e-12:
        candidate /= 2.0
    return max(candidate if candidate <= fraction + 1e-12 else min_fraction, min_fraction)
