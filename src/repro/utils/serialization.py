"""JSON-friendly serialisation helpers.

Profiles, traces and experiment results are exchanged between the testbed
substrate (``repro.models``) and the trace-driven simulator
(``repro.simulation``) as plain dictionaries, mirroring how the paper logs
training-accuracy progressions from its testbed and replays them in its
simulator.  These helpers keep that round-trip loss-free for numpy types.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into something ``json.dumps`` accepts.

    Handles numpy scalars/arrays, dataclasses, mappings, sets and sequences.
    Objects exposing an ``as_dict()`` method (configs, profiles, curves) are
    converted through it.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if hasattr(obj, "as_dict") and callable(obj.as_dict):
        return to_jsonable(obj.as_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    raise TypeError(f"cannot serialise object of type {type(obj)!r}")


def dump_json(obj: Any, path: PathLike, *, indent: int = 2) -> Path:
    """Serialise ``obj`` to JSON at ``path``; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON document previously written by :func:`dump_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
