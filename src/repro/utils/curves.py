"""Non-linear accuracy curves and the NNLS-based extrapolation used by the
micro-profiler.

The paper's micro-profiler observes the validation accuracy of a retraining
configuration for a handful of epochs on a small data subset, fits the
observations to "a non-linear curve model from [Optimus]" using a
non-negative least squares solver, and extrapolates to the accuracy that
would be reached when training on all the data for many more epochs (§4.3).

We implement the same family of curves:

* :class:`SaturatingCurve` — ``acc(e) = a_max - 1 / (k0 + k1 * e)``, the
  Optimus-style diminishing-returns model.  It is linear in ``(k0, k1)`` for a
  fixed ``a_max`` which is what makes an NNLS fit possible.
* :func:`fit_accuracy_curve` — grid-searches ``a_max`` and solves the inner
  problem with :func:`scipy.optimize.nnls`.
* :func:`scale_for_data_fraction` — adjusts the asymptote when extrapolating
  from a data subset to the full retraining-window data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from ..exceptions import ProfilingError
from .math_utils import clamp


@dataclass(frozen=True)
class SaturatingCurve:
    """Accuracy-vs-epoch curve ``acc(e) = a_max - 1 / (k0 + k1 * e)``.

    ``a_max`` is the asymptotic accuracy, ``k0`` controls the starting
    accuracy at epoch 0 and ``k1`` the convergence speed.  ``k0`` and ``k1``
    are constrained non-negative (hence the NNLS fit), which guarantees that
    the curve is monotonically non-decreasing in the number of epochs.
    """

    a_max: float
    k0: float
    k1: float

    def accuracy_at(self, epochs: float) -> float:
        """Predicted accuracy after ``epochs`` epochs (clamped into [0, 1])."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        denom = self.k0 + self.k1 * epochs
        if denom <= 0:
            return 0.0
        return clamp(self.a_max - 1.0 / denom)

    def epochs_to_reach(self, accuracy: float) -> float:
        """Epochs needed to reach ``accuracy``; ``inf`` if unreachable."""
        if accuracy >= self.a_max or self.k1 <= 0:
            return float("inf")
        denom = self.a_max - accuracy
        needed = (1.0 / denom - self.k0) / self.k1
        return max(0.0, float(needed))

    def as_dict(self) -> dict:
        return {"a_max": self.a_max, "k0": self.k0, "k1": self.k1}

    @classmethod
    def from_dict(cls, payload: dict) -> "SaturatingCurve":
        return cls(a_max=float(payload["a_max"]), k0=float(payload["k0"]), k1=float(payload["k1"]))


def _nnls_for_amax(
    epochs: np.ndarray, accuracies: np.ndarray, a_max: float
) -> Tuple[float, float, float]:
    """Solve for (k0, k1) with a_max fixed; returns (k0, k1, residual).

    With ``y = 1 / (a_max - acc)`` the model becomes ``y = k0 + k1 * e``,
    linear with non-negative coefficients.  Observations at or above the
    asymptote are clipped slightly below it to keep the transform finite.
    """
    gap = np.clip(a_max - accuracies, 1e-4, None)
    y = 1.0 / gap
    design = np.column_stack([np.ones_like(epochs, dtype=float), epochs.astype(float)])
    coeffs, _ = nnls(design, y)
    k0, k1 = float(coeffs[0]), float(coeffs[1])
    predicted = a_max - 1.0 / np.clip(design @ coeffs, 1e-9, None)
    residual = float(np.sqrt(np.mean((predicted - accuracies) ** 2)))
    return k0, k1, residual


def fit_accuracy_curve(
    epochs: Sequence[float],
    accuracies: Sequence[float],
    *,
    a_max_grid: Sequence[float] | None = None,
) -> SaturatingCurve:
    """Fit a :class:`SaturatingCurve` to observed (epoch, accuracy) points.

    The asymptote ``a_max`` is grid-searched over values above the best
    observed accuracy; for each candidate the inner non-negative
    least-squares problem is solved exactly with :func:`scipy.optimize.nnls`
    and the candidate with the lowest RMS residual wins.

    Raises :class:`ProfilingError` if fewer than two observations are given
    or the observations are degenerate.
    """
    ep = np.asarray(list(epochs), dtype=float)
    acc = np.asarray(list(accuracies), dtype=float)
    if ep.shape != acc.shape:
        raise ProfilingError("epochs and accuracies must have the same length")
    if ep.size < 2:
        raise ProfilingError("need at least two observations to fit an accuracy curve")
    if np.any(ep < 0):
        raise ProfilingError("epoch indices must be non-negative")
    if np.any((acc < 0) | (acc > 1)):
        raise ProfilingError("accuracies must lie in [0, 1]")

    best_obs = float(acc.max())
    if a_max_grid is None:
        # Candidate asymptotes from "barely above the best observation" to a
        # perfect model; finer resolution near the observation.
        a_max_grid = np.unique(
            np.concatenate(
                [
                    best_obs + np.array([0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.25]),
                    np.array([1.0]),
                ]
            )
        )
    best: Tuple[float, SaturatingCurve] | None = None
    for a_max in a_max_grid:
        a_max = float(min(max(a_max, best_obs + 1e-3), 1.0))
        k0, k1, residual = _nnls_for_amax(ep, acc, a_max)
        curve = SaturatingCurve(a_max=a_max, k0=k0, k1=k1)
        if best is None or residual < best[0]:
            best = (residual, curve)
    assert best is not None  # a_max_grid is never empty
    return best[1]


def scale_for_data_fraction(
    curve: SaturatingCurve,
    *,
    profiled_fraction: float,
    target_fraction: float,
    data_boost: float = 0.08,
) -> SaturatingCurve:
    """Adjust a curve fitted on a data subset to predict full-data training.

    Training on more data raises the achievable asymptote (more variation is
    memorised) but converges slightly slower per epoch.  The boost follows a
    logarithmic law in the data ratio — doubling the data adds roughly
    ``data_boost`` to the asymptote — which matches the qualitative behaviour
    the paper relies on ("post-retraining accuracy can be roughly estimated by
    training on a small subset").
    """
    if not 0 < profiled_fraction <= 1 or not 0 < target_fraction <= 1:
        raise ValueError("data fractions must be in (0, 1]")
    ratio = target_fraction / profiled_fraction
    boost = data_boost * np.log2(max(ratio, 1e-9)) if ratio >= 1 else data_boost * np.log2(ratio)
    new_a_max = clamp(curve.a_max + boost, 0.0, 1.0)
    # More data slows per-epoch convergence a little (each epoch covers more
    # unique samples but the optimisation problem is harder).
    slowdown = 1.0 / (1.0 + 0.15 * max(np.log2(max(ratio, 1e-9)), 0.0))
    return SaturatingCurve(a_max=new_a_max, k0=curve.k0, k1=curve.k1 * slowdown)


def predict_final_accuracy(
    epochs_observed: Sequence[float],
    accuracies_observed: Sequence[float],
    *,
    target_epochs: float,
    profiled_fraction: float = 1.0,
    target_fraction: float = 1.0,
) -> float:
    """Convenience wrapper: fit, rescale for data size, and evaluate.

    This is the single call used by the micro-profiler to turn a handful of
    early-epoch observations into an estimate of the post-retraining accuracy
    for a given configuration.
    """
    curve = fit_accuracy_curve(epochs_observed, accuracies_observed)
    if profiled_fraction != target_fraction:
        curve = scale_for_data_fraction(
            curve,
            profiled_fraction=profiled_fraction,
            target_fraction=target_fraction,
        )
    return curve.accuracy_at(target_epochs)
