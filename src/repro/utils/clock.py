"""Injectable monotonic clocks for runtime measurement.

Schedulers and the fleet orchestration layer report how long their decision
paths took (``scheduler_runtime_seconds``, fleet sweep wall-clock).  Reading
``time.perf_counter()`` inline makes those numbers impossible to compare
across runs in tests; routing every measurement through a :class:`Clock`
lets production code keep the real monotonic clock while tests inject a
:class:`ManualClock` and get bit-identical, deterministic results.
"""

from __future__ import annotations

import abc
import time

from ..exceptions import SimulationError


class Clock(abc.ABC):
    """Source of monotonic timestamps in seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""


class SystemClock(Clock):
    """The process's real monotonic clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A clock that only moves when told to — deterministic by construction.

    Parameters
    ----------
    start:
        Initial timestamp.
    tick:
        Seconds the clock advances *after* each :meth:`now` call.  The default
        of 0.0 freezes time entirely, which makes any elapsed-time measurement
        exactly zero — the right choice when simulation results must be
        comparable field-for-field across runs.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise SimulationError("tick must be non-negative")
        self._current = float(start)
        self._tick = float(tick)

    def now(self) -> float:
        value = self._current
        self._current += self._tick
        return value

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise SimulationError("cannot advance a monotonic clock backwards")
        self._current += float(seconds)


#: Default clock used when none is injected.
SYSTEM_CLOCK = SystemClock()


class Stopwatch:
    """Elapsed-time measurement against an injectable clock."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self._start = self._clock.now()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return self._clock.now() - self._start

    def restart(self) -> None:
        self._start = self._clock.now()
