"""Shared numeric and infrastructure helpers for the Ekya reproduction."""

from .clock import SYSTEM_CLOCK, Clock, ManualClock, Stopwatch, SystemClock
from .curves import (
    SaturatingCurve,
    fit_accuracy_curve,
    predict_final_accuracy,
    scale_for_data_fraction,
)
from .math_utils import (
    clamp,
    euclidean_distance,
    floor_to_multiple,
    is_pareto_dominated,
    normalize_distribution,
    pareto_frontier,
    quantize_to_inverse_power_of_two,
    round_to_multiple,
    safe_mean,
    time_weighted_average,
    weighted_mean,
)
from .rng import ensure_rng, spawn_rng, stable_seed
from .serialization import dump_json, load_json, to_jsonable

__all__ = [
    "SYSTEM_CLOCK",
    "Clock",
    "ManualClock",
    "Stopwatch",
    "SystemClock",
    "SaturatingCurve",
    "fit_accuracy_curve",
    "predict_final_accuracy",
    "scale_for_data_fraction",
    "clamp",
    "euclidean_distance",
    "floor_to_multiple",
    "is_pareto_dominated",
    "normalize_distribution",
    "pareto_frontier",
    "quantize_to_inverse_power_of_two",
    "round_to_multiple",
    "safe_mean",
    "time_weighted_average",
    "weighted_mean",
    "ensure_rng",
    "spawn_rng",
    "stable_seed",
    "dump_json",
    "load_json",
    "to_jsonable",
]
