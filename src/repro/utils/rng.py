"""Deterministic random-number helpers.

Every stochastic component of the library (workload generators, the training
substrate, noise injection in evaluation) accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
experiments reproducible: the same seed always regenerates the same synthetic
"videos", the same training noise and therefore the same benchmark tables.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, a
    :class:`numpy.random.SeedSequence` or an existing generator (returned
    unchanged, so state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, *, jump: int = 1) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used by workload generators to give each camera stream its own stream of
    randomness so that adding a stream does not perturb the others.
    """
    if jump < 1:
        raise ValueError("jump must be >= 1")
    seeds = rng.integers(0, 2**63 - 1, size=jump)
    return np.random.default_rng(int(seeds[-1]))


def stable_seed(*parts: object, base: int = 0) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable parts.

    Unlike Python's built-in ``hash`` this does not depend on
    ``PYTHONHASHSEED``: the string representation of the parts is folded with
    a simple FNV-1a style mix, which is stable across processes.
    """
    acc = 0xCBF29CE484222325 ^ (base & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
