"""Fleet rollout: many edge sites, stream admission, migration and failures.

A four-site fleet (two well-provisioned metro sites, two smaller
neighbourhood sites) serves 20 mixed camera streams, each site running the
paper's thief scheduler locally while the fleet controller owns stream
placement globally.  Mid-run the fleet is hit by the full scenario suite:

* window 2 — a flash crowd of six traffic cameras comes online,
* window 3 — site-1's WAN backhaul degrades to a quarter of its uplink,
* window 4 — site-0 fails outright; its streams are evacuated over the WAN
  (paying checkpoint + profile transfer) and it recovers at window 6.

The demo prints the per-window fleet state, then compares the three
admission policies on the same workload and scenario.

Run with:  PYTHONPATH=src python examples/fleet_rollout.py
"""

from __future__ import annotations

from repro.fleet import (
    FlashCrowd,
    FleetSimulator,
    Scenario,
    SiteFailure,
    WanDegradation,
    make_fleet,
)

NUM_SITES = 4
STREAMS_PER_SITE = 5
NUM_WINDOWS = 8


def scenario() -> Scenario:
    return Scenario(
        events=[
            FlashCrowd(window=2, num_streams=6, dataset="urban_traffic"),
            WanDegradation(window=3, site="site-1", uplink_factor=0.25, until_window=6),
            SiteFailure(window=4, site="site-0", recovery_window=6),
        ]
    )


def run_fleet(admission: str):
    controller = make_fleet(
        NUM_SITES,
        STREAMS_PER_SITE,
        dataset="cityscapes",
        gpus_per_site=2,
        admission=admission,
        seed=0,
    )
    return FleetSimulator(controller, scenario()).run(NUM_WINDOWS)


def main() -> None:
    result = run_fleet("accuracy_greedy")

    print(
        f"{NUM_SITES} sites x {STREAMS_PER_SITE} streams, {NUM_WINDOWS} windows of 200 s, "
        f"admission = {result.admission_policy}\n"
    )
    print(
        f"{'window':<7} {'streams':>7} {'accuracy':>9} {'migrations':>11} "
        f"{'failed':>10}  per-site streams"
    )
    for window in result.windows:
        sites = ", ".join(
            f"{name}:{stats.num_streams}" for name, stats in sorted(window.site_stats.items())
        )
        failed = ",".join(window.failed_sites) or "-"
        print(
            f"{window.window_index:<7} {window.num_streams:>7} "
            f"{window.mean_accuracy:>9.3f} {len(window.migrations):>11} "
            f"{failed:>10}  {sites}"
        )

    summary = result.summary()
    print(
        f"\nfleet mean accuracy {summary['mean_accuracy']:.3f} | "
        f"p10 worst-stream {summary['p10_worst_stream_accuracy']:.3f} | "
        f"{summary['migration_count']} migrations "
        f"({summary['migrations_by_reason']}) costing "
        f"{summary['total_migration_seconds']:.0f} s of WAN transfer | "
        f"quantisation loss {summary['mean_allocation_loss']:.2f} GPU/window"
    )

    print("\nAdmission-policy comparison (same workload and scenario):")
    print(f"{'policy':<18} {'mean acc':>9} {'p10 worst':>10} {'migrations':>11}")
    for admission in ("least_loaded", "accuracy_greedy", "random"):
        comparison = run_fleet(admission)
        print(
            f"{comparison.admission_policy:<18} {comparison.mean_accuracy:>9.3f} "
            f"{comparison.worst_stream_accuracy(10.0):>10.3f} "
            f"{comparison.migration_count:>11}"
        )


if __name__ == "__main__":
    main()
