"""Fleet rollout on the event calendar: heterogeneous windows, mid-window events.

A four-site fleet where the two metro sites retrain on 200 s windows while
the two smaller neighbourhood sites run faster 150 s windows — impossible
under the old shared window index, natural on the event calendar: every site
gets its own ``WindowBoundary`` events and the scenario is time-indexed in
absolute seconds, so events fire mid-window:

* t=310 s — a flash crowd of six traffic cameras comes online (mid-window
  for every site),
* t=480 s — site-1's WAN backhaul degrades to a quarter of its uplink until
  t=1000 s,
* t=650 s — site-0 fails outright; its streams are evacuated over the WAN
  (paying checkpoint + profile transfer mid-window, so the next window at
  the destination only pays the transfer time still remaining) and it
  recovers at t=1050 s.

A 75 s control tick runs admission/rebalancing on its own cadence, decoupled
from window boundaries — the async control plane.  The demo prints the
per-cycle fleet state, the full event trace, and a comparison of the three
admission policies on the same workload and scenario.

Run with:  PYTHONPATH=src python examples/fleet_rollout.py
"""

from __future__ import annotations

from repro.fleet import (
    FlashCrowd,
    FleetSimulator,
    MigrationStarted,
    Scenario,
    SiteFailure,
    WanDegradation,
    WindowBoundary,
    make_fleet,
)

NUM_SITES = 4
STREAMS_PER_SITE = 5
#: Metro sites on 200 s windows, neighbourhood sites on 150 s (cycled).
WINDOW_DURATIONS = (200.0, 150.0)
HORIZON_SECONDS = 1600.0
CONTROL_INTERVAL = 75.0


def scenario() -> Scenario:
    return Scenario(
        events=[
            FlashCrowd(at_seconds=310.0, num_streams=6, dataset="urban_traffic"),
            WanDegradation(
                at_seconds=480.0, site="site-1", uplink_factor=0.25, until_at=1000.0
            ),
            SiteFailure(at_seconds=650.0, site="site-0", recovery_at=1050.0),
        ]
    )


def build_simulator(admission: str) -> FleetSimulator:
    controller = make_fleet(
        NUM_SITES,
        STREAMS_PER_SITE,
        dataset="cityscapes",
        gpus_per_site=2,
        window_duration=WINDOW_DURATIONS,
        admission=admission,
        seed=0,
    )
    return FleetSimulator(controller, scenario(), control_interval=CONTROL_INTERVAL)


def main() -> None:
    simulator = build_simulator("accuracy_greedy")
    result = simulator.run_until(HORIZON_SECONDS)

    durations = " / ".join(
        f"{site.name}:{site.spec.window_duration:.0f}s"
        for site in simulator.controller.sites
    )
    print(
        f"{NUM_SITES} sites x {STREAMS_PER_SITE} streams over {HORIZON_SECONDS:.0f} s, "
        f"windows {durations},\ncontrol tick every {CONTROL_INTERVAL:.0f} s, "
        f"admission = {result.admission_policy}\n"
    )
    print(
        f"{'cycle':<6} {'t(s)':>6} {'streams':>7} {'accuracy':>9} {'migrations':>11} "
        f"{'failed':>10}  per-site streams"
    )
    for window in result.windows:
        sites = ", ".join(
            f"{name}:{stats.num_streams}" for name, stats in sorted(window.site_stats.items())
        )
        failed = ",".join(window.failed_sites) or "-"
        print(
            f"{window.window_index:<6} {window.start_seconds:>6.0f} "
            f"{window.num_streams:>7} {window.mean_accuracy:>9.3f} "
            f"{len(window.migrations):>11} {failed:>10}  {sites}"
        )

    boundary_times = {
        event.time for event in simulator.event_trace if isinstance(event, WindowBoundary)
    }
    mid_window = [
        marker
        for marker in simulator.event_trace
        if isinstance(marker, MigrationStarted) and marker.time not in boundary_times
    ]
    summary = result.summary()
    print(
        f"\nfleet mean accuracy {summary['mean_accuracy']:.3f} | "
        f"p10 worst-stream {summary['p10_worst_stream_accuracy']:.3f} | "
        f"{summary['migration_count']} migrations, {len(mid_window)} started "
        f"mid-window ({summary['migrations_by_reason']}) costing "
        f"{summary['total_migration_seconds']:.0f} s of WAN transfer | "
        f"quantisation loss {summary['mean_allocation_loss']:.2f} GPU/window"
    )

    print(f"\nEvent trace ({len(simulator.event_trace)} events):")
    for event in simulator.event_trace:
        print(f"  {event.describe()}")

    print("\nAdmission-policy comparison (same workload and scenario):")
    print(f"{'policy':<18} {'mean acc':>9} {'p10 worst':>10} {'migrations':>11}")
    for admission in ("least_loaded", "accuracy_greedy", "random"):
        comparison = build_simulator(admission).run_until(HORIZON_SECONDS)
        print(
            f"{comparison.admission_policy:<18} {comparison.mean_accuracy:>9.3f} "
            f"{comparison.worst_stream_accuracy(10.0):>10.3f} "
            f"{comparison.migration_count:>11}"
        )

    # ----------------------------------------------------- profile sharing
    # Rerun the same fleet with cross-site profile sharing enabled: every
    # site pushes its micro-profiled curves into a fleet-wide store (as
    # ProfilePush events paying real WAN uplink time), and the flash crowd's
    # streams warm-start from their neighbours' curves instead of profiling
    # the full configuration grid.
    controller = make_fleet(
        NUM_SITES,
        STREAMS_PER_SITE,
        dataset="cityscapes",
        gpus_per_site=2,
        window_duration=WINDOW_DURATIONS,
        admission="accuracy_greedy",
        seed=0,
        profile_sharing=True,
    )
    shared = FleetSimulator(
        controller, scenario(), control_interval=CONTROL_INTERVAL
    ).run_until(HORIZON_SECONDS)
    sharing_summary = shared.summary()
    store = controller.profile_sharing.store
    print(
        f"\nWith cross-site profile sharing: "
        f"{store.num_pushes} profile pushes over the WAN "
        f"({len(store)} (dataset, drift-regime) keys), "
        f"micro-profiling cost {sharing_summary['profiling_gpu_seconds']:.0f} GPU-s, "
        f"warm starts saved {sharing_summary['profiling_gpu_seconds_saved']:.0f} GPU-s "
        f"| mean accuracy {sharing_summary['mean_accuracy']:.3f}"
    )

    # -------------------------------------------------- mid-window preemption
    # Event-driven site internals: a three-site preemptive fleet whose
    # site-0 fails ten seconds into window 1 — while its retrainings are
    # still in flight.  The evacuation cancels them mid-window (the streams
    # keep their stale models) and the reclaimed GPU-seconds accelerate
    # nothing on the dead site, but the trace shows the full event grammar:
    # plan at the boundary, InferenceReconfigured(retraining_cancelled) at
    # the failure, RetrainingComplete settles on the survivors, and stale
    # rescheduled completions popping as silent no-ops.
    preemptive = make_fleet(
        3, 4, dataset="cityscapes", gpus_per_site=2, seed=0, preemptive_sites=True
    )
    outage = Scenario(
        events=[SiteFailure(at_seconds=210.0, site="site-0", recovery_at=800.0)]
    )
    preemptive_sim = FleetSimulator(preemptive, outage)
    preemptive_result = preemptive_sim.run_until(1000.0)
    preemptive_summary = preemptive_result.summary()
    print(
        f"\nPreemptive sites (failure at t=210 s, mid-window): "
        f"{preemptive_summary['retrainings_cancelled']} in-flight retrainings "
        f"cancelled, {preemptive_summary['reclaimed_gpu_seconds']:.0f} GPU-s "
        f"reclaimed | mean accuracy {preemptive_summary['mean_accuracy']:.3f}"
    )
    print("Preemption event trace around the failure (t in [200, 270] s):")
    for event in preemptive_sim.event_trace:
        if 200.0 <= event.time <= 270.0:
            print(f"  {event.describe()}")

    # ---------------------------------------------------- Prometheus export
    # Every summary key of the preemption run, rendered as the Prometheus
    # text format by the telemetry plane (scripts/export_metrics.py is the
    # standalone CLI for this exposition).
    print("\nPrometheus exposition of the preemption run:")
    for line in preemptive_sim.telemetry.export_text(preemptive_result).splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
