"""Dashcam data drift on the real training substrate (testbed mode).

This example runs the *full* Ekya pipeline end-to-end on the numpy edge-DNN
substrate rather than the trace-driven simulator: it generates a drifting
Waymo-like dashcam stream, shows how a train-once compressed model loses
accuracy window after window, then lets Ekya's micro-profiler estimate the
retraining configurations and the continual learner recover the accuracy with
exemplar replay.

It mirrors the motivation of Figure 2 in the paper: continuous retraining is
what keeps a compressed edge model usable under drift.

Run with:  python examples/dashcam_drift.py
"""

from __future__ import annotations

from repro.configs import RetrainingConfig, default_retraining_grid
from repro.core import MicroProfiler, MicroProfilerSettings
from repro.datasets import make_stream
from repro.models import EdgeModelSpec, ExemplarReplayLearner, Trainer, create_edge_model

NUM_WINDOWS = 8
SEED = 11


def main() -> None:
    stream = make_stream(
        "waymo", 0, seed=SEED, samples_per_window=250, eval_samples_per_window=150
    )
    spec = EdgeModelSpec(
        feature_dim=stream.feature_dim, num_classes=stream.taxonomy.num_classes
    )
    trainer = Trainer(seed=SEED)
    base_config = RetrainingConfig(epochs=15)

    # A compressed model trained once on the first window (deployment time).
    static_model = create_edge_model(spec, seed=SEED)
    trainer.train(static_model, stream.window(0), base_config)

    # The continuously retrained copy managed by Ekya.
    continual_model = static_model.clone()
    learner = ExemplarReplayLearner(continual_model, seed=SEED)

    profiler = MicroProfiler(
        MicroProfilerSettings(data_fraction=0.2, profiling_epochs=5), seed=SEED
    )
    candidate_configs = default_retraining_grid(
        epochs=(5, 15, 30), layers_trained=(0.5, 1.0), data_fractions=(0.5, 1.0)
    )

    print("window  drift   static-model  continual-model  chosen config (epochs/data/layers)")
    for window_index in range(1, NUM_WINDOWS):
        window = stream.window(window_index)
        drift = stream.drift_magnitude(0, window_index)
        static_accuracy = trainer.evaluate(static_model, window)

        # Micro-profile the candidate configurations on this window and pick
        # the cheapest one within 2 points of the best estimate.
        profile = profiler.profile_window(learner.model, window, candidate_configs)
        best = max(est.post_retraining_accuracy for est in profile.estimates.values())
        affordable = [
            est
            for est in profile.estimates.values()
            if est.post_retraining_accuracy >= best - 0.02
        ]
        chosen = min(affordable, key=lambda est: est.gpu_seconds).config

        learner.retrain(window, chosen)
        continual_accuracy = learner.evaluate(window)
        print(
            f"{window_index:>6}  {drift:5.2f}   {static_accuracy:12.3f}  "
            f"{continual_accuracy:15.3f}  "
            f"{chosen.epochs}/{chosen.data_fraction}/{chosen.layers_trained_fraction}"
        )

    print(
        "\nThe static model degrades as the dashcam content drifts; the"
        " continuously retrained model tracks it."
    )


if __name__ == "__main__":
    main()
