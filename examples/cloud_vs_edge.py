"""Should you retrain at the edge or in the cloud?

Reproduces the §6.5 / Table 4 analysis for a deployment you can parameterise:
a fleet of cameras behind a constrained WAN link (4G cellular or satellite).
For each link it reports when the retrained models would actually arrive back
at the edge, the resulting accuracy, and how much more bandwidth would be
needed for the cloud approach to match Ekya — alongside the privacy note that
the cloud path ships video off-site at all.

Run with:  python examples/cloud_vs_edge.py
"""

from __future__ import annotations

from repro.cluster import STANDARD_LINKS
from repro.configs import ConfigurationSpace
from repro.core import CloudRetrainingPolicy, OracleProfileSource
from repro.profiles import AnalyticDynamics
from repro.simulation import compare_policies

NUM_STREAMS = 8
NUM_GPUS = 4
NUM_WINDOWS = 5
WINDOW_SECONDS = 400.0
SEED = 0


def main() -> None:
    results = compare_policies(
        ["ekya", "cloud_cellular", "cloud_satellite", "cloud_cellular_2x"],
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        num_gpus=NUM_GPUS,
        num_windows=NUM_WINDOWS,
        window_duration=WINDOW_SECONDS,
        seed=SEED,
    )
    ekya_accuracy = results["Ekya"].mean_accuracy

    print(
        f"{NUM_STREAMS} cameras, {NUM_GPUS} edge GPUs, {WINDOW_SECONDS:.0f} s retraining windows\n"
    )
    print(f"Ekya (all retraining stays on the edge): accuracy {ekya_accuracy:.3f}\n")

    space = ConfigurationSpace.small()
    for link_name, link in STANDARD_LINKS.items():
        label = f"cloud ({link_name})"
        accuracy = results[label].mean_accuracy
        policy = CloudRetrainingPolicy(
            OracleProfileSource(AnalyticDynamics(seed=SEED)), link, space
        )
        arrivals = policy.model_arrival_times(NUM_STREAMS, WINDOW_SECONDS)
        in_time = sum(1 for arrival in arrivals if arrival <= WINDOW_SECONDS)
        extra = policy.bandwidth_multiple_to_finish_in(
            WINDOW_SECONDS / 4.0, num_streams=NUM_STREAMS, window_seconds=WINDOW_SECONDS
        )
        print(f"{label}:")
        print(f"  uplink {link.uplink_mbps} Mbps / downlink {link.downlink_mbps} Mbps")
        print(
            f"  first/last model arrives after {arrivals[0]:.0f} s / {arrivals[-1]:.0f} s; "
            f"{in_time}/{NUM_STREAMS} models arrive within the window"
        )
        print(f"  accuracy {accuracy:.3f} ({accuracy - ekya_accuracy:+.3f} vs Ekya)")
        print(
            "  to match Ekya it would need roughly "
            f"{extra['uplink_multiple']:.1f}x the uplink and "
            f"{extra['downlink_multiple']:.1f}x the downlink\n"
        )

    print(
        "Beyond accuracy and bandwidth, the cloud path uploads raw video frames"
        " off-site, which many deployments (e.g. EU traffic cameras) cannot do."
    )


if __name__ == "__main__":
    main()
