"""City-scale scenario: many traffic/building cameras on one edge box.

An edge server at a city depot serves a mix of static building cameras and
traffic-intersection cameras (the paper's "Urban Building" / "Urban Traffic"
24-hour workloads).  This example sweeps the number of provisioned GPUs and
reports, for Ekya and the strongest uniform baseline:

* the inference accuracy averaged over retraining windows,
* the per-stream retraining activity (which cameras Ekya chose to retrain),
* the capacity — how many cameras can be served at an accuracy target — and
  the GPU multiple the baseline would need to match Ekya.

Run with:  python examples/traffic_intersections.py
"""

from __future__ import annotations

from repro.cluster import EdgeServer, EdgeServerSpec
from repro.core import EkyaPolicy, OracleProfileSource, UniformPolicy
from repro.datasets import mixed_workload
from repro.profiles import AnalyticDynamics
from repro.simulation import (
    Simulator,
    gpus_needed_for_accuracy,
    make_config_space,
)

STREAMS_PER_KIND = 4  # 4 building cameras + 4 traffic cameras
NUM_WINDOWS = 6
GPU_COUNTS = (1, 2, 4)
SEED = 7


def run_policy(policy_name: str, num_gpus: int):
    streams = mixed_workload(["urban_building", "urban_traffic"], STREAMS_PER_KIND, seed=SEED)
    spec = EdgeServerSpec(num_gpus=num_gpus, delta=0.1, window_duration=200.0)
    server = EdgeServer(spec, streams)
    dynamics = AnalyticDynamics(seed=SEED)
    source = OracleProfileSource(dynamics, accuracy_error_std=0.05, seed=SEED)
    space = make_config_space()
    if policy_name == "ekya":
        policy = EkyaPolicy(source, space, steal_quantum=spec.delta, name="Ekya")
    else:
        policy = UniformPolicy(source, space, inference_share=0.5)
    simulator = Simulator(server, dynamics, policy)
    return simulator.run(NUM_WINDOWS)


def main() -> None:
    accuracy_by_gpus = {"ekya": {}, "uniform": {}}
    for num_gpus in GPU_COUNTS:
        for policy_name in ("ekya", "uniform"):
            result = run_policy(policy_name, num_gpus)
            accuracy_by_gpus[policy_name][num_gpus] = result.mean_accuracy
            if policy_name == "ekya" and num_gpus == GPU_COUNTS[-1]:
                ekya_detail = result

    print("Accuracy vs provisioned GPUs (8 mixed urban cameras):")
    print(f"{'GPUs':>6} {'Ekya':>8} {'Uniform (C2, 50%)':>20}")
    for num_gpus in GPU_COUNTS:
        print(
            f"{num_gpus:>6} {accuracy_by_gpus['ekya'][num_gpus]:>8.3f} "
            f"{accuracy_by_gpus['uniform'][num_gpus]:>20.3f}"
        )

    target = accuracy_by_gpus["ekya"][GPU_COUNTS[0]]
    needed = gpus_needed_for_accuracy(accuracy_by_gpus["uniform"], target)
    if needed is None:
        print(
            f"\nThe uniform baseline cannot match Ekya's {GPU_COUNTS[0]}-GPU accuracy "
            f"({target:.3f}) even with {GPU_COUNTS[-1]} GPUs."
        )
    else:
        print(
            f"\nTo match Ekya's {GPU_COUNTS[0]}-GPU accuracy ({target:.3f}) the uniform "
            f"baseline needs {needed} GPUs ({needed / GPU_COUNTS[0]:.0f}x more)."
        )

    print(f"\nPer-camera view at {GPU_COUNTS[-1]} GPUs under Ekya:")
    print(f"{'camera':<22} {'mean accuracy':>14} {'windows retrained':>18}")
    for name, accuracy in sorted(ekya_detail.per_stream_accuracy.items()):
        retrained = sum(
            1 for row in ekya_detail.allocation_timeline(name) if row["retrained"]
        )
        print(f"{name:<22} {accuracy:>14.3f} {retrained:>18d}")


if __name__ == "__main__":
    main()
