"""Quickstart: run Ekya against a baseline on a small edge deployment.

This example uses the trace-driven simulator (the fast path): four synthetic
Cityscapes-like camera streams share one edge GPU for six retraining windows,
scheduled either by Ekya (thief scheduler + micro-profiled estimates) or by a
static uniform baseline.  It prints the per-window and overall inference
accuracy of both, plus how often each stream's model was retrained.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.simulation import compare_policies, compare_to_baselines

NUM_STREAMS = 4
NUM_GPUS = 1
NUM_WINDOWS = 6


def main() -> None:
    results = compare_policies(
        ["ekya", "uniform_c2_50", "no_retraining"],
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        num_gpus=NUM_GPUS,
        num_windows=NUM_WINDOWS,
        seed=0,
    )

    print(f"{NUM_STREAMS} streams on {NUM_GPUS} GPU, {NUM_WINDOWS} windows of 200 s\n")
    print(f"{'policy':<28} {'mean accuracy':>14} {'retrainings':>12}")
    for name, result in results.items():
        print(f"{name:<28} {result.mean_accuracy:>14.3f} {result.total_retrainings:>12d}")

    print("\nPer-window mean accuracy:")
    header = "window    " + "  ".join(f"{name[:12]:>12}" for name in results)
    print(header)
    for window_index in range(NUM_WINDOWS):
        row = [f"{result.windows[window_index].mean_accuracy:>12.3f}" for result in results.values()]
        print(f"{window_index:<10}" + "  ".join(row))

    ekya = results["Ekya"].mean_accuracy
    baselines = {name: r.mean_accuracy for name, r in results.items() if name != "Ekya"}
    comparison = compare_to_baselines(ekya, baselines)
    print(
        f"\nEkya vs best baseline ({comparison.best_baseline_name}): "
        f"+{comparison.absolute_gain:.3f} absolute, "
        f"+{comparison.relative_gain * 100:.1f}% relative"
    )


if __name__ == "__main__":
    main()
