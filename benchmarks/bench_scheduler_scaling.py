"""Scheduler scaling beyond the paper: 10 → 100 streams on one edge box.

The ROADMAP north-star pushes the reproduction towards much larger stream
counts than §6.3's ten.  This benchmark sweeps the thief scheduler from the
paper's operating point up to 100 streams (8 GPUs, 18 retraining configs,
Δ = 0.1), records the decision-latency trajectory, and emits the results to
``BENCH_scheduler.json`` so successive runs accumulate a timestamped record
that ``run_benchmarks.py`` gates regressions against.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from scheduler_bench_core import (
    WINDOW_SECONDS,
    emit_bench_json,
    measure_operating_point,
    measure_scaling,
)

STREAM_COUNTS = (10, 25, 50, 100)


@pytest.mark.benchmark(group="scheduler-scaling")
def test_scheduler_scaling_10_to_100_streams(benchmark):
    rows = benchmark.pedantic(measure_scaling, args=(STREAM_COUNTS,), rounds=1, iterations=1)

    table = [
        [
            row["num_streams"],
            f"{row['scheduler_runtime_seconds'] * 1000:.1f} ms",
            f"{row['window_fraction'] * 100:.3f} %",
            row["iterations"],
            row["pick_configs_evaluations"],
            f"{row['estimated_average_accuracy']:.4f}",
        ]
        for row in rows
    ]
    print_table(
        "scheduler scaling (8 GPUs, 18 configs, delta=0.1)",
        table,
        header=["streams", "runtime", "window %", "candidates", "evaluations", "est. accuracy"],
    )

    path = emit_bench_json(measure_operating_point(with_reference=False), rows)
    print(f"trajectory appended to {path}")

    for row in rows:
        # Even at 10x the paper's stream count the decision must stay a
        # small fraction of the retraining window.
        assert row["scheduler_runtime_seconds"] < 0.05 * WINDOW_SECONDS
    # The vectorised hot path's evaluation count must grow far slower than
    # the candidate count: at 100 streams the thief weighs tens of thousands
    # of candidate steals, which would each have been a full PickConfigs
    # sweep in the seed implementation.
    largest = rows[-1]
    assert largest["pick_configs_evaluations"] < largest["iterations"] / 10
