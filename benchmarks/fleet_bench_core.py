"""Shared measurement core for the fleet-orchestration benchmarks.

Used by ``bench_fleet_scaling.py`` and the ``run_benchmarks.py`` entry point.
Two measurements:

* :func:`measure_fleet_scaling` — the site sweep (1 → 16 sites at 25
  streams/site, i.e. up to 400 concurrent streams fleet-wide), recording
  wall-clock, fleet mean accuracy, the p10 worst-stream accuracy, migrations
  and quantisation loss for every point.
* :func:`measure_failure_scenario` — a fixed chaos run (flash crowd, site
  failure with forced evacuation + recovery, WAN degradation) whose accuracy
  trajectory documents the migration/recovery behaviour.
* :func:`measure_heterogeneous_fleet` — the event-calendar capability run:
  per-site window durations advanced through
  :meth:`~repro.fleet.simulator.FleetSimulator.run_until` with a mid-window
  time-indexed failure (recorded in the trajectory, not gated).
* :func:`measure_profile_sharing` — a flash-crowd run with cross-site
  profile sharing enabled, recording the micro-profiling GPU-seconds the
  fleet store's warm starts saved (trajectory only, not gated).

All are deterministic in the seed except for wall-clock, so the committed
baseline in ``benchmarks/baselines/fleet_baseline.json`` can gate accuracy
exactly and runtime by ratio; :func:`check_quick_fleet_parity` additionally
asserts — in CI's ``--quick`` smoke mode — that a sharing-off fleet still
reproduces the committed baseline's deterministic metrics bit for bit.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_io import append_trajectory, load_json_if_exists

from repro.fleet import (
    FlashCrowd,
    FleetSimulator,
    Scenario,
    SiteFailure,
    WanDegradation,
    make_fleet,
)

#: The fleet sweep's shape: 25 streams/site on 4-GPU sites, 3 shared windows.
SITE_COUNTS = (1, 2, 4, 8, 16)
STREAMS_PER_SITE = 25
GPUS_PER_SITE = 4
NUM_WINDOWS = 3
SEED = 0

#: Default location of the emitted benchmark trajectory.
BENCH_FLEET_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"
FLEET_BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "fleet_baseline.json"


def build_fleet_simulator(
    num_sites: int,
    streams_per_site: int = STREAMS_PER_SITE,
    *,
    scenario: Optional[Scenario] = None,
    admission: str = "least_loaded",
    seed: int = SEED,
) -> FleetSimulator:
    controller = make_fleet(
        num_sites,
        streams_per_site,
        gpus_per_site=GPUS_PER_SITE,
        admission=admission,
        seed=seed,
    )
    return FleetSimulator(controller, scenario)


def measure_fleet_scaling(site_counts: Sequence[int] = SITE_COUNTS) -> List[Dict]:
    """Wall-clock / accuracy trajectory for a growing number of sites."""
    rows = []
    for num_sites in site_counts:
        simulator = build_fleet_simulator(num_sites)
        result = simulator.run(NUM_WINDOWS)
        wall = result.wall_clock_seconds
        summary = result.summary()
        rows.append(
            {
                "num_sites": num_sites,
                "num_streams": num_sites * STREAMS_PER_SITE,
                "num_windows": NUM_WINDOWS,
                "wall_clock_seconds": wall,
                "seconds_per_window": wall / NUM_WINDOWS,
                "mean_accuracy": summary["mean_accuracy"],
                "p10_worst_stream_accuracy": summary["p10_worst_stream_accuracy"],
                "migration_count": summary["migration_count"],
                "mean_utilization": summary["mean_utilization"],
                "mean_allocation_loss": summary["mean_allocation_loss"],
            }
        )
    return rows


def measure_batched_fleet_planning(
    site_counts: Sequence[int] = (1, 4, 16),
) -> Dict:
    """Per-site planning cost with cohort batching on vs the scalar path.

    Every site's ``WindowBoundary`` fires at the same instant in this sweep,
    so with ``make_fleet(batched_planning=True)`` the whole fleet plans in
    one stacked solve per cycle.  The point being demonstrated: the mean
    planning cost *per site-window* stays roughly flat as the cohort widens,
    where the scalar path pays per-site numpy dispatch overhead at every
    site.  Also checks that the deterministic summary fields stay
    bit-identical between the two paths (``summaries_identical``).
    """
    rows = []
    for num_sites in site_counts:
        per_path = {}
        summaries = {}
        for batched in (False, True):
            controller = make_fleet(
                num_sites,
                STREAMS_PER_SITE,
                gpus_per_site=GPUS_PER_SITE,
                seed=SEED,
                batched_planning=batched,
            )
            result = FleetSimulator(controller).run(NUM_WINDOWS)
            planning = 0.0
            site_windows = 0
            for window in result.windows:
                for site_result in window.site_results.values():
                    planning += site_result.schedule.scheduler_runtime_seconds
                    site_windows += 1
            per_path[batched] = planning / max(1, site_windows)
            summaries[batched] = result.summary()
        identical = all(
            summaries[False][field] == summaries[True][field]
            for field in QUICK_PARITY_FIELDS
        )
        rows.append(
            {
                "num_sites": num_sites,
                "num_streams": num_sites * STREAMS_PER_SITE,
                "num_windows": NUM_WINDOWS,
                "scalar_per_site_planning_seconds": per_path[False],
                "batched_per_site_planning_seconds": per_path[True],
                "planning_speedup": (
                    per_path[False] / per_path[True] if per_path[True] else 0.0
                ),
                "summaries_identical": identical,
            }
        )
    return {"rows": rows}


def failure_scenario() -> Scenario:
    """The documented chaos run: burst, failure + recovery, WAN degradation."""
    return Scenario(
        events=[
            FlashCrowd(window=1, num_streams=8, dataset="urban_traffic"),
            WanDegradation(window=2, site="site-0", uplink_factor=0.25, until_window=5),
            SiteFailure(window=3, site="site-1", recovery_window=5),
        ]
    )


def measure_failure_scenario(
    *, num_sites: int = 4, streams_per_site: int = 10, num_windows: int = 7
) -> Dict:
    """Accuracy trajectory of the chaos run, including the evacuation dip."""
    simulator = build_fleet_simulator(
        num_sites, streams_per_site, scenario=failure_scenario()
    )
    result = simulator.run(num_windows)
    evacuated = sorted(
        {
            event.stream_name
            for window in result.windows
            for event in window.migrations
            if event.reason == "evacuation"
        }
    )
    per_window_evacuee_accuracy = []
    for window in result.windows:
        values = [
            window.stream_outcomes[name].effective_average_accuracy
            for name in evacuated
            if name in window.stream_outcomes
        ]
        per_window_evacuee_accuracy.append(
            sum(values) / len(values) if values else None
        )
    summary = result.summary()
    summary.update(
        {
            "per_window_mean_accuracy": [w.mean_accuracy for w in result.windows],
            "evacuated_streams": evacuated,
            "per_window_evacuee_accuracy": per_window_evacuee_accuracy,
        }
    )
    return summary


def measure_heterogeneous_fleet(
    *,
    num_sites: int = 4,
    streams_per_site: int = 10,
    window_durations: Sequence[float] = (200.0, 150.0),
    horizon_seconds: float = 1200.0,
) -> Dict:
    """A per-site-window fleet on one calendar, with a mid-window failure.

    Exercises the event-calendar capabilities the shared-window engine could
    not express: heterogeneous ``window_duration`` s and a time-indexed
    ``SiteFailure`` firing between boundaries.  Recorded in the trajectory
    for documentation; not part of the regression gate.
    """
    controller = make_fleet(
        num_sites,
        streams_per_site,
        gpus_per_site=GPUS_PER_SITE,
        window_duration=window_durations,
        seed=SEED,
    )
    scenario = Scenario(
        events=[SiteFailure(at_seconds=330.0, site="site-0", recovery_at=700.0)]
    )
    simulator = FleetSimulator(controller, scenario)
    result = simulator.run_until(horizon_seconds)
    summary = result.summary()
    summary.update(
        {
            "window_durations": list(window_durations),
            "horizon_seconds": horizon_seconds,
            "num_cycles": len(result.windows),
            "cycle_starts": [w.start_seconds for w in result.windows],
            "events_processed": len(simulator.event_trace),
        }
    )
    return summary


def measure_profile_sharing(
    *, num_sites: int = 2, streams_per_site: int = 6, num_windows: int = 4
) -> Dict:
    """Saved micro-profiling cost of fleet-wide profile sharing.

    The same flash-crowd workload runs twice — sharing off (the default
    engine) and sharing on — and the entry records the profiling
    GPU-seconds the warm starts saved, plus both runs' accuracy for
    context.  Documentation only; the regression gates stay sharing-off.
    """
    scenario = Scenario(
        events=[FlashCrowd(window=2, num_streams=4, dataset="cityscapes")]
    )

    def run(profile_sharing: bool):
        controller = make_fleet(
            num_sites,
            streams_per_site,
            gpus_per_site=GPUS_PER_SITE,
            seed=SEED,
            profile_sharing=profile_sharing,
        )
        simulator = FleetSimulator(controller, scenario)
        return simulator.run(num_windows)

    off, on = run(False), run(True)
    on_summary = on.summary()
    return {
        "num_sites": num_sites,
        "streams_per_site": streams_per_site,
        "num_windows": num_windows,
        "profiling_gpu_seconds": on_summary["profiling_gpu_seconds"],
        "profiling_gpu_seconds_saved": on_summary["profiling_gpu_seconds_saved"],
        "per_window_saved": [w.profiling_gpu_seconds_saved for w in on.windows],
        "mean_accuracy_sharing_on": on.mean_accuracy,
        "mean_accuracy_sharing_off": off.mean_accuracy,
    }


def emit_fleet_bench_json(
    scaling: List[Dict],
    scenario: Optional[Dict] = None,
    path: Optional[Path] = None,
    heterogeneous: Optional[Dict] = None,
    profile_sharing: Optional[Dict] = None,
    telemetry: Optional[Dict] = None,
    policy: Optional[Dict] = None,
    batched_planning: Optional[Dict] = None,
) -> Path:
    """Append one timestamped entry to the ``BENCH_fleet.json`` trajectory."""
    entry: Dict = {"scaling": scaling}
    if scenario is not None:
        entry["failure_scenario"] = scenario
    if heterogeneous is not None:
        entry["heterogeneous"] = heterogeneous
    if profile_sharing is not None:
        entry["profile_sharing"] = profile_sharing
    if batched_planning is not None:
        entry["batched_planning"] = batched_planning
    if telemetry is not None:
        entry["telemetry"] = telemetry
    if policy is not None:
        entry["policy"] = policy
    return append_trajectory(path if path is not None else BENCH_FLEET_JSON_PATH, entry)


def load_fleet_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    return load_json_if_exists(path if path is not None else FLEET_BASELINE_PATH)


#: Deterministic per-row metrics the quick parity gate compares bit for bit.
QUICK_PARITY_FIELDS = (
    "mean_accuracy",
    "p10_worst_stream_accuracy",
    "migration_count",
    "mean_utilization",
    "mean_allocation_loss",
)


def check_quick_fleet_parity(baseline: Dict, *, num_sites: int = 1) -> List[str]:
    """Exact sharing-off parity against the committed fleet baseline.

    Cross-site profile sharing must be strictly opt-in: with the default
    ``make_fleet(profile_sharing=False)`` the fleet engine has to reproduce
    the committed ``fleet_baseline.json`` metrics *bit for bit* (they are
    deterministic in the seed).  This runs the baseline's smallest site
    count — cheap enough for CI's ``--quick`` smoke mode — and compares
    every deterministic field with ``==``, no tolerance.
    """
    rows = {row["num_sites"]: row for row in baseline.get("scaling", [])}
    base = rows.get(num_sites)
    if base is None:
        return [
            f"committed fleet baseline has no {num_sites}-site row to check "
            f"sharing-off parity against"
        ]
    simulator = build_fleet_simulator(num_sites)
    summary = simulator.run(NUM_WINDOWS).summary()
    failures = []
    for field in QUICK_PARITY_FIELDS:
        if summary[field] != base[field]:
            failures.append(
                f"sharing-off fleet {field} at {num_sites} site(s) is "
                f"{summary[field]!r}, committed baseline says {base[field]!r} "
                f"(must match exactly)"
            )
    return failures


def check_fleet_against_baseline(
    scaling: List[Dict],
    baseline: Dict,
    *,
    regression_factor: float = 2.0,
    compare_wall_clock: bool = True,
) -> List[str]:
    """Human-readable regression messages against the committed baseline.

    Accuracy metrics are deterministic in the seed, so they are gated
    exactly; wall-clock is machine-dependent, gated by ratio at the largest
    common site count and skippable (``compare_wall_clock=False``) on CI
    hardware that is not comparable to the machine the baseline was
    recorded on.
    """
    failures: List[str] = []
    base_rows = {row["num_sites"]: row for row in baseline.get("scaling", [])}
    rows = {row["num_sites"]: row for row in scaling}
    common = sorted(set(base_rows) & set(rows))
    if not common:
        return ["no common site counts between run and committed fleet baseline"]
    largest = common[-1]
    run, base = rows[largest], base_rows[largest]
    if compare_wall_clock and run["wall_clock_seconds"] > regression_factor * base["wall_clock_seconds"]:
        failures.append(
            f"fleet sweep at {largest} sites took {run['wall_clock_seconds']:.2f} s, "
            f"more than {regression_factor:.0f}x the committed baseline "
            f"({base['wall_clock_seconds']:.2f} s)"
        )
    for num_sites in common:
        run_row, base_row = rows[num_sites], base_rows[num_sites]
        if run_row["mean_accuracy"] < base_row["mean_accuracy"] - 1e-9:
            failures.append(
                f"fleet mean accuracy at {num_sites} sites fell to "
                f"{run_row['mean_accuracy']:.6f} (baseline {base_row['mean_accuracy']:.6f})"
            )
        if (
            run_row["p10_worst_stream_accuracy"]
            < base_row["p10_worst_stream_accuracy"] - 1e-9
        ):
            failures.append(
                f"p10 worst-stream accuracy at {num_sites} sites fell to "
                f"{run_row['p10_worst_stream_accuracy']:.6f} "
                f"(baseline {base_row['p10_worst_stream_accuracy']:.6f})"
            )
    return failures
