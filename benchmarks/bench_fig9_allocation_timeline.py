"""Figure 9: per-stream resource allocation across retraining windows.

On the Urban-Building-like workload, Ekya retrains each stream's model only
when it benefits and gives different amounts of GPU to different streams'
retraining jobs (unlike the uniform baseline's identical static split), while
both streams end with high average accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_table
from repro.simulation import Simulator, make_setup

NUM_STREAMS = 2
NUM_GPUS = 1
NUM_WINDOWS = 8
SEED = 3


def _run():
    setup = make_setup(
        "ekya",
        dataset="urban_building",
        num_streams=NUM_STREAMS,
        num_gpus=NUM_GPUS,
        seed=SEED,
    )
    simulator = Simulator(setup.server, setup.dynamics, setup.policy)
    result = simulator.run(NUM_WINDOWS)
    names = [stream.name for stream in setup.server.streams]
    return result, names


@pytest.mark.benchmark(group="fig9")
def test_fig9_per_stream_allocation(benchmark):
    result, names = benchmark.pedantic(_run, rounds=1, iterations=1)

    for name in names:
        timeline = result.allocation_timeline(name)
        rows = [
            [
                row["window_index"],
                f"{row['inference_gpu']:.2f}",
                f"{row['retraining_gpu']:.2f}",
                "yes" if row["retrained"] else "no",
                f"{row['accuracy']:.3f}",
            ]
            for row in timeline
        ]
        print_table(
            f"Figure 9: allocation timeline for {name} "
            f"(mean accuracy {result.per_stream_accuracy[name]:.3f})",
            rows,
            header=["window", "inference GPU", "retraining GPU", "retrained", "accuracy"],
        )

    timelines = {name: result.allocation_timeline(name) for name in names}

    # Retraining happens (continuous learning is active) but is driven by the
    # per-stream benefit, not by a fixed static split.
    total_slots = NUM_STREAMS * NUM_WINDOWS
    retrained_slots = sum(
        1 for rows in timelines.values() for row in rows if row["retrained"]
    )
    assert 0 < retrained_slots <= total_slots

    # Allocations vary across windows and differ between the two streams in
    # at least one window (unlike the uniform baseline's constant split).
    retraining_allocations = np.array(
        [[row["retraining_gpu"] for row in timelines[name]] for name in names]
    )
    assert retraining_allocations.std() > 0.0
    assert any(
        abs(retraining_allocations[0, w] - retraining_allocations[1, w]) > 1e-6
        for w in range(NUM_WINDOWS)
    )

    # Both streams end with healthy average accuracy.
    for name in names:
        assert result.per_stream_accuracy[name] > 0.6
