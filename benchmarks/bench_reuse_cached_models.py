"""§6.5 (cached models): reusing pre-trained models vs Ekya's retraining.

A cache of models pre-trained on earlier windows is reused by picking, per
window, the model whose training class distribution is closest to the current
window's.  The paper measures 0.72 average accuracy for this baseline versus
0.78 for Ekya (10 streams, 8 GPUs): class-mix similarity does not imply
appearance similarity, so cached models underperform fresh retraining.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.cluster import EdgeServerSpec
from repro.core import evaluate_cached_reuse
from repro.datasets import make_workload
from repro.profiles import AnalyticDynamics
from repro.simulation import run_experiment

NUM_STREAMS = 10
NUM_GPUS = 8
NUM_WINDOWS = 8
CACHE_WINDOWS = tuple(range(4))
EVAL_WINDOWS = tuple(range(4, NUM_WINDOWS))
SEED = 0


def _run():
    ekya = run_experiment(
        "ekya",
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        num_gpus=NUM_GPUS,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )
    streams = make_workload("cityscapes", NUM_STREAMS, seed=SEED)
    spec = EdgeServerSpec(num_gpus=NUM_GPUS, window_duration=200.0)
    cached = evaluate_cached_reuse(
        streams,
        AnalyticDynamics(seed=SEED),
        spec,
        eval_windows=list(EVAL_WINDOWS),
        cache_windows=list(CACHE_WINDOWS),
    )
    # Ekya's accuracy over the same evaluation windows for a fair comparison.
    ekya_eval_windows = [w for w in ekya.windows if w.window_index in EVAL_WINDOWS]
    ekya_accuracy = sum(w.mean_accuracy for w in ekya_eval_windows) / len(ekya_eval_windows)
    return ekya_accuracy, cached


@pytest.mark.benchmark(group="cached-reuse")
def test_cached_model_reuse_vs_ekya(benchmark):
    ekya_accuracy, cached = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        ["cached-model reuse", f"{cached.mean_accuracy:.3f}"],
        ["Ekya (continuous retraining)", f"{ekya_accuracy:.3f}"],
    ]
    print_table(
        "§6.5: cached-model reuse vs Ekya (paper: 0.72 vs 0.78)",
        rows,
        header=["approach", "mean accuracy"],
    )
    per_window_rows = [
        [window, f"{accuracy:.3f}"]
        for window, accuracy in zip(EVAL_WINDOWS, cached.per_window_accuracy)
    ]
    print_table("cached-model reuse per evaluation window", per_window_rows, header=["window", "accuracy"])

    # Shape: Ekya's continuous retraining beats the cached-model reuse.
    assert ekya_accuracy > cached.mean_accuracy
    # The gap is meaningful but reuse is not catastrophic (paper: 6 points).
    assert 0.0 < ekya_accuracy - cached.mean_accuracy < 0.35
