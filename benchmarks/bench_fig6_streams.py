"""Figure 6: accuracy vs number of concurrent streams (1 and 2 GPUs).

As more video streams share the same provisioned GPUs, Ekya's accuracy
degrades gracefully while the uniform baselines drop faster, so Ekya's lead
grows (paper: up to 29 % under 1 GPU, 23 % under 2 GPUs).  Figure 6a uses the
Cityscapes-like workload, Figure 6b the Waymo-like one.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.simulation import accuracy_vs_streams

POLICIES = ["ekya", "uniform_c1_50", "uniform_c2_30", "uniform_c2_50", "uniform_c2_90"]
STREAM_COUNTS = (2, 4, 6, 8)
NUM_WINDOWS = 6
SEED = 0


def _run(dataset: str, num_gpus: int):
    return accuracy_vs_streams(
        POLICIES,
        STREAM_COUNTS,
        dataset=dataset,
        num_gpus=num_gpus,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )


def _check_and_print(table, dataset, num_gpus):
    rows = [
        [name] + [f"{table[name][count]:.3f}" for count in STREAM_COUNTS]
        for name in sorted(table)
    ]
    print_table(
        f"Figure 6 ({dataset}, {num_gpus} GPU): accuracy vs #streams",
        rows,
        header=["policy"] + [f"{c} streams" for c in STREAM_COUNTS],
    )
    ekya = table["Ekya"]
    baselines = {name: row for name, row in table.items() if name != "Ekya"}
    # At the most stressed point Ekya must beat every baseline, and its lead
    # over the best baseline must be larger than at the least stressed point.
    most_stressed = max(STREAM_COUNTS)
    least_stressed = min(STREAM_COUNTS)
    best_baseline_stressed = max(row[most_stressed] for row in baselines.values())
    best_baseline_light = max(row[least_stressed] for row in baselines.values())
    assert ekya[most_stressed] >= best_baseline_stressed
    gain_stressed = ekya[most_stressed] - best_baseline_stressed
    gain_light = ekya[least_stressed] - best_baseline_light
    assert gain_stressed >= gain_light - 0.03
    # Graceful degradation: Ekya loses less accuracy going 2 -> 8 streams than
    # the worst-degrading baseline.
    ekya_drop = ekya[least_stressed] - ekya[most_stressed]
    worst_baseline_drop = max(
        row[least_stressed] - row[most_stressed] for row in baselines.values()
    )
    assert ekya_drop <= worst_baseline_drop + 0.02


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("num_gpus", [1, 2])
def test_fig6a_cityscapes(benchmark, num_gpus):
    table = benchmark.pedantic(_run, args=("cityscapes", num_gpus), rounds=1, iterations=1)
    _check_and_print(table, "cityscapes", num_gpus)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("num_gpus", [1, 2])
def test_fig6b_waymo(benchmark, num_gpus):
    table = benchmark.pedantic(_run, args=("waymo", num_gpus), rounds=1, iterations=1)
    _check_and_print(table, "waymo", num_gpus)
