"""Figure 7: accuracy vs provisioned GPUs for 10 concurrent streams.

One panel per dataset (Cityscapes, Waymo, Urban Building, Urban Traffic).
Ekya should consistently beat the best uniform baseline, and the baseline
should need several times more GPUs to match Ekya's accuracy (paper headline:
4x more).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.simulation import accuracy_vs_gpus, gpus_needed_for_accuracy

POLICIES = ["ekya", "uniform_c1_50", "uniform_c2_30", "uniform_c2_50", "uniform_c2_90"]
GPU_COUNTS = (1, 2, 4, 6, 8)
NUM_STREAMS = 10
NUM_WINDOWS = 6
SEED = 0
DATASETS = ("cityscapes", "waymo", "urban_building", "urban_traffic")


def _run(dataset: str):
    return accuracy_vs_gpus(
        POLICIES,
        GPU_COUNTS,
        dataset=dataset,
        num_streams=NUM_STREAMS,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_accuracy_vs_gpus(benchmark, dataset):
    table = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)

    rows = [
        [name] + [f"{table[name][gpus]:.3f}" for gpus in GPU_COUNTS]
        for name in sorted(table)
    ]
    print_table(
        f"Figure 7 ({dataset}): accuracy vs provisioned GPUs, {NUM_STREAMS} streams",
        rows,
        header=["policy"] + [f"{g} GPU" for g in GPU_COUNTS],
    )

    ekya = table["Ekya"]
    baselines = {name: row for name, row in table.items() if name != "Ekya"}

    # Ekya beats the best baseline at every provisioning level (small slack
    # for ties: at the starved and resource-rich extremes the paper's gap also
    # narrows, and the low-drift static-camera datasets leave less headroom).
    for gpus in GPU_COUNTS:
        best_baseline = max(row[gpus] for row in baselines.values())
        assert ekya[gpus] >= best_baseline - 0.025
    # And it wins outright at a majority of provisioning levels.
    wins = sum(
        1 for gpus in GPU_COUNTS if ekya[gpus] >= max(row[gpus] for row in baselines.values())
    )
    assert wins >= len(GPU_COUNTS) // 2 + 1

    # More GPUs never hurt Ekya.
    values = [ekya[gpus] for gpus in GPU_COUNTS]
    assert all(b >= a - 0.02 for a, b in zip(values, values[1:]))

    # Resource-saving headline: the best baseline needs strictly more GPUs
    # than Ekya to reach Ekya's accuracy at a mid provisioning point.
    target = ekya[2]
    best_baseline_curve = {
        gpus: max(row[gpus] for row in baselines.values()) for gpus in GPU_COUNTS
    }
    needed = gpus_needed_for_accuracy(best_baseline_curve, target)
    assert needed is None or needed > 2
