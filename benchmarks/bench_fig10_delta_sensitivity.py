"""Figure 10: sensitivity of the thief scheduler to the allocation quantum Δ.

Finer quanta (Δ = 0.1 of a GPU) give higher accuracy than coarse whole-GPU
steps (Δ = 1.0) at the cost of a longer scheduler runtime, which must remain
a tiny fraction of the 200 s retraining window.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.simulation import delta_sensitivity

DELTAS = (1.0, 0.5, 0.2, 0.1)
NUM_STREAMS = 10
NUM_GPUS = 4
NUM_WINDOWS = 4
WINDOW_SECONDS = 200.0
SEED = 0


def _run():
    return delta_sensitivity(
        DELTAS,
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        num_gpus=NUM_GPUS,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )


@pytest.mark.benchmark(group="fig10")
def test_fig10_delta_sensitivity(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            delta,
            f"{table[delta]['accuracy']:.3f}",
            f"{table[delta]['scheduler_runtime_seconds'] * 1000:.1f} ms",
            f"{table[delta]['scheduler_runtime_seconds'] / WINDOW_SECONDS * 100:.3f} %",
        ]
        for delta in DELTAS
    ]
    print_table(
        "Figure 10: thief-scheduler quantum Δ vs accuracy and runtime",
        rows,
        header=["delta", "accuracy", "runtime/window", "fraction of window"],
    )

    # Finer quanta are at least as accurate as the coarsest one, and the best
    # fine-grained setting improves on whole-GPU allocation.
    coarse = table[max(DELTAS)]["accuracy"]
    fine = table[min(DELTAS)]["accuracy"]
    assert fine >= coarse - 0.01
    assert max(table[d]["accuracy"] for d in DELTAS) >= coarse

    # Runtime grows as Δ shrinks but stays a small fraction of the window
    # (paper: 9.5 s of a 200 s window, i.e. < 5 %).
    assert table[min(DELTAS)]["scheduler_runtime_seconds"] >= table[max(DELTAS)][
        "scheduler_runtime_seconds"
    ] * 0.5
    for delta in DELTAS:
        assert table[delta]["scheduler_runtime_seconds"] < 0.05 * WINDOW_SECONDS
