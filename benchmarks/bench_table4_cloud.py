"""Table 4: cloud-offloaded retraining over constrained WAN links vs Ekya.

Eight streams, four edge GPUs, 400 s retraining windows.  Uploading the
sampled training data and downloading the retrained models over cellular or
satellite links delays every model update, so the cloud alternative ends up
with lower accuracy than Ekya despite free (and assumed instantaneous) cloud
compute — and matching Ekya would require several times more uplink/downlink
bandwidth.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.cluster import STANDARD_LINKS
from repro.configs import ConfigurationSpace
from repro.core import CloudRetrainingPolicy, OracleProfileSource
from repro.profiles import AnalyticDynamics
from repro.simulation import compare_policies

NUM_STREAMS = 8
NUM_GPUS = 4
NUM_WINDOWS = 5
WINDOW_SECONDS = 400.0
SEED = 0
CLOUD_POLICIES = {
    "cloud_cellular": "Cellular",
    "cloud_satellite": "Satellite",
    "cloud_cellular_2x": "Cellular (2x)",
}


def _run():
    results = compare_policies(
        ["ekya", *CLOUD_POLICIES.keys()],
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        num_gpus=NUM_GPUS,
        num_windows=NUM_WINDOWS,
        window_duration=WINDOW_SECONDS,
        seed=SEED,
    )
    # Bandwidth multiples needed for the cloud transfers to finish within a
    # quarter of the window (roughly what it takes to match Ekya's accuracy).
    multiples = {}
    for link_name, link in STANDARD_LINKS.items():
        policy = CloudRetrainingPolicy(
            OracleProfileSource(AnalyticDynamics(seed=SEED)),
            link,
            ConfigurationSpace.small(),
        )
        multiples[link_name] = policy.bandwidth_multiple_to_finish_in(
            WINDOW_SECONDS / 4.0, num_streams=NUM_STREAMS, window_seconds=WINDOW_SECONDS
        )
    return results, multiples


@pytest.mark.benchmark(group="table4")
def test_table4_cloud_vs_ekya(benchmark):
    results, multiples = benchmark.pedantic(_run, rounds=1, iterations=1)

    ekya_accuracy = results["Ekya"].mean_accuracy
    rows = []
    for policy_name, link_name in CLOUD_POLICIES.items():
        label = f"cloud ({link_name})"
        accuracy = results[label].mean_accuracy
        extra = multiples[link_name]
        rows.append(
            [
                link_name,
                f"{accuracy:.3f}",
                f"{extra['uplink_multiple']:.1f}x",
                f"{extra['downlink_multiple']:.1f}x",
            ]
        )
    rows.append(["Ekya (edge)", f"{ekya_accuracy:.3f}", "-", "-"])
    print_table(
        "Table 4: cloud retraining vs Ekya (8 streams, 4 GPUs, 400 s windows)",
        rows,
        header=["link", "accuracy", "uplink needed", "downlink needed"],
    )

    # Ekya beats the single-subscription cellular and satellite alternatives
    # without using any WAN bandwidth.  The doubled-cellular link can come
    # close (our cloud model conservatively assumes *free and instantaneous*
    # cloud retraining, as the paper does), but must not beat Ekya by more
    # than a whisker.
    assert ekya_accuracy > results["cloud (Cellular)"].mean_accuracy
    assert ekya_accuracy > results["cloud (Satellite)"].mean_accuracy
    assert results["cloud (Cellular (2x))"].mean_accuracy - ekya_accuracy < 0.03

    # A faster link (2x cellular) is at least as good as the single link.
    assert (
        results["cloud (Cellular (2x))"].mean_accuracy
        >= results["cloud (Cellular)"].mean_accuracy - 1e-9
    )

    # Matching Ekya requires a multiple of the cellular uplink capacity.
    assert multiples["Cellular"]["uplink_multiple"] > 2.0
