"""Shared configuration for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (see DESIGN.md for the experiment index).  The benchmarks
use small-but-representative workload sizes so the whole suite runs in a few
minutes on a laptop; the printed rows/series are what EXPERIMENTS.md records
against the paper's reported numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def print_table(title: str, rows: list, header: list | None = None) -> None:
    """Pretty-print a benchmark's reproduced table to stdout."""
    print(f"\n=== {title} ===")
    if header:
        print(" | ".join(str(h) for h in header))
    for row in rows:
        print(" | ".join(str(col) for col in row))
