"""Fleet orchestration scaling: 1 → 16 sites, up to 400 concurrent streams.

The ROADMAP north-star is a fleet of edge servers, each running the paper's
thief scheduler locally while a :class:`~repro.fleet.controller.
FleetController` owns stream placement globally.  This benchmark sweeps the
fleet from a single site to 16 sites × 25 streams/site (400 streams), checks
the whole sweep stays interactive (< 10 s wall-clock for the largest point),
runs the documented failure scenario (flash crowd + site failure with forced
evacuation + WAN degradation), and appends both to ``BENCH_fleet.json`` so
``run_benchmarks.py`` can gate regressions against the committed baseline.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from fleet_bench_core import (
    NUM_WINDOWS,
    SITE_COUNTS,
    STREAMS_PER_SITE,
    emit_fleet_bench_json,
    measure_failure_scenario,
    measure_fleet_scaling,
    measure_heterogeneous_fleet,
)


@pytest.mark.benchmark(group="fleet-scaling")
def test_fleet_scaling_1_to_16_sites(benchmark):
    rows = benchmark.pedantic(measure_fleet_scaling, rounds=1, iterations=1)

    table = [
        [
            row["num_sites"],
            row["num_streams"],
            f"{row['wall_clock_seconds']:.2f} s",
            f"{row['seconds_per_window'] * 1000:.0f} ms",
            f"{row['mean_accuracy']:.4f}",
            f"{row['p10_worst_stream_accuracy']:.4f}",
            row["migration_count"],
            f"{row['mean_allocation_loss']:.2f}",
        ]
        for row in rows
    ]
    print_table(
        f"fleet scaling ({STREAMS_PER_SITE} streams/site, {NUM_WINDOWS} windows)",
        table,
        header=[
            "sites",
            "streams",
            "wall",
            "per window",
            "accuracy",
            "p10 worst",
            "migrations",
            "quant loss",
        ],
    )

    scenario = measure_failure_scenario()
    heterogeneous = measure_heterogeneous_fleet()
    path = emit_fleet_bench_json(rows, scenario, heterogeneous=heterogeneous)
    print(f"trajectory appended to {path}")

    assert [row["num_sites"] for row in rows] == list(SITE_COUNTS)
    # The acceptance bound: the largest point (16 sites x 25 streams) must
    # complete end-to-end in under 10 s wall-clock.
    largest = rows[-1]
    assert largest["num_streams"] == 400
    assert largest["wall_clock_seconds"] < 10.0
    for row in rows:
        assert 0.0 < row["mean_accuracy"] <= 1.0
        assert 0.0 < row["p10_worst_stream_accuracy"] <= row["mean_accuracy"] + 1e-9
    # The chaos run must have actually evacuated streams and kept serving.
    assert scenario["evacuated_streams"]
    assert scenario["migrations_by_reason"].get("evacuation", 0) > 0
    assert 0.0 < scenario["mean_accuracy"] <= 1.0
    # The heterogeneous run: both window cadences must appear on the calendar.
    starts = heterogeneous["cycle_starts"]
    assert any(start % 200.0 != 0.0 for start in starts)
    assert any(start % 150.0 != 0.0 for start in starts)
    assert 0.0 < heterogeneous["mean_accuracy"] <= 1.0
