"""Figure 8: factor analysis of Ekya's two mechanisms.

Removing the adaptive resource allocation (Ekya-FixedRes) or the
micro-profiling-based configuration selection (Ekya-FixedConfig) should each
cost accuracy relative to full Ekya, especially when the system is
resource-stressed (few provisioned GPUs for 10 streams).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.simulation import accuracy_vs_gpus

POLICIES = ["ekya", "ekya_fixedres", "ekya_fixedconfig", "uniform_c2_50"]
GPU_COUNTS = (2, 4, 6, 8)
NUM_STREAMS = 10
NUM_WINDOWS = 6
SEED = 0


def _run():
    return accuracy_vs_gpus(
        POLICIES,
        GPU_COUNTS,
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )


@pytest.mark.benchmark(group="fig8")
def test_fig8_factor_analysis(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [name] + [f"{table[name][gpus]:.3f}" for gpus in GPU_COUNTS]
        for name in sorted(table)
    ]
    print_table(
        "Figure 8: factor analysis (10 streams)",
        rows,
        header=["policy"] + [f"{g} GPU" for g in GPU_COUNTS],
    )

    ekya = table["Ekya"]
    fixed_res = table["Ekya-FixedRes"]
    fixed_config = table["Ekya-FixedConfig"]
    uniform = table["uniform (Config2, 50%)"]

    # Full Ekya is at least as good as both ablations everywhere (small slack
    # for simulator noise), and both ablations are at least as good as the
    # uniform baseline they share a mechanism with.
    for gpus in GPU_COUNTS:
        assert ekya[gpus] >= fixed_res[gpus] - 0.02
        assert ekya[gpus] >= fixed_config[gpus] - 0.02
        assert max(fixed_res[gpus], fixed_config[gpus]) >= uniform[gpus] - 0.02

    # Under stress (fewest GPUs) at least one ablation loses noticeably,
    # i.e. both mechanisms contribute.
    stressed = GPU_COUNTS[0]
    assert ekya[stressed] - min(fixed_res[stressed], fixed_config[stressed]) > 0.01
