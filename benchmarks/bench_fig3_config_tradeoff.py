"""Figure 3: resource-accuracy tradeoff of retraining configurations.

Figure 3a varies two hyperparameters (fraction of data, fraction of layers
retrained) and shows both affect accuracy and GPU-seconds; Figure 3b plots
the full configuration grid and its Pareto boundary, highlighting (i) a wide
(~100x+) spread in GPU cost and (ii) that higher cost does not always mean
higher accuracy.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.configs import default_retraining_grid
from repro.datasets import make_stream
from repro.models import EdgeModelSpec, Trainer, create_edge_model
from repro.utils.math_utils import pareto_frontier


def _profile_grid():
    stream = make_stream(
        "cityscapes", 0, seed=23, samples_per_window=250, eval_samples_per_window=150
    )
    spec = EdgeModelSpec(feature_dim=stream.feature_dim, num_classes=stream.taxonomy.num_classes)
    trainer = Trainer(seed=23)
    window = stream.window(1)

    grid = default_retraining_grid(
        epochs=(5, 15, 30),
        layers_trained=(0.1, 0.5, 1.0),
        data_fractions=(0.2, 0.5, 1.0),
    )
    points = []
    for config in grid:
        model = create_edge_model(spec, config=config, seed=23)
        trainer.train(model, stream.window(0), config.with_epochs(10))
        result = trainer.train(model, window, config)
        accuracy = trainer.evaluate(model, window)
        points.append((config, result.gpu_seconds, accuracy))
    return points


@pytest.mark.benchmark(group="fig3")
def test_fig3_resource_accuracy_tradeoff(benchmark):
    points = benchmark.pedantic(_profile_grid, rounds=1, iterations=1)

    rows = [
        [
            f"epochs={cfg.epochs}",
            f"layers={cfg.layers_trained_fraction}",
            f"data={cfg.data_fraction}",
            f"{gpu_seconds:.1f}",
            f"{accuracy:.3f}",
        ]
        for cfg, gpu_seconds, accuracy in points
    ]
    print_table(
        "Figure 3b: GPU-seconds vs accuracy per retraining configuration",
        rows,
        header=["epochs", "layers", "data", "gpu_seconds", "accuracy"],
    )

    costs = [gpu_seconds for _, gpu_seconds, _ in points]
    accuracies = [accuracy for _, _, accuracy in points]

    # Wide spread in resource usage (paper: up to 200x; we require >= 10x).
    assert max(costs) / min(costs) > 10

    # Higher resource usage does not always give higher accuracy: the most
    # expensive configuration must not dominate everything.
    frontier = pareto_frontier([(c, a) for c, a in zip(costs, accuracies)])
    assert 0 < len(frontier) < len(points)

    # There exist two configurations with similar accuracy but very different
    # cost (the circled pair of Figure 3b).
    similar_pairs = [
        (ci, cj)
        for i, (ci, ai) in enumerate(zip(costs, accuracies))
        for j, (cj, aj) in enumerate(zip(costs, accuracies))
        if i != j and abs(ai - aj) < 0.03 and ci > 3 * cj
    ]
    assert similar_pairs
