#!/usr/bin/env python
"""Benchmark entry point with committed-regression gates.

Runs the scheduler benchmarks (paper operating point + 10→100-stream
scaling sweep) and the fleet-orchestration sweep (1→16 sites), appends
timestamped entries to ``BENCH_scheduler.json`` / ``BENCH_fleet.json``, and
fails (exit code 1) if the scheduler's decision latency at the operating
point has regressed more than 2× against the committed baseline in
``benchmarks/baselines/scheduler_baseline.json``, or the fleet sweep has
regressed against ``benchmarks/baselines/fleet_baseline.json``.

The gates compare *relative* quantities wherever possible — the wall-clock
speedup over the same-machine seed-path port, the PickConfigs evaluation
count and the (seed-deterministic) accuracies — so the check is meaningful
on hardware other than the one the baseline was recorded on.  Raw runtime
comparisons are additionally applied on developer machines, but skipped
when the ``CI`` environment variable is set: shared CI runners are not
comparable to the machine the baselines were recorded on.

``--quick`` runs the scheduler operating point plus an exact sharing-off
fleet parity check (the smallest baseline site count, compared bit for bit
against ``fleet_baseline.json`` — proving ``make_fleet``'s cross-site
profile sharing stays strictly opt-in), the telemetry memory bound, and
the control-policy gate (the default greedy arm of the cheapest reference
scenario must reproduce ``policy_baseline.json`` bit for bit, and the
predictive arm must not regress the fleet mean below greedy on the same
calendar), skipping the scaling sweeps — the smoke mode CI uses on every
PR.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--no-check] [--quick] \
        [--output BENCH_scheduler.json] [--baseline benchmarks/baselines/scheduler_baseline.json]
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from bench_policy import (
    check_policy_against_baseline,
    check_quick_policy_gate,
    load_policy_baseline,
    measure_policy_ab,
)
from bench_telemetry import check_quick_telemetry_bound, measure_telemetry_scaling
from fleet_bench_core import (
    BENCH_FLEET_JSON_PATH,
    FLEET_BASELINE_PATH,
    check_fleet_against_baseline,
    check_quick_fleet_parity,
    emit_fleet_bench_json,
    load_fleet_baseline,
    measure_batched_fleet_planning,
    measure_failure_scenario,
    measure_fleet_scaling,
    measure_heterogeneous_fleet,
    measure_profile_sharing,
)
from scheduler_bench_core import (
    BASELINE_PATH,
    BENCH_JSON_PATH,
    emit_bench_json,
    load_baseline,
    measure_batched_planner,
    measure_operating_point,
    measure_scaling,
)

#: A run is a regression when it is more than this factor slower than the
#: committed baseline.
REGRESSION_FACTOR = 2.0


def _on_ci() -> bool:
    """Whether we are running on CI hardware (GitHub Actions sets ``CI``).

    The committed baselines were recorded on a developer machine; shared CI
    runners are routinely slower, so raw wall-clock comparisons would fail
    spuriously there.  The machine-independent gates (seed-path speedup,
    PickConfigs evaluation counts, accuracies) still apply everywhere.
    """
    return os.environ.get("CI", "").strip().lower() in ("1", "true", "yes")


def check_against_baseline(
    operating_point: dict, baseline: dict, *, compare_raw_runtime: bool = True
) -> list:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    base_op = baseline.get("operating_point", {})

    base_runtime = base_op.get("scheduler_runtime_seconds")
    runtime = operating_point["scheduler_runtime_seconds"]
    if compare_raw_runtime and base_runtime and runtime > REGRESSION_FACTOR * base_runtime:
        failures.append(
            f"scheduler runtime {runtime * 1000:.1f} ms is more than "
            f"{REGRESSION_FACTOR:.0f}x the committed baseline "
            f"({base_runtime * 1000:.1f} ms)"
        )

    base_evaluations = base_op.get("pick_configs_evaluations")
    evaluations = operating_point["pick_configs_evaluations"]
    if base_evaluations and evaluations > REGRESSION_FACTOR * base_evaluations:
        failures.append(
            f"PickConfigs evaluations {evaluations} exceed "
            f"{REGRESSION_FACTOR:.0f}x the committed baseline ({base_evaluations})"
        )

    base_speedup = base_op.get("wall_clock_speedup")
    speedup = operating_point.get("wall_clock_speedup")
    if base_speedup and speedup and speedup < base_speedup / REGRESSION_FACTOR:
        failures.append(
            f"wall-clock speedup over the seed path fell to {speedup:.1f}x "
            f"(baseline {base_speedup:.1f}x)"
        )

    base_accuracy = base_op.get("estimated_average_accuracy")
    accuracy = operating_point["estimated_average_accuracy"]
    if base_accuracy and accuracy < base_accuracy - 1e-9:
        failures.append(
            f"estimated average accuracy {accuracy:.6f} fell below the "
            f"committed baseline {base_accuracy:.6f}"
        )
    return failures


def check_batched_planner(
    batched: dict, baseline: dict, *, compare_raw_runtime: bool = True
) -> list:
    """Gate the batched planner against the committed baseline.

    Two machine-independent checks apply everywhere: the batched schedule
    must be bit-identical to the scalar oracle's, and its deterministic
    counters (iterations, PickConfigs evaluations, estimated accuracy) must
    match the committed baseline exactly.  The same-machine speedup floor
    (``min_speedup``, committed as 2.0 at the 100-stream point) applies in
    full on developer machines; on CI runners — noisy shared hardware — it
    relaxes by ``REGRESSION_FACTOR``, mirroring the wall-clock convention.
    """
    failures = []
    gate = baseline.get("batched_planner", {})
    if not batched["decisions_identical"]:
        failures.append(
            f"batched planner diverged from the scalar oracle at "
            f"{batched['num_streams']} streams (decisions/counters/accuracy "
            f"must be bit-identical)"
        )
    for field in ("iterations", "pick_configs_evaluations", "estimated_average_accuracy"):
        expected = gate.get(field)
        if expected is not None and batched[field] != expected:
            failures.append(
                f"batched planner {field} is {batched[field]!r}, committed "
                f"baseline says {expected!r} (deterministic, must match exactly)"
            )
    floor = gate.get("min_speedup")
    if floor:
        required = floor if compare_raw_runtime else floor / REGRESSION_FACTOR
        if batched["batched_speedup"] < required:
            failures.append(
                f"batched planner speedup {batched['batched_speedup']:.2f}x at "
                f"{batched['num_streams']} streams fell below the committed "
                f"floor ({required:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help="trajectory JSON to append to (default: repo-root BENCH_scheduler.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="committed baseline to gate against",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="record the run without gating against the baseline",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="operating point only: skip the stream-scaling and fleet sweeps",
    )
    parser.add_argument(
        "--fleet-output",
        type=Path,
        default=BENCH_FLEET_JSON_PATH,
        help="fleet trajectory JSON to append to (default: repo-root BENCH_fleet.json)",
    )
    parser.add_argument(
        "--fleet-baseline",
        type=Path,
        default=FLEET_BASELINE_PATH,
        help="committed fleet baseline to gate against",
    )
    args = parser.parse_args(argv)

    print("measuring operating point (10 streams x 8 GPUs x 18 configs, delta=0.1)...")
    operating_point = measure_operating_point()
    print(
        f"  runtime {operating_point['scheduler_runtime_seconds'] * 1000:.1f} ms | "
        f"evaluations {operating_point['pick_configs_evaluations']} | "
        f"accuracy {operating_point['estimated_average_accuracy']:.6f} | "
        f"speedup vs seed path {operating_point['wall_clock_speedup']:.1f}x"
    )

    print("measuring batched planner A/B (100 streams, scalar vs cohort-stacked)...")
    batched = measure_batched_planner()
    print(
        f"  scalar {batched['scalar_runtime_seconds'] * 1000:.1f} ms | "
        f"batched {batched['batched_runtime_seconds'] * 1000:.1f} ms | "
        f"speedup {batched['batched_speedup']:.2f}x | "
        f"identical {batched['decisions_identical']}"
    )

    scaling = []
    fleet_scaling = []
    if args.quick:
        # Smoke mode gates but does not record: a quick run has no scaling
        # sweeps, and appending degenerate entries would pollute the
        # committed trajectories.
        print("quick mode: trajectories not recorded")
    else:
        print("measuring scaling sweep (10 -> 100 streams)...")
        scaling = measure_scaling()
        for row in scaling:
            print(
                f"  {row['num_streams']:4d} streams: "
                f"{row['scheduler_runtime_seconds'] * 1000:8.1f} ms | "
                f"evaluations {row['pick_configs_evaluations']}"
            )
        path = emit_bench_json(operating_point, scaling, args.output, batched=batched)
        print(f"trajectory appended to {path}")

        print("measuring fleet scaling sweep (1 -> 16 sites, 25 streams/site)...")
        fleet_scaling = measure_fleet_scaling()
        for row in fleet_scaling:
            print(
                f"  {row['num_sites']:3d} sites / {row['num_streams']:3d} streams: "
                f"{row['wall_clock_seconds']:6.2f} s | "
                f"accuracy {row['mean_accuracy']:.4f} | "
                f"p10 {row['p10_worst_stream_accuracy']:.4f} | "
                f"migrations {row['migration_count']}"
            )
        print("measuring fleet failure scenario (flash crowd + site failure + WAN)...")
        scenario = measure_failure_scenario()
        print(
            f"  {len(scenario['evacuated_streams'])} streams evacuated | "
            f"accuracy {scenario['mean_accuracy']:.4f} | "
            f"migration cost {scenario['total_migration_seconds']:.0f} s"
        )
        print("measuring heterogeneous-window fleet (per-site calendars, mid-window failure)...")
        heterogeneous = measure_heterogeneous_fleet()
        print(
            f"  windows {heterogeneous['window_durations']} s | "
            f"{heterogeneous['num_cycles']} cycles / "
            f"{heterogeneous['events_processed']} events over "
            f"{heterogeneous['horizon_seconds']:.0f} s | "
            f"accuracy {heterogeneous['mean_accuracy']:.4f}"
        )
        print("measuring cross-site profile sharing (warm-started flash crowd)...")
        sharing = measure_profile_sharing()
        print(
            f"  profiling cost {sharing['profiling_gpu_seconds']:.1f} GPU-s | "
            f"saved {sharing['profiling_gpu_seconds_saved']:.1f} GPU-s | "
            f"accuracy on/off {sharing['mean_accuracy_sharing_on']:.4f}/"
            f"{sharing['mean_accuracy_sharing_off']:.4f}"
        )
        print("measuring telemetry footprint (16 sites x 400 streams, 3 vs 30 windows)...")
        telemetry = measure_telemetry_scaling()
        for point in telemetry["points"]:
            print(
                f"  {point['num_windows']:3d} windows: "
                f"{point['telemetry_bytes'] / 1024:7.0f} KiB telemetry | "
                f"{point['events_recorded']} events | "
                f"ring {point['ring_occupancy']}/{point['ring_capacity']}"
            )
        print(f"  footprint growth ratio {telemetry['footprint_growth_ratio']:.3f}x")
        print("measuring control-policy A/B (greedy vs predictive, 3 scenarios)...")
        policy = measure_policy_ab()
        for row in policy["scenarios"]:
            print(
                f"  {row['scenario']:16s} "
                f"p10 {row['greedy']['p10_worst_stream_accuracy']:.4f} -> "
                f"{row['predictive']['p10_worst_stream_accuracy']:.4f} | "
                f"wasted {row['greedy']['wasted_gpu_seconds']:7.2f} -> "
                f"{row['predictive']['wasted_gpu_seconds']:7.2f} GPU-s"
            )
        print(
            f"  predictive wins {policy['predictive_wins']} of "
            f"{policy['num_scenarios']} scenarios"
        )
        print("measuring fleet cohort planning (batched on/off, 1 -> 16 sites)...")
        batched_fleet = measure_batched_fleet_planning()
        for row in batched_fleet["rows"]:
            print(
                f"  {row['num_sites']:3d} sites: per-site planning "
                f"{row['scalar_per_site_planning_seconds'] * 1000:6.1f} -> "
                f"{row['batched_per_site_planning_seconds'] * 1000:6.1f} ms | "
                f"speedup {row['planning_speedup']:.2f}x | "
                f"identical {row['summaries_identical']}"
            )
        fleet_path = emit_fleet_bench_json(
            fleet_scaling,
            scenario,
            args.fleet_output,
            heterogeneous=heterogeneous,
            profile_sharing=sharing,
            telemetry=telemetry,
            policy=policy,
            batched_planning=batched_fleet,
        )
        print(f"fleet trajectory appended to {fleet_path}")

    if args.no_check:
        return 0
    compare_raw = not _on_ci()
    if not compare_raw:
        print("CI environment detected: raw wall-clock gates skipped (relative gates still apply)")
    failures = []
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"no committed baseline at {args.baseline}; skipping the scheduler gate")
    else:
        failures.extend(
            check_against_baseline(operating_point, baseline, compare_raw_runtime=compare_raw)
        )
        failures.extend(
            check_batched_planner(batched, baseline, compare_raw_runtime=compare_raw)
        )
    fleet_baseline = load_fleet_baseline(args.fleet_baseline)
    if fleet_baseline is None:
        print(f"no committed fleet baseline at {args.fleet_baseline}; skipping the fleet gate")
    elif args.quick:
        # Smoke mode still proves cross-site profile sharing is strictly
        # opt-in: the sharing-off fleet must reproduce the committed
        # baseline's deterministic metrics bit for bit.
        print("checking sharing-off fleet parity against the committed baseline...")
        failures.extend(check_quick_fleet_parity(fleet_baseline))
    else:
        failures.extend(
            check_fleet_against_baseline(
                fleet_scaling, fleet_baseline, compare_wall_clock=compare_raw
            )
        )
    if args.quick:
        # The telemetry plane's memory bound is cheap enough to gate on
        # every quick run: the committed quick shape must stay flat across
        # window counts and under the absolute byte bound.
        print("checking telemetry memory bound against the committed baseline...")
        failures.extend(check_quick_telemetry_bound())
        # And the control-policy plane: the default greedy arm must match
        # the committed baseline bit for bit, and the predictive arm must
        # not regress the fleet mean below greedy on the same calendar.
        print("checking control-policy gate against the committed baseline...")
        failures.extend(check_quick_policy_gate())
    else:
        policy_baseline = load_policy_baseline()
        if policy_baseline is None:
            print("no committed policy baseline; skipping the policy gate")
        else:
            failures.extend(check_policy_against_baseline(policy, policy_baseline))
    if failures:
        print("REGRESSION DETECTED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("no regression against the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
