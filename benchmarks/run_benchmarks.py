#!/usr/bin/env python
"""Scheduler benchmark entry point with a committed-regression gate.

Runs the scheduler benchmarks (paper operating point + 10→100-stream
scaling sweep), appends a timestamped entry to ``BENCH_scheduler.json``, and
fails (exit code 1) if the scheduler's decision latency at the operating
point has regressed more than 2× against the committed baseline in
``benchmarks/baselines/scheduler_baseline.json``.

The gate compares *relative* quantities wherever possible — the wall-clock
speedup over the same-machine seed-path port, and the PickConfigs evaluation
count, which is deterministic — so the check is meaningful on hardware other
than the one the baseline was recorded on.  The raw runtime comparison is
also applied because CI typically re-runs on comparable machines.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--no-check] \
        [--output BENCH_scheduler.json] [--baseline benchmarks/baselines/scheduler_baseline.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from scheduler_bench_core import (
    BASELINE_PATH,
    BENCH_JSON_PATH,
    emit_bench_json,
    load_baseline,
    measure_operating_point,
    measure_scaling,
)

#: A run is a regression when it is more than this factor slower than the
#: committed baseline.
REGRESSION_FACTOR = 2.0


def check_against_baseline(operating_point: dict, baseline: dict) -> list:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    base_op = baseline.get("operating_point", {})

    base_runtime = base_op.get("scheduler_runtime_seconds")
    runtime = operating_point["scheduler_runtime_seconds"]
    if base_runtime and runtime > REGRESSION_FACTOR * base_runtime:
        failures.append(
            f"scheduler runtime {runtime * 1000:.1f} ms is more than "
            f"{REGRESSION_FACTOR:.0f}x the committed baseline "
            f"({base_runtime * 1000:.1f} ms)"
        )

    base_evaluations = base_op.get("pick_configs_evaluations")
    evaluations = operating_point["pick_configs_evaluations"]
    if base_evaluations and evaluations > REGRESSION_FACTOR * base_evaluations:
        failures.append(
            f"PickConfigs evaluations {evaluations} exceed "
            f"{REGRESSION_FACTOR:.0f}x the committed baseline ({base_evaluations})"
        )

    base_speedup = base_op.get("wall_clock_speedup")
    speedup = operating_point.get("wall_clock_speedup")
    if base_speedup and speedup and speedup < base_speedup / REGRESSION_FACTOR:
        failures.append(
            f"wall-clock speedup over the seed path fell to {speedup:.1f}x "
            f"(baseline {base_speedup:.1f}x)"
        )

    base_accuracy = base_op.get("estimated_average_accuracy")
    accuracy = operating_point["estimated_average_accuracy"]
    if base_accuracy and accuracy < base_accuracy - 1e-9:
        failures.append(
            f"estimated average accuracy {accuracy:.6f} fell below the "
            f"committed baseline {base_accuracy:.6f}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON_PATH,
        help="trajectory JSON to append to (default: repo-root BENCH_scheduler.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="committed baseline to gate against",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="record the run without gating against the baseline",
    )
    args = parser.parse_args(argv)

    print("measuring operating point (10 streams x 8 GPUs x 18 configs, delta=0.1)...")
    operating_point = measure_operating_point()
    print(
        f"  runtime {operating_point['scheduler_runtime_seconds'] * 1000:.1f} ms | "
        f"evaluations {operating_point['pick_configs_evaluations']} | "
        f"accuracy {operating_point['estimated_average_accuracy']:.6f} | "
        f"speedup vs seed path {operating_point['wall_clock_speedup']:.1f}x"
    )

    print("measuring scaling sweep (10 -> 100 streams)...")
    scaling = measure_scaling()
    for row in scaling:
        print(
            f"  {row['num_streams']:4d} streams: "
            f"{row['scheduler_runtime_seconds'] * 1000:8.1f} ms | "
            f"evaluations {row['pick_configs_evaluations']}"
        )

    path = emit_bench_json(operating_point, scaling, args.output)
    print(f"trajectory appended to {path}")

    if args.no_check:
        return 0
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"no committed baseline at {args.baseline}; skipping the gate")
        return 0
    failures = check_against_baseline(operating_point, baseline)
    if failures:
        print("REGRESSION DETECTED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("no regression against the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
