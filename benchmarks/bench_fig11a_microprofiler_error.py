"""Figure 11a: distribution of the micro-profiler's accuracy-estimation error.

The micro-profiler trains each configuration for 5 epochs on ~10-30 % of the
window's data and extrapolates; the paper reports largely unbiased errors
with a median absolute error of 5.8 %.  We measure the same error on the
numpy substrate against exhaustively trained ground truth, and also quantify
the profiling cost saving.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_table
from repro.configs import RetrainingConfig, default_retraining_grid
from repro.core import MicroProfiler, MicroProfilerSettings
from repro.datasets import make_stream
from repro.models import EdgeModelSpec, Trainer, create_edge_model

NUM_STREAMS = 3
WINDOW_INDEX = 1
SEED = 31


def _measure_errors():
    settings = MicroProfilerSettings(data_fraction=0.25, profiling_epochs=5)
    profiler = MicroProfiler(settings, seed=SEED)
    configs = default_retraining_grid(
        epochs=(5, 15, 30), layers_trained=(0.5, 1.0), data_fractions=(0.5, 1.0)
    )
    errors = []
    profiling_cost = 0.0
    exhaustive_cost = 0.0
    for stream_index in range(NUM_STREAMS):
        stream = make_stream(
            "cityscapes",
            stream_index,
            seed=SEED,
            samples_per_window=200,
            eval_samples_per_window=120,
        )
        spec = EdgeModelSpec(
            feature_dim=stream.feature_dim, num_classes=stream.taxonomy.num_classes
        )
        model = create_edge_model(spec, seed=SEED + stream_index)
        trainer = Trainer(seed=SEED + stream_index)
        trainer.train(model, stream.window(0), RetrainingConfig(epochs=10))
        window = stream.window(WINDOW_INDEX)
        for config in configs:
            estimate = profiler.profile_config(model, window, config)
            truth = profiler.exhaustive_profile_config(model, window, config)
            errors.append(estimate.post_retraining_accuracy - truth.post_retraining_accuracy)
            profiling_cost += estimate.profiling_gpu_seconds
            exhaustive_cost += truth.gpu_seconds
    return np.array(errors), profiling_cost, exhaustive_cost


@pytest.mark.benchmark(group="fig11a")
def test_fig11a_estimation_error_distribution(benchmark):
    errors, profiling_cost, exhaustive_cost = benchmark.pedantic(
        _measure_errors, rounds=1, iterations=1
    )

    median_abs = float(np.median(np.abs(errors)))
    bias = float(np.mean(errors))
    rows = [
        ["median absolute error", f"{median_abs * 100:.1f} %"],
        ["mean error (bias)", f"{bias * 100:+.1f} %"],
        ["90th pct absolute error", f"{np.percentile(np.abs(errors), 90) * 100:.1f} %"],
        ["profiling GPU-seconds", f"{profiling_cost:.1f}"],
        ["exhaustive GPU-seconds", f"{exhaustive_cost:.1f}"],
        ["profiling cost saving", f"{exhaustive_cost / max(profiling_cost, 1e-9):.1f}x"],
    ]
    print_table("Figure 11a: micro-profiler estimation error (paper: 5.8 % median)", rows)

    # Errors are small and largely unbiased.
    assert median_abs < 0.15
    assert abs(bias) < 0.10
    # Micro-profiling is far cheaper than exhaustive profiling
    # (paper: ~100x; the small substrate still shows a large multiple).
    assert exhaustive_cost / profiling_cost > 5
