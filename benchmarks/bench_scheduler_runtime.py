"""§6.3: thief-scheduler decision latency at the paper's operating point.

The paper reports 9.4 s to schedule 10 video streams across 8 GPUs with 18
retraining configurations per model and Δ = 0.1 for a 200 s retraining window
(i.e. < 5 % of the window).  Absolute runtimes differ by machine, so besides
the window-fraction bound this benchmark A/B-tests the optimised hot path
(integer-quantum lattice + vectorised candidate tables + incremental window
objective) against a same-machine port of the seed implementation (full
PickConfigs sweep and vector copy per candidate steal): the optimised
scheduler must be ≥5× faster in wall-clock, run ≥10× fewer PickConfigs
evaluations, and lose nothing in estimated accuracy.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from scheduler_bench_core import (
    DELTA,
    NUM_GPUS,
    NUM_STREAMS,
    WINDOW_SECONDS,
    build_request,
    schedule_with_placement,
    seed_reference_schedule,
)


@pytest.mark.benchmark(group="scheduler-runtime")
def test_scheduler_runtime_and_placement(benchmark):
    schedule, placement = benchmark(schedule_with_placement)

    reference_accuracy, reference_runtime, reference_invocations, reference_computed = (
        seed_reference_schedule(build_request())
    )
    # Best-of-3 on both sides so the asserted ratio reflects the code paths,
    # not scheduler jitter on a loaded machine.
    runtime = min(
        [schedule.scheduler_runtime_seconds]
        + [schedule_with_placement()[0].scheduler_runtime_seconds for _ in range(2)]
    )
    reference_runtime = min(
        [reference_runtime]
        + [seed_reference_schedule(build_request())[1] for _ in range(2)]
    )
    speedup = reference_runtime / runtime
    evaluation_reduction = reference_invocations / schedule.pick_configs_evaluations

    rows = [
        ["streams x GPUs x configs", f"{NUM_STREAMS} x {NUM_GPUS} x 18 (delta={DELTA})"],
        ["scheduler runtime (best of 3)", f"{runtime * 1000:.1f} ms"],
        ["fraction of 200 s window", f"{runtime / WINDOW_SECONDS * 100:.3f} %"],
        ["candidate allocations evaluated", schedule.iterations],
        ["PickConfigs evaluations (vectorised)", schedule.pick_configs_evaluations],
        ["estimated average accuracy", f"{schedule.estimated_average_accuracy:.6f}"],
        ["seed-path runtime (same machine)", f"{reference_runtime * 1000:.1f} ms"],
        ["seed-path PickConfigs invocations", reference_invocations],
        ["seed-path per-stream evaluations", reference_computed],
        ["wall-clock speedup vs seed path", f"{speedup:.1f}x"],
        ["PickConfigs evaluation reduction", f"{evaluation_reduction:.1f}x"],
        ["allocation lost to quantisation", f"{placement.allocation_loss():.2f} GPUs"],
    ]
    print_table("§6.3: scheduler decision cost (paper: 9.4 s, 4.7 % of window)", rows)

    # The decision must be a small fraction of the retraining window.
    assert schedule.scheduler_runtime_seconds < 0.05 * WINDOW_SECONDS
    # And the schedule must be placeable with bounded quantisation loss
    # (single inverse-power-of-two pieces can lose close to half of a small
    # fractional allocation, so the bound is loose but still meaningful).
    assert placement.allocation_loss() < 0.35 * NUM_GPUS

    # Hot-path acceptance: >=5x wall clock, >=10x fewer PickConfigs
    # evaluations, identical-or-better estimated accuracy than the seed
    # implementation on the same seeds.
    assert speedup >= 5.0
    assert evaluation_reduction >= 10.0
    assert (
        schedule.estimated_average_accuracy >= reference_accuracy - 1e-12
    )
