"""§6.3: thief-scheduler decision latency at the paper's operating point.

The paper reports 9.4 s to schedule 10 video streams across 8 GPUs with 18
retraining configurations per model and Δ = 0.1 for a 200 s retraining window
(i.e. < 5 % of the window).  Absolute runtimes differ by machine and by the
per-stream caching this implementation adds, but the decision must remain a
small fraction of the window, and this benchmark also reports quantisation
loss when the resulting allocations are placed onto physical GPUs.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.cluster import GPUFleet, place_jobs
from repro.configs import ConfigurationSpace, default_inference_configs, default_retraining_grid
from repro.core import EkyaPolicy, OracleProfileSource
from repro.datasets import make_workload
from repro.cluster import EdgeServerSpec
from repro.profiles import AnalyticDynamics

NUM_STREAMS = 10
NUM_GPUS = 8
WINDOW_SECONDS = 200.0
DELTA = 0.1
SEED = 0


def _schedule_once():
    # 18 retraining configurations per model, as in §6.3.
    retraining_configs = default_retraining_grid(
        epochs=(5, 15, 30), layers_trained=(0.5, 1.0), data_fractions=(0.2, 0.5, 1.0)
    )[:18]
    space = ConfigurationSpace(
        retraining_configs=retraining_configs,
        inference_configs=default_inference_configs(
            sampling_rates=(1.0, 0.5, 0.25), resolution_scales=(1.0, 0.5)
        ),
    )
    streams = make_workload("cityscapes", NUM_STREAMS, seed=SEED)
    spec = EdgeServerSpec(
        num_gpus=NUM_GPUS, delta=DELTA, window_duration=WINDOW_SECONDS
    )
    dynamics = AnalyticDynamics(seed=SEED)
    policy = EkyaPolicy(OracleProfileSource(dynamics, seed=SEED), space, steal_quantum=DELTA)
    schedule = policy.plan_window(streams, 0, spec)
    placement = place_jobs(schedule.allocation_map(), GPUFleet(NUM_GPUS))
    return schedule, placement


@pytest.mark.benchmark(group="scheduler-runtime")
def test_scheduler_runtime_and_placement(benchmark):
    schedule, placement = benchmark(_schedule_once)

    rows = [
        ["streams x GPUs x configs", f"{NUM_STREAMS} x {NUM_GPUS} x 18"],
        ["scheduler runtime", f"{schedule.scheduler_runtime_seconds * 1000:.1f} ms"],
        ["fraction of 200 s window", f"{schedule.scheduler_runtime_seconds / WINDOW_SECONDS * 100:.3f} %"],
        ["PickConfigs evaluations", schedule.iterations],
        ["allocation lost to quantisation", f"{placement.allocation_loss():.2f} GPUs"],
    ]
    print_table("§6.3: scheduler decision cost (paper: 9.4 s, 4.7 % of window)", rows)

    # The decision must be a small fraction of the retraining window.
    assert schedule.scheduler_runtime_seconds < 0.05 * WINDOW_SECONDS
    # And the schedule must be placeable with bounded quantisation loss
    # (single inverse-power-of-two pieces can lose close to half of a small
    # fractional allocation, so the bound is loose but still meaningful).
    assert placement.allocation_loss() < 0.35 * NUM_GPUS
