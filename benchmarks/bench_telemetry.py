"""Telemetry-plane memory and throughput benchmark.

The point of the bounded-memory telemetry plane is that observability cost
is a function of its *configuration*, not of how long the simulation runs:
the event ring, per-stream series rings and the stats table are fixed-size
(or grow with the stream/site population, never with the window count).
This benchmark proves it at the fleet sweep's largest point — 16 sites ×
400 streams — by running 3 and 30 windows and asserting the telemetry
footprint stays flat within 10 %, while also reporting events/sec through
the ring and the process peak RSS::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

``run_benchmarks.py --quick`` runs the smaller committed-baseline shape
(``benchmarks/baselines/telemetry_baseline.json``) as a CI memory-bound
gate; the full point is appended to ``BENCH_fleet.json`` under a
``telemetry`` key.
"""

from __future__ import annotations

import resource
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_io import append_trajectory, load_json_if_exists  # noqa: E402
from fleet_bench_core import BENCH_FLEET_JSON_PATH, build_fleet_simulator  # noqa: E402

TELEMETRY_BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "telemetry_baseline.json"

#: The fleet sweep's largest point: 16 sites × 25 streams/site = 400 streams.
FULL_SITES = 16
FULL_STREAMS_PER_SITE = 25
#: Window counts the flatness assertion compares (10× more simulated time
#: must not grow the telemetry footprint by more than the bound below).
FULL_WINDOWS = (3, 30)
#: Maximum allowed footprint growth ratio between the two window counts.
FLATNESS_BOUND = 1.10


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in KiB (Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def measure_telemetry_point(
    num_sites: int, streams_per_site: int, num_windows: int
) -> Dict:
    """Run one fleet shape and report the telemetry plane's accounting."""
    simulator = build_fleet_simulator(num_sites, streams_per_site)
    result = simulator.run(num_windows)
    wall = result.wall_clock_seconds
    report = simulator.telemetry.memory_report()
    events = report["events_recorded"]
    return {
        "num_sites": num_sites,
        "num_streams": num_sites * streams_per_site,
        "num_windows": num_windows,
        "wall_clock_seconds": wall,
        "events_recorded": events,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "events_dropped": report["events_dropped"],
        "ring_occupancy": report["ring_occupancy"],
        "ring_capacity": report["ring_capacity"],
        "site_stat_rows": report["site_stat_rows"],
        "sampled_series_streams": report["sampled_series_streams"],
        "telemetry_bytes": report["telemetry_bytes"],
        "peak_rss_kb": peak_rss_kb(),
    }


def measure_telemetry_scaling(
    *,
    num_sites: int = FULL_SITES,
    streams_per_site: int = FULL_STREAMS_PER_SITE,
    windows: Sequence[int] = FULL_WINDOWS,
) -> Dict:
    """Telemetry footprint across window counts at one fleet shape."""
    points = [
        measure_telemetry_point(num_sites, streams_per_site, num_windows)
        for num_windows in windows
    ]
    smallest, largest = points[0], points[-1]
    return {
        "points": points,
        "footprint_growth_ratio": largest["telemetry_bytes"] / smallest["telemetry_bytes"],
    }


def check_telemetry_bound(scaling: Dict, baseline: Dict) -> List[str]:
    """Memory-bound assertions for a measured telemetry scaling result.

    Three gates: the footprint must stay flat across window counts (within
    the committed growth ratio), stay under the committed absolute byte
    bound, and the default-sized ring must not have evicted anything (the
    parity gates rely on ``event_trace`` staying complete at these scales).
    """
    failures = []
    max_growth = baseline.get("max_growth_ratio", FLATNESS_BOUND)
    growth = scaling["footprint_growth_ratio"]
    if growth > max_growth:
        small, large = scaling["points"][0], scaling["points"][-1]
        failures.append(
            f"telemetry footprint grew {growth:.3f}x from "
            f"{small['num_windows']} to {large['num_windows']} windows "
            f"({small['telemetry_bytes']} -> {large['telemetry_bytes']} bytes; "
            f"bound {max_growth:.2f}x) — the plane is no longer bounded"
        )
    max_bytes = baseline.get("max_telemetry_bytes")
    for point in scaling["points"]:
        if max_bytes is not None and point["telemetry_bytes"] > max_bytes:
            failures.append(
                f"telemetry footprint {point['telemetry_bytes']} bytes at "
                f"{point['num_windows']} windows exceeds the committed bound "
                f"{max_bytes}"
            )
        if point["events_dropped"] != 0:
            failures.append(
                f"default-sized ring evicted {point['events_dropped']} events "
                f"at {point['num_sites']} sites x {point['num_windows']} "
                f"windows — event_trace completeness (and the parity gates "
                f"reading it) is no longer guaranteed at benchmark scales"
            )
    return failures


def load_telemetry_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    return load_json_if_exists(path if path is not None else TELEMETRY_BASELINE_PATH)


def check_quick_telemetry_bound(path: Optional[Path] = None) -> List[str]:
    """The ``run_benchmarks.py --quick`` gate: committed quick-shape bound."""
    baseline = load_telemetry_baseline(path)
    if baseline is None:
        return []
    quick = baseline["quick"]
    scaling = measure_telemetry_scaling(
        num_sites=quick["num_sites"],
        streams_per_site=quick["streams_per_site"],
        windows=quick["windows"],
    )
    return check_telemetry_bound(scaling, quick)


def main(argv=None) -> int:
    print(
        f"measuring telemetry footprint at {FULL_SITES} sites x "
        f"{FULL_SITES * FULL_STREAMS_PER_SITE} streams, windows {FULL_WINDOWS}..."
    )
    scaling = measure_telemetry_scaling()
    for point in scaling["points"]:
        print(
            f"  {point['num_windows']:3d} windows: "
            f"{point['telemetry_bytes'] / 1024:7.0f} KiB telemetry | "
            f"{point['events_recorded']:6d} events "
            f"({point['events_per_second']:8.0f}/s) | "
            f"ring {point['ring_occupancy']}/{point['ring_capacity']} "
            f"({point['events_dropped']} dropped) | "
            f"peak RSS {point['peak_rss_kb'] / 1024:.0f} MiB"
        )
    print(f"  footprint growth ratio {scaling['footprint_growth_ratio']:.3f}x")
    path = append_trajectory(BENCH_FLEET_JSON_PATH, {"telemetry": scaling})
    print(f"telemetry trajectory appended to {path}")
    failures = check_telemetry_bound(scaling, {"max_growth_ratio": FLATNESS_BOUND})
    if failures:
        print("TELEMETRY MEMORY BOUND VIOLATED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print(f"telemetry footprint flat within {FLATNESS_BOUND:.2f}x across windows")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
