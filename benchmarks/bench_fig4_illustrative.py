"""Table 1 / Figure 4: the 3-GPU, 2-stream illustrative scheduling example.

The uniform scheduler (even split, always the expensive configuration)
averages 56 % inference accuracy across the two 120 s retraining windows; the
accuracy-optimised scheduler reaches 73 % by picking cheaper configurations,
prioritising the stream with more to gain, and keeping inference above
a_MIN = 40 %.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_table
from repro.cluster import inference_job_id, retraining_job_id
from repro.core import ScheduleRequest, StreamWindowInput, ThiefScheduler, pick_configs
from repro.profiles import table1_scenario


def _request(scenario):
    streams = {
        name: StreamWindowInput(
            stream_name=name,
            profile=profile,
            inference_configs=[scenario.inference_config],
        )
        for name, profile in scenario.profiles.items()
    }
    return ScheduleRequest(
        window_index=scenario.window_index,
        window_seconds=scenario.window_seconds,
        total_gpus=float(scenario.num_gpus),
        delta=0.25,
        a_min=scenario.a_min,
        streams=streams,
    )


def _uniform_window_accuracy(request, scenario):
    allocation = {}
    for name in scenario.profiles:
        allocation[inference_job_id(name)] = 0.75
        allocation[retraining_job_id(name)] = 0.75
    decisions, accuracy = pick_configs(request, allocation)
    return decisions, accuracy


def _run_example():
    thief_scheduler = ThiefScheduler(steal_quantum=0.25)
    per_window = []
    thief_start = None
    uniform_start = None
    for window_index in range(2):
        thief_scenario = table1_scenario(window_index, start_accuracies=thief_start)
        thief_request = _request(thief_scenario)
        thief_schedule = thief_scheduler.schedule(thief_request)

        uniform_scenario = table1_scenario(window_index, start_accuracies=uniform_start)
        uniform_request = _request(uniform_scenario)
        uniform_decisions, uniform_accuracy = _uniform_window_accuracy(
            uniform_request, uniform_scenario
        )

        per_window.append(
            {
                "window": window_index + 1,
                "thief": thief_schedule.estimated_average_accuracy,
                "uniform": uniform_accuracy,
                "thief_decisions": thief_schedule.decisions,
            }
        )

        # Carry end-of-window accuracies into the next window's start.
        thief_start = {}
        for name, decision in thief_schedule.decisions.items():
            profile = thief_scenario.profiles[name]
            if decision.retraining_config is not None:
                thief_start[name] = profile.estimate_for(
                    decision.retraining_config
                ).post_retraining_accuracy
            else:
                thief_start[name] = profile.start_accuracy
        uniform_start = {}
        for name, decision in uniform_decisions.items():
            profile = uniform_scenario.profiles[name]
            if decision.retraining_config is not None:
                uniform_start[name] = profile.estimate_for(
                    decision.retraining_config
                ).post_retraining_accuracy
            else:
                uniform_start[name] = profile.start_accuracy
    return per_window


@pytest.mark.benchmark(group="fig4")
def test_fig4_uniform_vs_accuracy_optimized(benchmark):
    per_window = benchmark.pedantic(_run_example, rounds=1, iterations=1)

    rows = [
        [entry["window"], f"{entry['uniform']:.3f}", f"{entry['thief']:.3f}"]
        for entry in per_window
    ]
    thief_mean = float(np.mean([entry["thief"] for entry in per_window]))
    uniform_mean = float(np.mean([entry["uniform"] for entry in per_window]))
    rows.append(["mean", f"{uniform_mean:.3f}", f"{thief_mean:.3f}"])
    print_table(
        "Figure 4: average inference accuracy (paper: uniform 0.56, optimized 0.73)",
        rows,
        header=["window", "uniform", "thief (Ekya)"],
    )

    # Shape: the thief scheduler clearly beats the uniform scheduler.
    assert thief_mean > uniform_mean + 0.05
    # And lands in the neighbourhood of the paper's 73 % (uniform near 56 %).
    assert thief_mean > 0.65
    assert uniform_mean < thief_mean

    # Window 1: video B (35-point gain) is prioritised for retraining.
    window1 = per_window[0]["thief_decisions"]
    assert window1["video_B"].retrains
