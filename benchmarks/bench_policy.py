"""Control-policy A/B benchmark: greedy vs predictive on seeded calendars.

Replays the three committed reference scenarios of
:mod:`repro.fleet.policy.ab` — flash crowd, WAN degradation, GPU flaps —
under both the default greedy rebalancer and the predictive profit policy,
and reports fleet mean accuracy, the p10 worst-stream accuracy, wasted
GPU-seconds and migration cost per arm.  All metrics are deterministic in
the scenario seed, so the committed baseline
(``benchmarks/baselines/policy_baseline.json``) gates them exactly::

    PYTHONPATH=src python benchmarks/bench_policy.py

``run_benchmarks.py --quick`` runs :func:`check_quick_policy_gate` on
every PR: the greedy arm of the cheapest scenario must reproduce the
committed baseline bit for bit (the policy plane's default path must never
drift), and the predictive arm must not regress the fleet mean below the
greedy arm on that same calendar.  The full run appends the whole A/B
table to ``BENCH_fleet.json`` under a ``policy`` key.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_io import append_trajectory, load_json_if_exists  # noqa: E402
from fleet_bench_core import BENCH_FLEET_JSON_PATH  # noqa: E402

from repro.fleet.policy.ab import (  # noqa: E402
    COMPARED_METRICS,
    reference_scenarios,
    run_policy_ab,
)

POLICY_BASELINE_PATH = (
    Path(__file__).resolve().parent / "baselines" / "policy_baseline.json"
)

#: The scenario the ``--quick`` gate replays (cheapest of the reference set).
QUICK_SCENARIO = "flash_crowd"


def measure_policy_ab() -> Dict:
    """Run the full reference A/B suite; one comparison row per scenario."""
    rows = []
    wins = 0
    for comparison in run_policy_ab():
        wins += comparison.predictive_wins
        rows.append(
            {
                "scenario": comparison.scenario,
                "greedy": dict(comparison.greedy.metrics),
                "predictive": dict(comparison.predictive.metrics),
                "deltas": comparison.deltas,
                "predictive_wins": comparison.predictive_wins,
            }
        )
    return {
        "scenarios": rows,
        "predictive_wins": wins,
        "num_scenarios": len(rows),
    }


def load_policy_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    return load_json_if_exists(path if path is not None else POLICY_BASELINE_PATH)


def check_policy_against_baseline(measured: Dict, baseline: Dict) -> List[str]:
    """Exact-match gate: the A/B table is deterministic in the seeds.

    The greedy arm is additionally the *default* control plane, so any
    drift there is a silent behaviour change of every existing fleet run;
    the predictive arm drifting means the profit model changed without the
    committed baseline being regenerated deliberately.
    """
    failures: List[str] = []
    base_rows = {row["scenario"]: row for row in baseline.get("scenarios", [])}
    for row in measured["scenarios"]:
        base = base_rows.get(row["scenario"])
        if base is None:
            failures.append(
                f"committed policy baseline has no {row['scenario']!r} scenario"
            )
            continue
        for arm in ("greedy", "predictive"):
            for metric in COMPARED_METRICS:
                got, want = row[arm][metric], base[arm][metric]
                if got != want:
                    failures.append(
                        f"{row['scenario']} {arm} {metric} is {got!r}, committed "
                        f"baseline says {want!r} (must match exactly)"
                    )
    base_wins = baseline.get("predictive_wins")
    if base_wins is not None and measured["predictive_wins"] < base_wins:
        failures.append(
            f"predictive wins {measured['predictive_wins']} of "
            f"{measured['num_scenarios']} scenarios, committed baseline "
            f"says {base_wins}"
        )
    return failures


def check_quick_policy_gate(path: Optional[Path] = None) -> List[str]:
    """The ``run_benchmarks.py --quick`` gate: one scenario, both arms.

    Replays the cheapest reference scenario under both policies and checks
    (a) the greedy arm reproduces the committed baseline bit for bit — the
    policy refactor's default path must stay the pre-policy engine — and
    (b) the predictive arm's fleet mean does not regress below the greedy
    arm on the identical calendar.
    """
    baseline = load_policy_baseline(path)
    specs = [spec for spec in reference_scenarios() if spec.name == QUICK_SCENARIO]
    comparison = run_policy_ab(specs)[0]
    failures: List[str] = []
    if baseline is not None:
        base_rows = {row["scenario"]: row for row in baseline.get("scenarios", [])}
        base = base_rows.get(QUICK_SCENARIO)
        if base is None:
            failures.append(
                f"committed policy baseline has no {QUICK_SCENARIO!r} scenario "
                "to check the quick gate against"
            )
        else:
            for metric in COMPARED_METRICS:
                got, want = comparison.greedy.metrics[metric], base["greedy"][metric]
                if got != want:
                    failures.append(
                        f"default-policy {QUICK_SCENARIO} {metric} is {got!r}, "
                        f"committed baseline says {want!r} (must match exactly)"
                    )
    greedy_mean = comparison.greedy.metrics["mean_accuracy"]
    predictive_mean = comparison.predictive.metrics["mean_accuracy"]
    if predictive_mean < greedy_mean - 1e-9:
        failures.append(
            f"predictive fleet mean {predictive_mean:.6f} regressed below the "
            f"greedy arm {greedy_mean:.6f} on the {QUICK_SCENARIO} calendar"
        )
    return failures


def main(argv=None) -> int:
    print("measuring control-policy A/B (greedy vs predictive, 3 scenarios)...")
    measured = measure_policy_ab()
    for row in measured["scenarios"]:
        print(
            f"  {row['scenario']:16s} "
            f"p10 {row['greedy']['p10_worst_stream_accuracy']:.4f} -> "
            f"{row['predictive']['p10_worst_stream_accuracy']:.4f} | "
            f"wasted {row['greedy']['wasted_gpu_seconds']:7.2f} -> "
            f"{row['predictive']['wasted_gpu_seconds']:7.2f} GPU-s | "
            f"{'win' if row['predictive_wins'] else 'tie/loss'}"
        )
    print(
        f"  predictive wins {measured['predictive_wins']} of "
        f"{measured['num_scenarios']} scenarios"
    )
    path = append_trajectory(BENCH_FLEET_JSON_PATH, {"policy": measured})
    print(f"policy trajectory appended to {path}")
    baseline = load_policy_baseline()
    if baseline is None:
        print(f"no committed policy baseline at {POLICY_BASELINE_PATH}; not gated")
        return 0
    failures = check_policy_against_baseline(measured, baseline)
    if failures:
        print("POLICY REGRESSION DETECTED:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("policy A/B matches the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
