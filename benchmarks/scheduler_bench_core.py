"""Shared measurement core for the scheduler benchmarks.

Used by ``bench_scheduler_runtime.py`` (paper operating point, §6.3),
``bench_scheduler_scaling.py`` (10 → 100 streams) and the
``run_benchmarks.py`` entry point.  The module also carries a faithful port
of the *seed* thief hot path — full PickConfigs sweep per candidate steal,
vector copy per candidate, rounded-float cache keys — so every run measures
the optimised path against the pre-lattice implementation on the same
machine, making the reported speedups load- and hardware-independent.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_io import append_trajectory, load_json_if_exists
from repro.cluster import EdgeServerSpec, GPUFleet, inference_job_id, place_jobs, retraining_job_id
from repro.configs import ConfigurationSpace, default_inference_configs, default_retraining_grid
from repro.core import EkyaPolicy, OracleProfileSource, ThiefScheduler
from repro.core.batched_planner import BatchedThiefScheduler
from repro.core.pick_configs import pick_configs_for_stream
from repro.datasets import make_workload
from repro.profiles import AnalyticDynamics
from repro.utils.math_utils import safe_mean

#: The paper's §6.3 operating point.
NUM_STREAMS = 10
NUM_GPUS = 8
WINDOW_SECONDS = 200.0
DELTA = 0.1
SEED = 0

#: Default location of the emitted benchmark trajectory.
BENCH_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_scheduler.json"
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "scheduler_baseline.json"

#: The large-fleet point the batched-planner gate measures (the scaling
#: sweep's 100-stream point).
BATCHED_NUM_STREAMS = 100


def build_request(num_streams: int = NUM_STREAMS, num_gpus: int = NUM_GPUS, seed: int = SEED):
    """The §6.3 scheduling problem: N streams × G GPUs × 18 configs, Δ=0.1."""
    retraining_configs = default_retraining_grid(
        epochs=(5, 15, 30), layers_trained=(0.5, 1.0), data_fractions=(0.2, 0.5, 1.0)
    )[:18]
    space = ConfigurationSpace(
        retraining_configs=retraining_configs,
        inference_configs=default_inference_configs(
            sampling_rates=(1.0, 0.5, 0.25), resolution_scales=(1.0, 0.5)
        ),
    )
    streams = make_workload("cityscapes", num_streams, seed=seed)
    spec = EdgeServerSpec(num_gpus=num_gpus, delta=DELTA, window_duration=WINDOW_SECONDS)
    dynamics = AnalyticDynamics(seed=seed)
    policy = EkyaPolicy(OracleProfileSource(dynamics, seed=seed), space, steal_quantum=DELTA)
    return policy.build_request(streams, 0, spec)


def schedule_with_placement(num_streams: int = NUM_STREAMS, num_gpus: int = NUM_GPUS):
    """Run the optimised thief at the operating point and place the result."""
    request = build_request(num_streams=num_streams, num_gpus=num_gpus)
    schedule = ThiefScheduler(steal_quantum=DELTA).schedule(request)
    placement = place_jobs(schedule.allocation_map(), GPUFleet(num_gpus))
    return schedule, placement


def seed_reference_schedule(request, *, quantum: float = DELTA, patience: int = 4):
    """The seed implementation's hot path, preserved for same-machine A/B.

    Per candidate steal it copies the allocation vector and re-evaluates
    PickConfigs over *all* streams, memoising per-stream decisions on the
    seed's rounded-float keys.  The steal trajectory (fair start, sweep
    order, patience) matches the optimised scheduler, so on fixed seeds both
    produce identical schedules and only the decision cost differs.

    Returns ``(mean_accuracy, runtime_seconds, pick_configs_invocations,
    per_stream_evaluations)``.
    """
    started = time.perf_counter()
    cache: Dict = {}
    computed = [0]

    def evaluate(vector):
        allocation = vector.as_dict()
        decisions = {}
        for name, stream_input in request.streams.items():
            inference_gpu = float(allocation.get(inference_job_id(name), 0.0))
            retraining_gpu = float(allocation.get(retraining_job_id(name), 0.0))
            key = (name, round(inference_gpu, 6), round(retraining_gpu, 6))
            if key in cache:
                decisions[name] = cache[key]
                continue
            computed[0] += 1
            decision = pick_configs_for_stream(
                stream_input,
                inference_gpu,
                retraining_gpu,
                window_seconds=request.window_seconds,
                a_min=request.a_min,
            )
            decisions[name] = decision
            cache[key] = decision
        return decisions, safe_mean(
            [d.estimated_average_accuracy for d in decisions.values()]
        )

    job_ids: List[str] = []
    for name in request.streams:
        job_ids.append(inference_job_id(name))
        job_ids.append(retraining_job_id(name))
    best_alloc = ThiefScheduler.fair_start(request, quantum)
    best_configs, best_accuracy = evaluate(best_alloc)
    iterations = 1
    for thief_job in job_ids:
        for victim_job in job_ids:
            if thief_job == victim_job:
                continue
            temp_alloc = best_alloc.copy()
            misses = 0
            while True:
                if not temp_alloc.steal(thief_job, victim_job, quantum):
                    break
                temp_configs, accuracy = evaluate(temp_alloc)
                iterations += 1
                if accuracy > best_accuracy + 1e-12:
                    best_alloc = temp_alloc.copy()
                    best_accuracy = accuracy
                    best_configs = temp_configs
                    misses = 0
                else:
                    misses += 1
                    if misses >= patience:
                        break
    runtime = time.perf_counter() - started
    return float(best_accuracy), runtime, iterations, computed[0]


def measure_operating_point(*, with_reference: bool = True) -> Dict:
    """Optimised-vs-seed metrics at the §6.3 operating point."""
    schedule, placement = schedule_with_placement()
    metrics = {
        "num_streams": NUM_STREAMS,
        "num_gpus": NUM_GPUS,
        "num_retraining_configs": 18,
        "delta": DELTA,
        "window_seconds": WINDOW_SECONDS,
        "scheduler_runtime_seconds": schedule.scheduler_runtime_seconds,
        "iterations": schedule.iterations,
        "pick_configs_evaluations": schedule.pick_configs_evaluations,
        "estimated_average_accuracy": schedule.estimated_average_accuracy,
        "placement_allocation_loss_gpus": placement.allocation_loss(),
    }
    if with_reference:
        request = build_request()
        ref_accuracy, ref_runtime, ref_invocations, ref_computed = seed_reference_schedule(
            request
        )
        metrics.update(
            {
                "reference_runtime_seconds": ref_runtime,
                "reference_pick_configs_invocations": ref_invocations,
                "reference_per_stream_evaluations": ref_computed,
                "reference_estimated_average_accuracy": ref_accuracy,
                "wall_clock_speedup": ref_runtime / schedule.scheduler_runtime_seconds,
                "pick_configs_reduction": ref_invocations
                / schedule.pick_configs_evaluations,
            }
        )
    return metrics


def measure_scaling(stream_counts=(10, 25, 50, 100)) -> List[Dict]:
    """Runtime / evaluation trajectory for growing stream counts."""
    rows = []
    for count in stream_counts:
        schedule, placement = schedule_with_placement(num_streams=count)
        rows.append(
            {
                "num_streams": count,
                "num_gpus": NUM_GPUS,
                "scheduler_runtime_seconds": schedule.scheduler_runtime_seconds,
                "iterations": schedule.iterations,
                "pick_configs_evaluations": schedule.pick_configs_evaluations,
                "estimated_average_accuracy": schedule.estimated_average_accuracy,
                "window_fraction": schedule.scheduler_runtime_seconds / WINDOW_SECONDS,
            }
        )
    return rows


def measure_batched_planner(
    num_streams: int = BATCHED_NUM_STREAMS,
    num_gpus: int = NUM_GPUS,
    *,
    repeats: int = 5,
) -> Dict:
    """Scalar-vs-batched thief A/B at the large-fleet point, same machine.

    Runs both schedulers ``repeats`` times over the identical request —
    interleaved, after one untimed warmup pair so neither path pays numpy's
    first-touch costs — and keeps each path's best wall-clock (the speedup
    is a same-machine ratio, so it stays meaningful on hardware the
    baseline never saw).  Also checks full equivalence — decisions,
    iteration and evaluation counters, the estimated accuracy — which the
    committed gate requires bit for bit.
    """
    request = build_request(num_streams=num_streams, num_gpus=num_gpus)
    ThiefScheduler(steal_quantum=DELTA).schedule(request)
    BatchedThiefScheduler(steal_quantum=DELTA).schedule(request)
    scalar_times: List[float] = []
    batched_times: List[float] = []
    scalar_schedule = batched_schedule = None
    for _ in range(repeats):
        started = time.perf_counter()
        scalar_schedule = ThiefScheduler(steal_quantum=DELTA).schedule(request)
        scalar_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        batched_schedule = BatchedThiefScheduler(steal_quantum=DELTA).schedule(request)
        batched_times.append(time.perf_counter() - started)
    identical = (
        scalar_schedule.iterations == batched_schedule.iterations
        and scalar_schedule.pick_configs_evaluations
        == batched_schedule.pick_configs_evaluations
        and scalar_schedule.estimated_average_accuracy
        == batched_schedule.estimated_average_accuracy
        and scalar_schedule.decisions == batched_schedule.decisions
    )
    scalar_runtime = min(scalar_times)
    batched_runtime = min(batched_times)
    return {
        "num_streams": num_streams,
        "num_gpus": num_gpus,
        "repeats": repeats,
        "scalar_runtime_seconds": scalar_runtime,
        "batched_runtime_seconds": batched_runtime,
        "batched_speedup": scalar_runtime / batched_runtime,
        "decisions_identical": identical,
        "iterations": batched_schedule.iterations,
        "pick_configs_evaluations": batched_schedule.pick_configs_evaluations,
        "estimated_average_accuracy": batched_schedule.estimated_average_accuracy,
    }


def emit_bench_json(
    operating_point: Dict,
    scaling: List[Dict],
    path: Optional[Path] = None,
    *,
    batched: Optional[Dict] = None,
) -> Path:
    """Append one timestamped entry to the ``BENCH_scheduler.json`` trajectory."""
    entry = {"operating_point": operating_point, "scaling": scaling}
    if batched is not None:
        entry["batched_planner"] = batched
    return append_trajectory(path if path is not None else BENCH_JSON_PATH, entry)


def load_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    return load_json_if_exists(path if path is not None else BASELINE_PATH)
