"""Figure 2: class-distribution drift and the benefit of continuous learning.

Figure 2a plots how the class mix of one Cityscapes stream changes across ten
retraining windows; Figure 2b compares the inference accuracy of (1) a model
continuously retrained on the most recent data, (2) a model trained once on
the first five windows, and (3) a model trained on other streams ("other
cities").  The continuously retrained model should win, by up to ~22 %.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import print_table
from repro.configs import RetrainingConfig
from repro.datasets import make_stream
from repro.models import EdgeModelSpec, ExemplarReplayLearner, Trainer, create_edge_model

WINDOWS = 10
EVAL_WINDOWS = range(5, 10)
CONFIG = RetrainingConfig(epochs=15)


def _stream(index: int = 0, seed: int = 17):
    return make_stream(
        "cityscapes", index, seed=seed, samples_per_window=200, eval_samples_per_window=120
    )


def _run_figure2():
    stream = _stream(0)
    other_city = _stream(1)
    spec = EdgeModelSpec(feature_dim=stream.feature_dim, num_classes=stream.taxonomy.num_classes)
    trainer = Trainer(seed=17)

    # (1) Continuous retraining on the most recent window.
    continual_model = create_edge_model(spec, seed=17)
    trainer.train(continual_model, stream.window(0), CONFIG)
    learner = ExemplarReplayLearner(continual_model, seed=17)

    # (2) Trained once on the first five windows of this stream.
    train_once = create_edge_model(spec, seed=17)
    for window_index in range(5):
        trainer.train(train_once, stream.window(window_index), CONFIG)

    # (3) Trained on a different stream ("other cities").
    other_model = create_edge_model(spec, seed=17)
    for window_index in range(5):
        trainer.train(other_model, other_city.window(window_index), CONFIG)

    class_distributions = {w: stream.class_distribution(w) for w in range(WINDOWS)}
    accuracy = {"continuous": [], "train_once": [], "other_cities": []}
    for window_index in EVAL_WINDOWS:
        window = stream.window(window_index)
        learner.retrain(window, CONFIG)
        accuracy["continuous"].append(learner.evaluate(window))
        accuracy["train_once"].append(trainer.evaluate(train_once, window))
        accuracy["other_cities"].append(trainer.evaluate(other_model, window))
    return class_distributions, accuracy


@pytest.mark.benchmark(group="fig2")
def test_fig2_continuous_learning_benefit(benchmark):
    class_distributions, accuracy = benchmark.pedantic(_run_figure2, rounds=1, iterations=1)

    print_table(
        "Figure 2a: class distribution per retraining window",
        [
            [w] + [f"{p:.2f}" for p in dist]
            for w, dist in sorted(class_distributions.items())
        ],
        header=["window", "bicycle", "bus", "car", "motorcycle", "person", "truck"],
    )
    print_table(
        "Figure 2b: inference accuracy on windows 6-10",
        [
            [name] + [f"{a:.3f}" for a in values] + [f"mean={np.mean(values):.3f}"]
            for name, values in accuracy.items()
        ],
    )

    continuous = float(np.mean(accuracy["continuous"]))
    train_once = float(np.mean(accuracy["train_once"]))
    other = float(np.mean(accuracy["other_cities"]))
    # Shape checks from the paper: continuous >= train-once >= other-cities.
    assert continuous > train_once
    assert train_once >= other - 0.05
    # The continuous-learning gain is sizable (paper: up to 22 %).
    assert continuous - other > 0.05
