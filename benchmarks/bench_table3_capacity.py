"""Table 3: capacity (streams supported at accuracy >= 0.75) vs provisioned GPUs.

The paper derives, from the Figure 6 curves, how many concurrent streams each
scheduler can support subject to an accuracy target of 0.75, at 1 and 2
provisioned GPUs, and reports the scaling factor (Ekya: 2 -> 8 streams, 4x;
uniform variants: 1x-2x).  We reproduce the same derivation; the capacity
threshold is configurable because absolute accuracies differ on the synthetic
substrate.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.simulation import capacity_table

POLICIES = ["ekya", "uniform_c1_50", "uniform_c2_30", "uniform_c2_50", "uniform_c2_90"]
STREAM_COUNTS = (2, 4, 6, 8)
GPU_COUNTS = (1, 2)
#: Accuracy target for "supported".  The paper uses 0.75 on its testbed; the
#: synthetic substrate's absolute accuracies are a little lower, so the target
#: is set to keep the derivation meaningful (capacities neither all-zero nor
#: all-maximal).
THRESHOLD = 0.62
NUM_WINDOWS = 6
SEED = 0


def _run():
    return capacity_table(
        POLICIES,
        gpu_counts=GPU_COUNTS,
        stream_counts=STREAM_COUNTS,
        dataset="cityscapes",
        threshold=THRESHOLD,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )


@pytest.mark.benchmark(group="table3")
def test_table3_capacity_scaling(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for name, entry in sorted(table.items()):
        capacities = entry["capacity_by_gpus"]
        factor = entry["scaling_factor"]
        rows.append(
            [
                name,
                capacities[GPU_COUNTS[0]],
                capacities[GPU_COUNTS[-1]],
                "-" if factor is None else f"{factor:.1f}x",
            ]
        )
    print_table(
        f"Table 3: capacity at accuracy >= {THRESHOLD} vs provisioned GPUs",
        rows,
        header=["scheduler", f"{GPU_COUNTS[0]} GPU", f"{GPU_COUNTS[-1]} GPUs", "scaling"],
    )

    ekya = table["Ekya"]
    baselines = {k: v for k, v in table.items() if k != "Ekya"}

    # Ekya's capacity at every GPU count is at least as large as any baseline's.
    for gpus in GPU_COUNTS:
        best_baseline = max(entry["capacity_by_gpus"][gpus] for entry in baselines.values())
        assert ekya["capacity_by_gpus"][gpus] >= best_baseline

    # Ekya scales at least as fast as the best baseline when GPUs are added —
    # unless its capacity hits the sweep's stream-count ceiling at either
    # provisioning, in which case the measured factor is clipped from above
    # (a *higher* starting capacity then reads as a *lower* factor) and the
    # comparison is not informative.
    ekya_clipped = ekya["capacity_by_gpus"][GPU_COUNTS[-1]] >= max(STREAM_COUNTS)
    ekya_saturated = ekya["capacity_by_gpus"][GPU_COUNTS[0]] >= max(STREAM_COUNTS)
    baseline_factors = [
        entry["scaling_factor"] for entry in baselines.values() if entry["scaling_factor"]
    ]
    if (
        not ekya_saturated
        and not ekya_clipped
        and ekya["scaling_factor"] is not None
        and baseline_factors
    ):
        assert ekya["scaling_factor"] >= max(baseline_factors) - 1e-9
