"""Figure 11b: Ekya's robustness to micro-profiler estimation error.

A controlled Gaussian error is injected into the profiler's accuracy
predictions; with up to 20 % error the paper observes at most a ~3 % accuracy
drop, and even 50 % error does not collapse the system below the uniform
baseline.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.simulation import error_sensitivity, run_experiment

ERROR_LEVELS = (0.0, 0.05, 0.1, 0.2, 0.5)
GPU_COUNTS = (1, 2, 4, 8)
NUM_STREAMS = 10
NUM_WINDOWS = 5
SEED = 0


def _run():
    table = error_sensitivity(
        ERROR_LEVELS,
        dataset="cityscapes",
        num_streams=NUM_STREAMS,
        gpu_counts=GPU_COUNTS,
        num_windows=NUM_WINDOWS,
        seed=SEED,
    )
    uniform = {
        gpus: run_experiment(
            "uniform_c2_50",
            dataset="cityscapes",
            num_streams=NUM_STREAMS,
            num_gpus=gpus,
            num_windows=NUM_WINDOWS,
            seed=SEED,
        ).mean_accuracy
        for gpus in GPU_COUNTS
    }
    return table, uniform


@pytest.mark.benchmark(group="fig11b")
def test_fig11b_robustness_to_estimation_error(benchmark):
    table, uniform = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [f"eps={int(error * 100)}%"] + [f"{table[error][gpus]:.3f}" for gpus in GPU_COUNTS]
        for error in ERROR_LEVELS
    ]
    rows.append(["uniform (C2, 50%)"] + [f"{uniform[gpus]:.3f}" for gpus in GPU_COUNTS])
    print_table(
        "Figure 11b: Ekya accuracy under injected profiler error",
        rows,
        header=["error"] + [f"{g} GPU" for g in GPU_COUNTS],
    )

    # Moderate error (<= 20 %) costs only a few accuracy points versus a
    # perfect profiler (paper: at most ~3 %; we allow 6 %).
    for gpus in GPU_COUNTS:
        perfect = table[0.0][gpus]
        with_error = table[0.2][gpus]
        assert perfect - with_error < 0.06

    # Even with large error Ekya does not fall meaningfully below the uniform
    # baseline at the stressed end.
    assert table[0.5][GPU_COUNTS[0]] >= uniform[GPU_COUNTS[0]] - 0.03
