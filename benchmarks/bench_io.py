"""Shared JSON I/O for the benchmark trajectory files and baselines.

Both measurement cores (``scheduler_bench_core``, ``fleet_bench_core``)
append timestamped entries to a ``{"runs": [...]}`` trajectory at the repo
root and load optional committed baselines; the read-modify-write logic
lives here so the envelope format only exists in one place.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional


def append_trajectory(path: Path, entry: Dict) -> Path:
    """Append a timestamped ``entry`` to the ``runs`` trajectory at ``path``."""
    path = Path(path)
    entry = {"timestamp": datetime.now(timezone.utc).isoformat(), **entry}
    runs = []
    if path.exists():
        try:
            runs = json.loads(path.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            runs = []
    runs.append(entry)
    path.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    return path


def load_json_if_exists(path: Path) -> Optional[Dict]:
    """Parse ``path`` as JSON, or ``None`` when no file is committed there."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())
