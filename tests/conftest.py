"""Shared pytest fixtures for the Ekya reproduction test suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the tests straight from a source checkout (without an
# editable install) by putting ``src`` on the path.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import os

import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hypothesis_settings

from repro.cluster import EdgeServer, EdgeServerSpec
from repro.configs import ConfigurationSpace, InferenceConfig, RetrainingConfig
from repro.core import OracleProfileSource
from repro.datasets import DriftProfile, VideoStream, make_workload
from repro.models import EdgeModelSpec, create_edge_model
from repro.profiles import AnalyticDynamics

# ---------------------------------------------------------------------------
# Hypothesis profiles.
#
# "dev" (the default) is stock Hypothesis: fresh random examples every run,
# so local loops keep probing new corners of the strategy space.  "ci" is
# the pinned, derandomized profile the tier-1 CI job selects with
# ``HYPOTHESIS_PROFILE=ci``: example generation is seeded from the test
# itself (no ambient randomness, no example database), so a red CI run
# reproduces locally with the same env var and never flakes green on
# re-run.  ``print_blob`` makes any failure print its
# ``@reproduce_failure`` blob straight into the CI log.
# ---------------------------------------------------------------------------
hypothesis_settings.register_profile("dev", hypothesis_settings.default)
hypothesis_settings.register_profile(
    "ci",
    derandomize=True,
    database=None,
    print_blob=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture()
def small_stream() -> VideoStream:
    """A compact deterministic stream for unit tests."""
    return VideoStream(
        name="test-stream",
        drift_profile=DriftProfile(distribution_volatility=0.3, appearance_volatility=0.2),
        samples_per_window=120,
        eval_samples_per_window=80,
        seed=7,
    )


@pytest.fixture()
def cityscapes_pair():
    """Two cityscapes-like streams sharing a seed."""
    return make_workload("cityscapes", 2, seed=11, samples_per_window=150, eval_samples_per_window=100)


@pytest.fixture()
def small_config_space() -> ConfigurationSpace:
    return ConfigurationSpace.small()


@pytest.fixture()
def tiny_retraining_config() -> RetrainingConfig:
    return RetrainingConfig(epochs=5, data_fraction=0.5, layers_trained_fraction=0.5)


@pytest.fixture()
def full_retraining_config() -> RetrainingConfig:
    return RetrainingConfig(epochs=30, data_fraction=1.0, layers_trained_fraction=1.0)


@pytest.fixture()
def default_inference_config() -> InferenceConfig:
    return InferenceConfig(frame_sampling_rate=1.0, resolution_scale=1.0)


@pytest.fixture()
def analytic_dynamics() -> AnalyticDynamics:
    return AnalyticDynamics(seed=3)


@pytest.fixture()
def oracle_source(analytic_dynamics) -> OracleProfileSource:
    return OracleProfileSource(analytic_dynamics, accuracy_error_std=0.0, seed=5)


@pytest.fixture()
def small_server(cityscapes_pair) -> EdgeServer:
    spec = EdgeServerSpec(num_gpus=1, delta=0.1, window_duration=200.0)
    return EdgeServer(spec, cityscapes_pair)


@pytest.fixture()
def edge_model(small_stream):
    spec = EdgeModelSpec(
        feature_dim=small_stream.feature_dim,
        num_classes=small_stream.taxonomy.num_classes,
    )
    return create_edge_model(spec, seed=1)


@pytest.fixture()
def sanitized_fleet():
    """``make_fleet`` with the plan-phase purity sanitizer armed.

    A factory fixture: call it exactly like
    :func:`repro.fleet.factory.make_fleet`; ``sanitize=True`` is injected
    (overridable) so every ``plan_window`` and control scan in the test is
    purity-guarded.
    """
    from repro.fleet.factory import make_fleet

    def build(*args, **kwargs):
        kwargs.setdefault("sanitize", True)
        return make_fleet(*args, **kwargs)

    return build
