"""Unit tests for micro-profiling and the profile sources."""

import numpy as np
import pytest

from repro.configs import RetrainingConfig
from repro.core import (
    MicroProfiler,
    MicroProfilerSettings,
    MicroProfilingSource,
    OracleProfileSource,
    SharedProfileOracle,
)
from repro.exceptions import ProfilingError
from repro.profiles import (
    AnalyticDynamics,
    FleetProfileStore,
    SubstrateDynamics,
    stream_profile_key,
)


@pytest.fixture()
def configs():
    return [
        RetrainingConfig(epochs=5, data_fraction=0.5, layers_trained_fraction=0.5),
        RetrainingConfig(epochs=15, data_fraction=0.5),
        RetrainingConfig(epochs=30),
    ]


class TestMicroProfilerSettings:
    def test_defaults_valid(self):
        settings = MicroProfilerSettings()
        assert settings.data_fraction == pytest.approx(0.1)
        assert settings.profiling_epochs == 5

    def test_invalid_settings(self):
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(data_fraction=0.0)
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(profiling_epochs=1)
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(holdout_fraction=1.0)
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(max_configs=0)


class TestMicroProfiler:
    def test_profile_config_returns_estimate(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(data_fraction=0.3), seed=0)
        estimate = profiler.profile_config(edge_model, small_stream.window(0), configs[2])
        assert 0.0 <= estimate.post_retraining_accuracy <= 1.0
        assert estimate.gpu_seconds > 0
        assert estimate.profiling_gpu_seconds < estimate.gpu_seconds

    def test_profiling_is_much_cheaper_than_full_training(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(data_fraction=0.1, profiling_epochs=5), seed=0)
        estimate = profiler.profile_config(edge_model, small_stream.window(0), configs[2])
        # §4.3: micro-profiling is ~100x cheaper than exhaustive profiling; on
        # the small substrate the gap is smaller but must still be large.
        assert estimate.profiling_gpu_seconds <= estimate.gpu_seconds / 5

    def test_profile_does_not_mutate_serving_model(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(seed=0)
        before = [layer.weights.copy() for layer in edge_model.layers]
        profiler.profile_config(edge_model, small_stream.window(0), configs[0])
        after = [layer.weights for layer in edge_model.layers]
        for b, a in zip(before, after):
            assert np.allclose(b, a)

    def test_estimate_close_to_ground_truth(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(data_fraction=0.3, profiling_epochs=5), seed=0)
        config = configs[1]
        window = small_stream.window(0)
        estimated = profiler.profile_config(edge_model, window, config).post_retraining_accuracy
        truth = profiler.exhaustive_profile_config(edge_model, window, config).post_retraining_accuracy
        assert abs(estimated - truth) < 0.25

    def test_profile_window_covers_all_configs(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(seed=0)
        profile = profiler.profile_window(edge_model, small_stream.window(0), configs)
        assert len(profile.estimates) == len(configs)
        assert profile.profiling_gpu_seconds > 0

    def test_profile_window_requires_configs(self, small_stream, edge_model):
        profiler = MicroProfiler(seed=0)
        with pytest.raises(ProfilingError):
            profiler.profile_window(edge_model, small_stream.window(0), [])

    def test_profile_window_uses_history_to_prune(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(max_configs=2), seed=0)
        history = {
            configs[0]: (5.0, 0.80),
            configs[1]: (20.0, 0.55),  # dominated: dearer and less accurate
            configs[2]: (60.0, 0.85),
        }
        profile = profiler.profile_window(
            edge_model, small_stream.window(0), configs, history=history
        )
        assert len(profile.estimates) <= 2


class TestOracleProfileSource:
    def test_zero_error_matches_dynamics(self, small_stream, configs):
        dynamics = AnalyticDynamics(seed=0)
        source = OracleProfileSource(dynamics, accuracy_error_std=0.0, seed=1)
        profile = source.profile(small_stream, 2, configs)
        for config in configs:
            assert profile.estimate_for(config).post_retraining_accuracy == pytest.approx(
                dynamics.candidate_post_accuracy(small_stream, 2, config)
            )

    def test_noise_perturbs_estimates(self, small_stream, configs):
        dynamics = AnalyticDynamics(seed=0)
        noisy = OracleProfileSource(dynamics, accuracy_error_std=0.2, seed=1)
        profile = noisy.profile(small_stream, 2, configs)
        diffs = [
            abs(
                profile.estimate_for(config).post_retraining_accuracy
                - dynamics.candidate_post_accuracy(small_stream, 2, config)
            )
            for config in configs
        ]
        assert max(diffs) > 0.01

    def test_noisy_estimates_stay_in_unit_interval(self, small_stream, configs):
        source = OracleProfileSource(AnalyticDynamics(seed=0), accuracy_error_std=0.5, seed=2)
        profile = source.profile(small_stream, 1, configs)
        for estimate in profile.estimates.values():
            assert 0.0 <= estimate.post_retraining_accuracy <= 1.0

    def test_negative_error_std_rejected(self):
        with pytest.raises(ProfilingError):
            OracleProfileSource(AnalyticDynamics(seed=0), accuracy_error_std=-0.1)

    def test_profile_carries_stream_name_and_costs(self, small_stream, configs):
        source = OracleProfileSource(AnalyticDynamics(seed=0))
        profile = source.profile(small_stream, 0, configs)
        assert profile.stream_name == small_stream.name
        assert all(est.gpu_seconds > 0 for est in profile.estimates.values())


class TestMicroProfilingSource:
    def test_end_to_end_profiling_over_substrate(self, small_stream, configs):
        dynamics = SubstrateDynamics(seed=0, exemplars_per_class=10)
        source = MicroProfilingSource(
            dynamics, settings=MicroProfilerSettings(data_fraction=0.3, profiling_epochs=3), seed=0
        )
        profile = source.profile(small_stream, 1, configs)
        assert profile.stream_name == small_stream.name
        assert len(profile.estimates) == len(configs)
        assert (small_stream.name, 1) in source.store

    def test_store_accumulates_history(self, small_stream, configs):
        dynamics = SubstrateDynamics(seed=0, exemplars_per_class=10)
        source = MicroProfilingSource(
            dynamics, settings=MicroProfilerSettings(data_fraction=0.3, profiling_epochs=3), seed=0
        )
        source.profile(small_stream, 0, configs)
        source.profile(small_stream, 1, configs)
        history = source.store.history_for(small_stream.name, up_to_window=2)
        assert history

    def test_fleet_store_warm_starts_first_window(self, small_stream, configs):
        """With no local history, the fleet store's curves seed the pruning:
        the first window profiles max_configs candidates, not the full set."""

        def build(fleet_store):
            return MicroProfilingSource(
                SubstrateDynamics(seed=0, exemplars_per_class=10),
                settings=MicroProfilerSettings(
                    data_fraction=0.3, profiling_epochs=3, max_configs=2
                ),
                fleet_store=fleet_store,
                seed=0,
            )

        cold = build(None).profile(small_stream, 0, configs)
        assert len(cold.estimates) == len(configs)

        store = FleetProfileStore()
        store.push(stream_profile_key(small_stream), cold)
        warm = build(store).profile(small_stream, 0, configs)
        assert len(warm.estimates) <= 2
        assert warm.profiling_gpu_seconds < cold.profiling_gpu_seconds

    def test_local_history_takes_precedence_over_fleet_curves(self, small_stream, configs):
        store = FleetProfileStore()
        source = MicroProfilingSource(
            SubstrateDynamics(seed=0, exemplars_per_class=10),
            settings=MicroProfilerSettings(
                data_fraction=0.3, profiling_epochs=3, max_configs=2
            ),
            fleet_store=store,
            seed=0,
        )
        first = source.profile(small_stream, 0, configs)
        # Empty fleet store: cold start profiles everything.
        assert len(first.estimates) == len(configs)
        # Window 1 prunes from the now-present *local* history.
        second = source.profile(small_stream, 1, configs)
        assert len(second.estimates) <= 2


class TestSharedProfileOracle:
    def _oracle(self, store, *, max_configs=2, error=0.0):
        return SharedProfileOracle(
            AnalyticDynamics(seed=0),
            store,
            settings=MicroProfilerSettings(max_configs=max_configs),
            accuracy_error_std=error,
            seed=1,
        )

    def test_cold_start_profiles_full_grid_with_modelled_cost(self, small_stream, configs):
        oracle = self._oracle(FleetProfileStore())
        profile = oracle.profile(small_stream, 0, configs)
        assert len(profile.estimates) == len(configs)
        assert profile.profiling_gpu_seconds > 0
        for estimate in profile.estimates.values():
            assert 0 < estimate.profiling_gpu_seconds < estimate.gpu_seconds
        # Cold starts save nothing.
        assert oracle.pop_saved(small_stream.name, 0) == 0.0
        assert (small_stream.name, 0) in oracle.local_store

    def test_zero_error_estimates_match_plain_oracle(self, small_stream, configs):
        dynamics = AnalyticDynamics(seed=0)
        shared = SharedProfileOracle(dynamics, FleetProfileStore(), seed=1)
        plain = OracleProfileSource(AnalyticDynamics(seed=0), seed=1)
        ours = shared.profile(small_stream, 2, configs)
        reference = plain.profile(small_stream, 2, configs)
        for config in configs:
            assert ours.estimate_for(config).post_retraining_accuracy == (
                reference.estimate_for(config).post_retraining_accuracy
            )

    def test_warm_start_prunes_and_records_savings(self, small_stream, configs):
        store = FleetProfileStore()
        seeder = self._oracle(store)
        store.push(
            stream_profile_key(small_stream), seeder.profile(small_stream, 0, configs)
        )
        oracle = self._oracle(store)
        cold_cost = sum(
            oracle.profiling_gpu_seconds(small_stream, 0, config) for config in configs
        )
        profile = oracle.profile(small_stream, 0, configs)
        assert len(profile.estimates) <= 2
        assert 0 < profile.profiling_gpu_seconds < cold_cost
        saved = oracle.pop_saved(small_stream.name, 0)
        assert saved == pytest.approx(cold_cost - profile.profiling_gpu_seconds)
        # Draining is one-shot.
        assert oracle.pop_saved(small_stream.name, 0) == 0.0
