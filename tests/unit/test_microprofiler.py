"""Unit tests for micro-profiling and the profile sources."""

import numpy as np
import pytest

from repro.configs import RetrainingConfig
from repro.core import (
    MicroProfiler,
    MicroProfilerSettings,
    MicroProfilingSource,
    OracleProfileSource,
)
from repro.exceptions import ProfilingError
from repro.profiles import AnalyticDynamics, SubstrateDynamics


@pytest.fixture()
def configs():
    return [
        RetrainingConfig(epochs=5, data_fraction=0.5, layers_trained_fraction=0.5),
        RetrainingConfig(epochs=15, data_fraction=0.5),
        RetrainingConfig(epochs=30),
    ]


class TestMicroProfilerSettings:
    def test_defaults_valid(self):
        settings = MicroProfilerSettings()
        assert settings.data_fraction == pytest.approx(0.1)
        assert settings.profiling_epochs == 5

    def test_invalid_settings(self):
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(data_fraction=0.0)
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(profiling_epochs=1)
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(holdout_fraction=1.0)
        with pytest.raises(ProfilingError):
            MicroProfilerSettings(max_configs=0)


class TestMicroProfiler:
    def test_profile_config_returns_estimate(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(data_fraction=0.3), seed=0)
        estimate = profiler.profile_config(edge_model, small_stream.window(0), configs[2])
        assert 0.0 <= estimate.post_retraining_accuracy <= 1.0
        assert estimate.gpu_seconds > 0
        assert estimate.profiling_gpu_seconds < estimate.gpu_seconds

    def test_profiling_is_much_cheaper_than_full_training(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(data_fraction=0.1, profiling_epochs=5), seed=0)
        estimate = profiler.profile_config(edge_model, small_stream.window(0), configs[2])
        # §4.3: micro-profiling is ~100x cheaper than exhaustive profiling; on
        # the small substrate the gap is smaller but must still be large.
        assert estimate.profiling_gpu_seconds <= estimate.gpu_seconds / 5

    def test_profile_does_not_mutate_serving_model(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(seed=0)
        before = [layer.weights.copy() for layer in edge_model.layers]
        profiler.profile_config(edge_model, small_stream.window(0), configs[0])
        after = [layer.weights for layer in edge_model.layers]
        for b, a in zip(before, after):
            assert np.allclose(b, a)

    def test_estimate_close_to_ground_truth(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(data_fraction=0.3, profiling_epochs=5), seed=0)
        config = configs[1]
        window = small_stream.window(0)
        estimated = profiler.profile_config(edge_model, window, config).post_retraining_accuracy
        truth = profiler.exhaustive_profile_config(edge_model, window, config).post_retraining_accuracy
        assert abs(estimated - truth) < 0.25

    def test_profile_window_covers_all_configs(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(seed=0)
        profile = profiler.profile_window(edge_model, small_stream.window(0), configs)
        assert len(profile.estimates) == len(configs)
        assert profile.profiling_gpu_seconds > 0

    def test_profile_window_requires_configs(self, small_stream, edge_model):
        profiler = MicroProfiler(seed=0)
        with pytest.raises(ProfilingError):
            profiler.profile_window(edge_model, small_stream.window(0), [])

    def test_profile_window_uses_history_to_prune(self, small_stream, edge_model, configs):
        profiler = MicroProfiler(MicroProfilerSettings(max_configs=2), seed=0)
        history = {
            configs[0]: (5.0, 0.80),
            configs[1]: (20.0, 0.55),  # dominated: dearer and less accurate
            configs[2]: (60.0, 0.85),
        }
        profile = profiler.profile_window(
            edge_model, small_stream.window(0), configs, history=history
        )
        assert len(profile.estimates) <= 2


class TestOracleProfileSource:
    def test_zero_error_matches_dynamics(self, small_stream, configs):
        dynamics = AnalyticDynamics(seed=0)
        source = OracleProfileSource(dynamics, accuracy_error_std=0.0, seed=1)
        profile = source.profile(small_stream, 2, configs)
        for config in configs:
            assert profile.estimate_for(config).post_retraining_accuracy == pytest.approx(
                dynamics.candidate_post_accuracy(small_stream, 2, config)
            )

    def test_noise_perturbs_estimates(self, small_stream, configs):
        dynamics = AnalyticDynamics(seed=0)
        noisy = OracleProfileSource(dynamics, accuracy_error_std=0.2, seed=1)
        profile = noisy.profile(small_stream, 2, configs)
        diffs = [
            abs(
                profile.estimate_for(config).post_retraining_accuracy
                - dynamics.candidate_post_accuracy(small_stream, 2, config)
            )
            for config in configs
        ]
        assert max(diffs) > 0.01

    def test_noisy_estimates_stay_in_unit_interval(self, small_stream, configs):
        source = OracleProfileSource(AnalyticDynamics(seed=0), accuracy_error_std=0.5, seed=2)
        profile = source.profile(small_stream, 1, configs)
        for estimate in profile.estimates.values():
            assert 0.0 <= estimate.post_retraining_accuracy <= 1.0

    def test_negative_error_std_rejected(self):
        with pytest.raises(ProfilingError):
            OracleProfileSource(AnalyticDynamics(seed=0), accuracy_error_std=-0.1)

    def test_profile_carries_stream_name_and_costs(self, small_stream, configs):
        source = OracleProfileSource(AnalyticDynamics(seed=0))
        profile = source.profile(small_stream, 0, configs)
        assert profile.stream_name == small_stream.name
        assert all(est.gpu_seconds > 0 for est in profile.estimates.values())


class TestMicroProfilingSource:
    def test_end_to_end_profiling_over_substrate(self, small_stream, configs):
        dynamics = SubstrateDynamics(seed=0, exemplars_per_class=10)
        source = MicroProfilingSource(
            dynamics, settings=MicroProfilerSettings(data_fraction=0.3, profiling_epochs=3), seed=0
        )
        profile = source.profile(small_stream, 1, configs)
        assert profile.stream_name == small_stream.name
        assert len(profile.estimates) == len(configs)
        assert (small_stream.name, 1) in source.store

    def test_store_accumulates_history(self, small_stream, configs):
        dynamics = SubstrateDynamics(seed=0, exemplars_per_class=10)
        source = MicroProfilingSource(
            dynamics, settings=MicroProfilerSettings(data_fraction=0.3, profiling_epochs=3), seed=0
        )
        source.profile(small_stream, 0, configs)
        source.profile(small_stream, 1, configs)
        history = source.store.history_for(small_stream.name, up_to_window=2)
        assert history
