"""Unit tests for the synthetic workload generators and drift models."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    AppearanceDrift,
    ClassDistributionDrift,
    ClassTaxonomy,
    DEFAULT_CLASSES,
    DriftProfile,
    FeatureSpaceSpec,
    FeatureSynthesizer,
    GoldenModel,
    VideoStream,
    class_balanced_sample,
    dataset_spec,
    holdout_split,
    make_stream,
    make_workload,
    mixed_workload,
    uniform_sample,
)
from repro.exceptions import DatasetError


class TestClassTaxonomy:
    def test_default_classes(self):
        taxonomy = ClassTaxonomy()
        assert taxonomy.num_classes == 6
        assert "car" in taxonomy

    def test_index_name_roundtrip(self):
        taxonomy = ClassTaxonomy()
        for name in DEFAULT_CLASSES:
            assert taxonomy.name_of(taxonomy.index_of(name)) == name

    def test_unknown_class_raises(self):
        with pytest.raises(DatasetError):
            ClassTaxonomy().index_of("spaceship")

    def test_duplicate_classes_raise(self):
        with pytest.raises(DatasetError):
            ClassTaxonomy(["car", "car"])

    def test_empty_taxonomy_raises(self):
        with pytest.raises(DatasetError):
            ClassTaxonomy([])

    def test_validate_distribution_normalises(self):
        taxonomy = ClassTaxonomy(["a", "b"])
        assert np.allclose(taxonomy.validate_distribution([2.0, 2.0]), [0.5, 0.5])

    def test_validate_distribution_wrong_length(self):
        with pytest.raises(DatasetError):
            ClassTaxonomy(["a", "b"]).validate_distribution([1.0])

    def test_validate_distribution_all_zero(self):
        with pytest.raises(DatasetError):
            ClassTaxonomy(["a", "b"]).validate_distribution([0.0, 0.0])


class TestDriftProfile:
    def test_negative_volatility_raises(self):
        with pytest.raises(DatasetError):
            DriftProfile(distribution_volatility=-0.1)

    def test_invalid_regime_period(self):
        with pytest.raises(DatasetError):
            DriftProfile(regime_period=0)

    def test_invalid_dropout(self):
        with pytest.raises(DatasetError):
            DriftProfile(dropout_probability=1.5)


class TestClassDistributionDrift:
    def test_distribution_is_normalised(self):
        drift = ClassDistributionDrift(ClassTaxonomy(), DriftProfile(), seed=1)
        for window in range(5):
            distribution = drift.distribution_for_window(window)
            assert distribution.sum() == pytest.approx(1.0)
            assert np.all(distribution >= 0)

    def test_deterministic_for_same_window(self):
        drift = ClassDistributionDrift(ClassTaxonomy(), DriftProfile(), seed=1)
        first = drift.distribution_for_window(3)
        second = drift.distribution_for_window(3)
        assert np.allclose(first, second)

    def test_distribution_changes_over_windows(self):
        drift = ClassDistributionDrift(
            ClassTaxonomy(), DriftProfile(distribution_volatility=0.5), seed=2
        )
        early = drift.distribution_for_window(0)
        late = drift.distribution_for_window(8)
        assert not np.allclose(early, late)

    def test_negative_window_raises(self):
        drift = ClassDistributionDrift(ClassTaxonomy(), DriftProfile(), seed=1)
        with pytest.raises(DatasetError):
            drift.distribution_for_window(-1)


class TestAppearanceDrift:
    def test_offsets_shape(self):
        drift = AppearanceDrift(ClassTaxonomy(), DriftProfile(), feature_dim=8, seed=1)
        offsets = drift.offsets_for_window(2)
        assert offsets.shape == (6, 8)

    def test_drift_magnitude_grows_with_window_gap(self):
        drift = AppearanceDrift(
            ClassTaxonomy(), DriftProfile(appearance_volatility=0.2), feature_dim=8, seed=1
        )
        assert drift.drift_magnitude(0, 8) > drift.drift_magnitude(0, 1)

    def test_drift_magnitude_zero_for_same_window(self):
        drift = AppearanceDrift(ClassTaxonomy(), DriftProfile(), feature_dim=8, seed=1)
        assert drift.drift_magnitude(3, 3) == pytest.approx(0.0)

    def test_deterministic(self):
        drift = AppearanceDrift(ClassTaxonomy(), DriftProfile(), feature_dim=8, seed=1)
        assert np.allclose(drift.offsets_for_window(4), drift.offsets_for_window(4))


class TestFeatureSynthesizer:
    def test_sample_shapes(self):
        synthesizer = FeatureSynthesizer(ClassTaxonomy(), FeatureSpaceSpec(feature_dim=12), seed=1)
        features, labels = synthesizer.sample(50, np.full(6, 1 / 6))
        assert features.shape == (50, 12)
        assert labels.shape == (50,)
        assert labels.max() < 6

    def test_respects_class_distribution(self):
        synthesizer = FeatureSynthesizer(ClassTaxonomy(), seed=1)
        distribution = np.array([1.0, 0, 0, 0, 0, 0])
        _, labels = synthesizer.sample(40, distribution)
        assert np.all(labels == 0)

    def test_appearance_offsets_move_centers(self):
        synthesizer = FeatureSynthesizer(ClassTaxonomy(), seed=1)
        base = synthesizer.class_centers()
        offsets = np.ones_like(base)
        shifted = synthesizer.class_centers(offsets)
        assert not np.allclose(base, shifted)

    def test_bad_offsets_shape_raises(self):
        synthesizer = FeatureSynthesizer(ClassTaxonomy(), seed=1)
        with pytest.raises(DatasetError):
            synthesizer.class_centers(np.ones((2, 2)))

    def test_bayes_error_reasonable(self):
        synthesizer = FeatureSynthesizer(ClassTaxonomy(), seed=1)
        error = synthesizer.bayes_error_estimate(num_samples=500)
        assert 0.0 <= error <= 0.5

    def test_invalid_spec(self):
        with pytest.raises(DatasetError):
            FeatureSpaceSpec(feature_dim=1)


class TestGoldenModel:
    def test_zero_error_rate_keeps_labels(self):
        golden = GoldenModel(error_rate=0.0, seed=1)
        labels = np.array([0, 1, 2, 3])
        noisy, rate = golden.label(labels, num_classes=4)
        assert np.array_equal(noisy, labels)
        assert rate == 0.0

    def test_error_rate_flips_some_labels(self):
        golden = GoldenModel(error_rate=0.5, seed=1)
        labels = np.zeros(500, dtype=np.int64)
        noisy, rate = golden.label(labels, num_classes=4)
        assert 0.3 < rate < 0.7
        assert np.all(noisy[noisy != 0] > 0)

    def test_invalid_error_rate(self):
        with pytest.raises(DatasetError):
            GoldenModel(error_rate=1.0)

    def test_labeling_cost(self):
        golden = GoldenModel(gpu_seconds_per_sample=0.1)
        assert golden.labeling_cost(50) == pytest.approx(5.0)

    def test_negative_cost_request_raises(self):
        with pytest.raises(DatasetError):
            GoldenModel().labeling_cost(-1)


class TestSampling:
    def _data(self, n=60):
        rng = np.random.default_rng(0)
        return rng.normal(size=(n, 4)), rng.integers(0, 3, size=n)

    def test_uniform_sample_size(self):
        features, labels = self._data()
        sampled_features, sampled_labels = uniform_sample(features, labels, 0.25, seed=1)
        assert len(sampled_features) == len(sampled_labels) == 15

    def test_uniform_sample_full_fraction(self):
        features, labels = self._data()
        sampled_features, _ = uniform_sample(features, labels, 1.0, seed=1)
        assert len(sampled_features) == len(features)

    def test_class_balanced_sample_covers_classes(self):
        features, labels = self._data(200)
        _, sampled_labels = class_balanced_sample(features, labels, 0.3, seed=1)
        assert set(np.unique(sampled_labels)) == set(np.unique(labels))

    def test_holdout_split_disjoint_sizes(self):
        features, labels = self._data(80)
        train_x, train_y, val_x, val_y = holdout_split(features, labels, holdout_fraction=0.25, seed=1)
        assert len(train_x) + len(val_x) == 80
        assert len(val_x) == 20

    def test_invalid_fraction_raises(self):
        features, labels = self._data()
        with pytest.raises(DatasetError):
            uniform_sample(features, labels, 0.0)

    def test_empty_dataset_raises(self):
        with pytest.raises(DatasetError):
            uniform_sample(np.empty((0, 3)), np.empty((0,)), 0.5)


class TestVideoStreamAndWindows:
    def test_window_data_shapes(self, small_stream):
        window = small_stream.window(0)
        assert window.num_train_samples == 120
        assert window.num_eval_samples == 80
        assert window.train_features.shape[1] == small_stream.feature_dim

    def test_window_caching_returns_same_object(self, small_stream):
        assert small_stream.window(1) is small_stream.window(1)

    def test_windows_iterator(self, small_stream):
        windows = list(small_stream.windows(3))
        assert [w.window_index for w in windows] == [0, 1, 2]

    def test_negative_window_raises(self, small_stream):
        with pytest.raises(DatasetError):
            small_stream.window(-1)

    def test_subsample_training(self, small_stream):
        window = small_stream.window(0)
        features, labels = window.subsample_training(0.25, seed=3)
        assert len(features) == len(labels) == 30

    def test_class_distribution_matches_window(self, small_stream):
        window = small_stream.window(2)
        assert np.allclose(window.class_distribution, small_stream.class_distribution(2))

    def test_drift_magnitude_positive_across_windows(self, small_stream):
        assert small_stream.drift_magnitude(0, 5) > 0

    def test_frames_per_window(self, small_stream):
        assert small_stream.frames_per_window() == int(30 * 200)

    def test_deterministic_given_name_and_seed(self):
        profile = DriftProfile()
        a = VideoStream("same", drift_profile=profile, samples_per_window=50, eval_samples_per_window=40, seed=5)
        b = VideoStream("same", drift_profile=profile, samples_per_window=50, eval_samples_per_window=40, seed=5)
        assert np.allclose(a.window(2).train_features, b.window(2).train_features)


class TestGenerators:
    def test_all_dataset_names_resolve(self):
        for name in DATASET_NAMES:
            assert dataset_spec(name).name == name

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            dataset_spec("kitti")

    def test_make_workload_count_and_names(self):
        streams = make_workload("waymo", 3, seed=1, samples_per_window=60, eval_samples_per_window=40)
        assert len(streams) == 3
        assert len({s.name for s in streams}) == 3

    def test_streams_differ_across_indices(self):
        a = make_stream("cityscapes", 0, seed=1, samples_per_window=60, eval_samples_per_window=40)
        b = make_stream("cityscapes", 1, seed=1, samples_per_window=60, eval_samples_per_window=40)
        assert not np.allclose(a.window(0).train_features, b.window(0).train_features)

    def test_streams_deterministic_across_calls(self):
        a = make_stream("cityscapes", 0, seed=9, samples_per_window=60, eval_samples_per_window=40)
        b = make_stream("cityscapes", 0, seed=9, samples_per_window=60, eval_samples_per_window=40)
        assert np.allclose(a.window(1).train_features, b.window(1).train_features)

    def test_window_duration_override(self):
        stream = make_stream("urban_building", 0, window_duration=400.0, samples_per_window=60, eval_samples_per_window=40)
        assert stream.window_duration == 400.0

    def test_mixed_workload(self):
        streams = mixed_workload(["cityscapes", "urban_traffic"], 2, seed=1)
        assert len(streams) == 4
        assert any("urban_traffic" in s.name for s in streams)

    def test_invalid_stream_counts(self):
        with pytest.raises(DatasetError):
            make_workload("cityscapes", 0)
        with pytest.raises(DatasetError):
            mixed_workload(["cityscapes"], 0)

    def test_static_cameras_drift_less_than_dashcams(self):
        dashcam = make_stream("waymo", 0, seed=2, samples_per_window=60, eval_samples_per_window=40)
        static = make_stream("urban_building", 0, seed=2, samples_per_window=60, eval_samples_per_window=40)
        assert dashcam.drift_magnitude(0, 6) > static.drift_magnitude(0, 6)
